//! Parallel-execution determinism suite: the morsel-parallel executor
//! must produce byte-identical rows to the single-threaded engine for
//! every worker count and schedule, including while a background
//! tier-up swaps the executable mid-query. (Cycle totals are exactly
//! serial at one worker and reproducible under the static schedule;
//! see the `morsel_exec` module docs for the full cycle story.)

use qc_engine::{
    backends, CompileService, EngineConfig, MorselExecConfig, MorselExecutor, MorselSchedule,
    QueryScheduler, SchedulerConfig, Session, SessionConfig, SessionRequest,
};
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;

#[test]
fn rows_byte_identical_across_worker_counts() {
    let db = qc_storage::gen_hlike(0.02);
    // Tiny morsels: hlike tables at sf 0.02 have ~10–120 rows, so 16
    // rows per morsel makes every scan split across workers.
    let session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 16 },
            ..Default::default()
        },
    );
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));
    let trace = TimeTrace::disabled();
    for q in qc_workloads::hlike_suite() {
        let serial = session
            .prepare(&q.plan)
            .map(|run| run.backend(Arc::clone(&backend)))
            .and_then(|run| run.execute())
            .unwrap_or_else(|e| panic!("serial {} failed: {e}", q.name));
        let stmt = session.statement(&q.plan).expect("prepare");
        for workers in [1usize, 2, 8] {
            let run = session
                .run(stmt.clone())
                .backend(Arc::clone(&backend))
                .trace(&trace)
                .direct();
            let mut compiled = run.compile().expect("compile");
            let executor = MorselExecutor::new(MorselExecConfig {
                workers,
                schedule: MorselSchedule::Stealing,
            });
            let result = executor
                .execute(session.engine(), stmt.query(), &mut compiled)
                .unwrap_or_else(|e| panic!("{} at {workers} workers failed: {e}", q.name));
            assert_eq!(
                result.rows, serial.rows,
                "{} rows diverged at {workers} workers",
                q.name
            );
            if workers == 1 {
                // One worker is the exact serial path, cycles included.
                assert_eq!(
                    result.exec_stats.cycles, serial.exec_stats.cycles,
                    "{} single-worker cycles diverged",
                    q.name
                );
                assert_eq!(
                    result.critical_path_cycles, result.exec_stats.cycles,
                    "{} serial critical path must equal total cycles",
                    q.name
                );
            } else {
                // The critical path never exceeds the total charged
                // work; when morsels actually spread across workers it
                // is strictly shorter (model-time speedup).
                assert!(
                    result.critical_path_cycles <= result.exec_stats.cycles,
                    "{} critical path exceeds total cycles at {workers} workers",
                    q.name
                );
            }
        }
    }
}

#[test]
fn static_schedule_cycles_are_reproducible() {
    let db = qc_storage::gen_hlike(0.02);
    // 16-row morsels split the 120-row lineitem scan into 8 morsels.
    let session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 16 },
            ..Default::default()
        },
    );
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));
    let trace = TimeTrace::disabled();
    let q = &qc_workloads::hlike_suite()[0];
    let stmt = session.statement(&q.plan).expect("prepare");
    let executor = MorselExecutor::new(MorselExecConfig {
        workers: 4,
        schedule: MorselSchedule::Static,
    });
    let mut cycles = Vec::new();
    let mut critical = Vec::new();
    for _ in 0..3 {
        let run = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend))
            .trace(&trace)
            .direct();
        let mut compiled = run.compile().expect("compile");
        let result = executor
            .execute(session.engine(), stmt.query(), &mut compiled)
            .expect("static parallel run");
        cycles.push(result.exec_stats.cycles);
        critical.push(result.critical_path_cycles);
    }
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
    assert_eq!(critical[0], critical[1]);
    assert_eq!(critical[1], critical[2]);
    // With 16-row morsels spread statically over 4 workers the
    // model-time critical path is strictly shorter than the serial
    // cycle total.
    assert!(
        critical[0] < cycles[0],
        "4-worker static schedule should shorten the critical path \
         (critical {} vs total {})",
        critical[0],
        cycles[0]
    );
}

#[test]
fn background_tier_up_lands_mid_query_under_four_workers() {
    let db = qc_storage::gen_hlike(0.05);
    // Many morsel boundaries so the swap lands mid-pipeline.
    let session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 128 },
            ..Default::default()
        },
    );
    let backend_cheap: Arc<dyn qc_backend::Backend> = Arc::from(backends::interpreter());
    let backend_opt: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));
    let trace = TimeTrace::disabled();
    for q in &qc_workloads::hlike_suite()[..4] {
        let serial = session
            .prepare(&q.plan)
            .map(|run| run.backend(Arc::clone(&backend_cheap)))
            .and_then(|run| run.execute())
            .expect("serial run");
        let stmt = session.statement(&q.plan).expect("prepare");
        let cheap_run = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend_cheap))
            .trace(&trace)
            .direct();
        let mut compiled = cheap_run.compile().expect("cheap compile");
        let opt_run = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend_opt))
            .trace(&trace)
            .direct();
        let mut replacement = Some(opt_run.compile().expect("optimized compile"));
        let executor = MorselExecutor::new(MorselExecConfig {
            workers: 4,
            schedule: MorselSchedule::Stealing,
        });
        let mut fired_at = None;
        let result = executor
            .execute_with_hook(session.engine(), stmt.query(), &mut compiled, &mut |ev| {
                // Land the optimized tier a few morsels into the query.
                if ev.morsels_done >= 3 {
                    fired_at.get_or_insert(ev.morsels_done);
                    replacement.take()
                } else {
                    None
                }
            })
            .unwrap_or_else(|e| panic!("{} with mid-query tier-up failed: {e}", q.name));
        assert_eq!(
            result.rows, serial.rows,
            "{} rows diverged with mid-query tier-up",
            q.name
        );
        if fired_at.is_some() {
            assert_eq!(
                compiled.backend_name, "Clift",
                "replacement tier was not adopted"
            );
        }
    }
}

#[test]
fn scheduler_rows_match_serial_for_every_session() {
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));
    let suite = qc_workloads::hlike_suite();
    let shapes = &suite[..6];

    // 18 sessions over 6 shapes through 3 serving workers, with the
    // background tier-up governor active.
    let requests: Vec<SessionRequest> = (0..18)
        .map(|i| {
            let q = &shapes[i % shapes.len()];
            SessionRequest::new(q.name.clone(), q.plan.clone())
        })
        .collect();
    let service = CompileService::default();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 3,
        admission_limit: 4,
        morsel_credits: 2,
        tier_up_backend: Some(Arc::from(backends::lvm_cheap(Isa::Tx64))),
        tier_up_inflight: 2,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve(session.engine(), &service, &backend, requests);

    assert_eq!(report.outcomes.len(), 18);
    assert_eq!(report.failures(), 0, "no session may fail");
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let q = &shapes[i % shapes.len()];
        assert_eq!(outcome.name, q.name, "outcomes keep submission order");
        let serial = session
            .prepare(&q.plan)
            .map(|run| run.backend(Arc::clone(&backend)))
            .and_then(|run| run.execute())
            .expect("serial reference");
        assert_eq!(
            outcome.rows, serial.rows,
            "session {} diverged from serial rows",
            outcome.name
        );
    }
    assert!(report.utilization() <= 1.0);
    // Shared cache: 6 shapes, 18 sessions — at least the repeats hit.
    assert!(
        service.cache_stats().hits > 0,
        "repeated shapes must hit the shared code cache"
    );
}
