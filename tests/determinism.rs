//! Determinism and cross-ISA invariants: the cycle model must be exactly
//! reproducible run-to-run, results must be ISA-independent, and the
//! relative execution-cost ordering the paper's run-time numbers rest on
//! must hold on representative queries.

use qc_engine::{backends, ExecutionResult, Session};
use qc_plan::reference;
use qc_target::Isa;
use std::sync::Arc;

fn run_on(
    session: &Session<'_>,
    plan: &qc_plan::PlanNode,
    backend: Box<dyn qc_backend::Backend>,
) -> Result<ExecutionResult, qc_engine::EngineError> {
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
    session.prepare(plan)?.backend(backend).execute()
}

#[test]
fn repeated_runs_are_cycle_identical() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    for &i in &[0usize, 4, 12] {
        let q = &suite[i];
        let a = run_on(&session, &q.plan, backends::clift(Isa::Tx64)).expect("first run");
        let b = run_on(&session, &q.plan, backends::clift(Isa::Tx64)).expect("second run");
        assert_eq!(
            a.exec_stats.cycles, b.exec_stats.cycles,
            "{}: cycle count is not deterministic",
            q.name
        );
        assert_eq!(
            reference::normalize(&a.rows),
            reference::normalize(&b.rows),
            "{}: results differ between runs",
            q.name
        );
    }
}

#[test]
fn results_are_isa_independent() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    for &i in &[2usize, 5, 16] {
        let q = &suite[i];
        for make in [
            backends::clift,
            backends::lvm_cheap,
            backends::lvm_opt,
            backends::cgen,
        ] {
            let tx = run_on(&session, &q.plan, make(Isa::Tx64)).expect("tx64");
            let ta = run_on(&session, &q.plan, make(Isa::Ta64)).expect("ta64");
            assert_eq!(
                reference::normalize(&tx.rows),
                reference::normalize(&ta.rows),
                "{} on {}: TX64 and TA64 disagree",
                make(Isa::Tx64).name(),
                q.name
            );
        }
    }
}

#[test]
fn interpreter_costs_more_cycles_than_compiled_code() {
    // The paper's Table III: the interpreter is a multiple of every
    // compiling back-end at execution time. Check the per-query cycle
    // ordering on a scan-heavy query where dispatch dominates.
    let db = qc_storage::gen_hlike(0.1);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    let q = &suite[0]; // H01 shape: big scan + aggregation
    let interp = run_on(&session, &q.plan, backends::interpreter()).expect("interp");
    let direct = run_on(&session, &q.plan, backends::direct_emit()).expect("direct");
    let clift = run_on(&session, &q.plan, backends::clift(Isa::Tx64)).expect("clift");
    assert!(
        interp.exec_stats.cycles > direct.exec_stats.cycles,
        "interpreter ({}) not slower than DirectEmit ({})",
        interp.exec_stats.cycles,
        direct.exec_stats.cycles
    );
    assert!(
        interp.exec_stats.cycles > clift.exec_stats.cycles,
        "interpreter ({}) not slower than Clift ({})",
        interp.exec_stats.cycles,
        clift.exec_stats.cycles
    );
}

#[test]
fn optimized_code_is_never_slower_than_unoptimized_lvm() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    let mut cheap_total = 0u64;
    let mut opt_total = 0u64;
    for &i in &[0usize, 2, 5, 12] {
        let q = &suite[i];
        cheap_total += run_on(&session, &q.plan, backends::lvm_cheap(Isa::Tx64))
            .expect("cheap")
            .exec_stats
            .cycles;
        opt_total += run_on(&session, &q.plan, backends::lvm_opt(Isa::Tx64))
            .expect("opt")
            .exec_stats
            .cycles;
    }
    assert!(
        opt_total < cheap_total,
        "-O2 total cycles {opt_total} not below -O0 total {cheap_total}"
    );
}

#[test]
fn data_generators_are_seed_stable() {
    let a = qc_storage::gen_hlike(0.03);
    let b = qc_storage::gen_hlike(0.03);
    let session_a = Session::new(&a);
    let session_b = Session::new(&b);
    let suite = qc_workloads::hlike_suite();
    let q = &suite[5];
    let ra = run_on(&session_a, &q.plan, backends::interpreter()).expect("a");
    let rb = run_on(&session_b, &q.plan, backends::interpreter()).expect("b");
    assert_eq!(
        reference::normalize(&ra.rows),
        reference::normalize(&rb.rows)
    );
}
