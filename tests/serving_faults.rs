//! Execution-side fault-tolerance suite: query budgets (deadline,
//! cycle/row caps, cancellation), morsel-worker panic isolation, the
//! serving scheduler's overload shedding, runaway governor, and
//! per-tier circuit breaker — all driven by the deterministic
//! [`ChaosExecBackend`] so the faults land *inside* morsel execution.
//!
//! The headline acceptance test serves 1024 sessions with ~10% of
//! morsel calls panicking: the process must survive every panic, every
//! outcome must be accounted for in the [`ServeReport`], and every
//! surviving result must be byte-identical to the serial reference.

use qc_backend::chaos::{ChaosExecBackend, ExecFault};
use qc_engine::{
    backends, BreakerPolicy, CancelToken, EngineConfig, EngineError, FallbackChain, OutcomeStatus,
    QueryBudget, QueryScheduler, RunawayPolicy, SchedulerConfig, Session, SessionConfig,
    SessionRequest, ShedPolicy,
};
use qc_storage::{Column, Database, Schema, Table};
use qc_target::Isa;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Keeps injected-panic backtraces out of the test output; every other
/// panic still reports through the default hook.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.contains("chaos: injected")) {
                default_hook(info);
            }
        }));
    });
}

fn small_morsel_session(db: &Database) -> Session<'_> {
    Session::with_config(
        db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 16 },
            ..Default::default()
        },
    )
}

fn clean_clift() -> Arc<dyn qc_backend::Backend> {
    Arc::from(backends::clift(Isa::Tx64))
}

// ---------------------------------------------------------------------
// Query budgets: typed errors, partial accounting, one-morsel stop.
// ---------------------------------------------------------------------

#[test]
fn cycle_budget_trips_with_typed_error_and_partial_tally() {
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let backend = clean_clift();
    let q = &qc_workloads::hlike_suite()[0];

    let full = session
        .prepare(&q.plan)
        .and_then(|run| run.backend(Arc::clone(&backend)).execute())
        .expect("unbudgeted run")
        .exec_stats
        .cycles;
    assert!(full > 0);

    for workers in [1usize, 4] {
        let err = session
            .prepare(&q.plan)
            .map(|run| {
                run.backend(Arc::clone(&backend))
                    .workers(workers)
                    .query_budget(QueryBudget::unlimited().with_max_cycles(1))
            })
            .and_then(|run| run.execute())
            .expect_err("a 1-cycle budget must trip");
        match err {
            EngineError::BudgetExhausted {
                what,
                used,
                limit,
                partial,
            } => {
                assert_eq!(what, "model cycles");
                assert_eq!(limit, 1);
                assert!(used >= limit, "trip reports at least the limit");
                assert!(partial.cycles > 0, "partial work must be accounted");
                // The budget is checked at every morsel claim, so the
                // query stops within one morsel of tripping: far below
                // the full query's cost on this many-morsel plan.
                assert!(
                    partial.cycles < full / 2,
                    "stopped at {} of {full} cycles at {workers} workers — \
                     more than one morsel late",
                    partial.cycles
                );
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
    }
}

#[test]
fn zero_deadline_trips_before_any_morsel() {
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let q = &qc_workloads::hlike_suite()[0];
    let err = session
        .prepare(&q.plan)
        .map(|run| {
            run.backend(clean_clift())
                .query_budget(QueryBudget::unlimited().with_deadline(Duration::ZERO))
        })
        .and_then(|run| run.execute())
        .expect_err("a zero deadline must trip");
    match err {
        EngineError::DeadlineExceeded { limit, .. } => assert_eq!(limit, Duration::ZERO),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn pre_cancelled_token_stops_query() {
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let q = &qc_workloads::hlike_suite()[0];
    let token = CancelToken::new();
    token.cancel();
    for workers in [1usize, 4] {
        let err = session
            .prepare(&q.plan)
            .map(|run| {
                run.backend(clean_clift())
                    .workers(workers)
                    .query_budget(QueryBudget::unlimited().cancelled_by(token.clone()))
            })
            .and_then(|run| run.execute())
            .expect_err("a cancelled token must stop the query");
        assert!(
            matches!(err, EngineError::Cancelled { .. }),
            "expected Cancelled at {workers} workers, got {err}"
        );
    }
}

#[test]
fn row_cap_trips_on_producing_query() {
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let backend = clean_clift();
    // Find a suite query that returns rows, then cap below its output.
    let suite = qc_workloads::hlike_suite();
    let q = suite
        .iter()
        .find(|q| {
            session
                .prepare(&q.plan)
                .and_then(|run| run.backend(Arc::clone(&backend)).execute())
                .is_ok_and(|r| !r.rows.is_empty())
        })
        .expect("some suite query returns rows");
    let err = session
        .prepare(&q.plan)
        .map(|run| {
            run.backend(Arc::clone(&backend))
                .query_budget(QueryBudget::unlimited().with_max_rows(0))
        })
        .and_then(|run| run.execute())
        .expect_err("a zero row cap must trip");
    match err {
        EngineError::BudgetExhausted { what, .. } => assert_eq!(what, "result rows"),
        other => panic!("expected BudgetExhausted on rows, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Morsel-worker panic isolation.
// ---------------------------------------------------------------------

#[test]
fn worker_panic_is_isolated_and_result_stays_byte_identical() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let clean = clean_clift();
    let (mut recovered, mut contained) = (0usize, 0usize);
    for q in &qc_workloads::hlike_suite()[..4] {
        let serial = session
            .prepare(&q.plan)
            .and_then(|run| run.backend(Arc::clone(&clean)).execute())
            .unwrap_or_else(|e| panic!("serial {} failed: {e}", q.name));
        // One injected panic somewhere in the morsel stream. Faults
        // landing in a *parallel* pipeline are recovered: the poisoned
        // worker's lost morsels are replayed by the retry pass and the
        // merged result must not change at all. Faults landing in a
        // serial section (serial-fallback pipeline, canonical
        // setup/finish) have no surviving worker to replay onto, so
        // the contract there is containment: a typed `WorkerPanic`,
        // never a process crash.
        for nth in [0u64, 2, 5] {
            let chaos = Arc::new(ChaosExecBackend::on_nth(
                Arc::clone(&clean),
                nth,
                ExecFault::Panic,
            ));
            let backend: Arc<dyn qc_backend::Backend> = chaos.clone() as _;
            match session
                .prepare(&q.plan)
                .and_then(|run| run.backend(backend).workers(4).execute())
            {
                Ok(result) => {
                    assert_eq!(
                        result.rows, serial.rows,
                        "{} rows diverged after panic recovery (call {nth})",
                        q.name
                    );
                    // Short queries may not reach the nth call at all;
                    // only runs where the fault actually fired count as
                    // recoveries.
                    if chaos.injected() == 1 {
                        recovered += 1;
                    }
                }
                Err(EngineError::WorkerPanic(msg)) => {
                    assert!(
                        msg.contains("chaos: injected"),
                        "{} surfaced a foreign panic: {msg}",
                        q.name
                    );
                    contained += 1;
                }
                Err(other) => {
                    panic!("{} must contain a panic on call {nth}, got {other}", q.name)
                }
            }
            assert!(chaos.injected() <= 1, "at most one fault scheduled");
        }
    }
    // The suite must exercise the recovery path, not just containment:
    // the wide scan shapes decompose into parallel morsel pipelines
    // where the retry pass fully replays the lost work.
    assert!(
        recovered >= 3,
        "expected the parallel retry pass to recover several runs \
         (recovered {recovered}, contained {contained})"
    );
}

#[test]
fn always_panicking_execution_fails_cleanly() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let backend: Arc<dyn qc_backend::Backend> =
        Arc::new(ChaosExecBackend::always(clean_clift(), ExecFault::Panic));
    let q = &qc_workloads::hlike_suite()[0];
    for workers in [1usize, 4] {
        let err = session
            .prepare(&q.plan)
            .and_then(|run| run.backend(Arc::clone(&backend)).workers(workers).execute())
            .expect_err("all-panic execution must fail, not crash");
        assert!(
            matches!(err, EngineError::WorkerPanic(_)),
            "expected WorkerPanic at {workers} workers, got {err}"
        );
    }
}

// ---------------------------------------------------------------------
// Serving path: the 1024-session chaos acceptance test.
// ---------------------------------------------------------------------

#[test]
fn serving_1024_sessions_under_execution_chaos() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 64 },
            ..Default::default()
        },
    );
    let suite = qc_workloads::hlike_suite();
    let clean = clean_clift();

    // Serial reference, one result per distinct shape.
    let mut reference: HashMap<String, Vec<Vec<qc_runtime::SqlValue>>> = HashMap::new();
    for q in &suite {
        let result = session
            .prepare(&q.plan)
            .and_then(|run| run.backend(Arc::clone(&clean)).execute())
            .unwrap_or_else(|e| panic!("serial reference {} failed: {e}", q.name));
        reference.insert(q.name.clone(), result.rows);
    }

    // ~10% of morsel calls panic, on a schedule fixed by the seed.
    let chaos = Arc::new(ChaosExecBackend::seeded(
        Arc::clone(&clean),
        0x5EED,
        100,
        ExecFault::Panic,
    ));
    let backend: Arc<dyn qc_backend::Backend> = chaos.clone() as _;
    let total = 1024usize;
    let requests: Vec<SessionRequest> = (0..total)
        .map(|i| {
            let q = &suite[i % suite.len()];
            SessionRequest::new(q.name.clone(), q.plan.clone())
        })
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 4,
        admission_limit: 8,
        morsel_credits: 4,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &backend, requests);

    // Reaching this line at all means no injected panic escaped the
    // containment layers and killed the process.
    assert!(chaos.injected() > 0, "the chaos schedule must have fired");
    assert_eq!(report.outcomes.len(), total);

    let ok = report
        .outcomes
        .iter()
        .filter(|o| o.status == OutcomeStatus::Ok)
        .count();
    // Every outcome is accounted for exactly once in the breakdown.
    assert_eq!(
        ok + report.failed() + report.shed() + report.killed(),
        total,
        "statuses must partition the batch"
    );
    assert_eq!(report.shed(), 0, "no shedding configured");
    assert_eq!(report.killed(), 0, "no budgets or governor configured");
    assert_eq!(report.failures(), report.failed());
    assert!(ok > 0, "some sessions must survive 10% injection");
    assert!(
        report.failed() > 0,
        "10% injection over {total} sessions must fail some"
    );

    for (i, o) in report.outcomes.iter().enumerate() {
        let q = &suite[i % suite.len()];
        assert_eq!(o.name, q.name, "outcomes keep submission order");
        match o.status {
            OutcomeStatus::Ok => {
                assert!(o.error.is_none());
                assert_eq!(
                    o.rows, reference[&o.name],
                    "surviving session {i} ({}) diverged from serial rows",
                    o.name
                );
            }
            OutcomeStatus::Failed => {
                let err = o.error.as_deref().expect("failed outcome carries error");
                assert!(
                    err.contains("chaos: injected"),
                    "session {i} failed for a non-injected reason: {err}"
                );
                assert!(o.rows.is_empty(), "failed sessions return no rows");
            }
            other => panic!("unexpected status {other:?} for session {i}"),
        }
    }
}

// ---------------------------------------------------------------------
// Overload shedding.
// ---------------------------------------------------------------------

fn shed_requests(n: usize) -> (Database, Vec<SessionRequest>) {
    let db = qc_storage::gen_hlike(0.02);
    let suite = qc_workloads::hlike_suite();
    let requests = (0..n)
        .map(|i| {
            let q = &suite[i % suite.len()];
            SessionRequest::new(format!("s{i}"), q.plan.clone())
        })
        .collect();
    (db, requests)
}

#[test]
fn shed_reject_new_drops_the_tail() {
    let (db, requests) = shed_requests(12);
    let session = Session::new(&db);
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        max_queue_depth: Some(5),
        shed_policy: ShedPolicy::RejectNew,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &clean_clift(), requests);
    assert_eq!(report.shed(), 7);
    assert_eq!(report.failures(), 0, "shed sessions are not failures");
    for (i, o) in report.outcomes.iter().enumerate() {
        if i < 5 {
            assert_eq!(o.status, OutcomeStatus::Ok, "accepted session {i}");
        } else {
            assert_eq!(o.status, OutcomeStatus::Shed, "tail session {i}");
            assert!(
                o.error.as_deref().is_some_and(|e| e.contains("shed")),
                "shed outcome names the policy"
            );
        }
    }
}

#[test]
fn shed_drop_oldest_keeps_the_tail() {
    let (db, requests) = shed_requests(12);
    let session = Session::new(&db);
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        max_queue_depth: Some(5),
        shed_policy: ShedPolicy::DropOldest,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &clean_clift(), requests);
    assert_eq!(report.shed(), 7);
    for (i, o) in report.outcomes.iter().enumerate() {
        if i < 7 {
            assert_eq!(o.status, OutcomeStatus::Shed, "old session {i}");
        } else {
            assert_eq!(o.status, OutcomeStatus::Ok, "recent session {i}");
        }
    }
}

// ---------------------------------------------------------------------
// Runaway governor.
// ---------------------------------------------------------------------

/// Serializes serving (1 worker, admission 1) so the chaos schedule's
/// global call index maps deterministically onto sessions.
fn serial_scheduler_config() -> SchedulerConfig {
    SchedulerConfig {
        workers: 1,
        admission_limit: 1,
        morsel_credits: 1,
        ..Default::default()
    }
}

/// Counts the `main` calls the first `warmup` sessions make, so a
/// chaos fault can be pinned to the first morsel of the next session.
fn count_warmup_calls(db: &Database, plan: &qc_plan::PlanNode, warmup: usize) -> u64 {
    let counter = Arc::new(ChaosExecBackend::seeded(
        clean_clift(),
        0,
        0,
        ExecFault::Panic,
    ));
    let backend: Arc<dyn qc_backend::Backend> = counter.clone() as _;
    let session = small_morsel_session(db);
    let requests = (0..warmup)
        .map(|i| SessionRequest::new(format!("warm{i}"), plan.clone()))
        .collect();
    let report = QueryScheduler::try_new(serial_scheduler_config())
        .expect("valid scheduler config")
        .serve_session(&session, &backend, requests);
    assert_eq!(report.failures(), 0, "warmup must run clean");
    counter.calls()
}

#[test]
fn runaway_governor_kills_cycle_blowout() {
    let db = qc_storage::gen_hlike(0.02);
    let suite = qc_workloads::hlike_suite();
    let plan = &suite[0].plan;
    let serial_cycles = small_morsel_session(&db)
        .prepare(plan)
        .and_then(|run| run.backend(clean_clift()).execute())
        .expect("serial run")
        .exec_stats
        .cycles;
    let warmup_calls = count_warmup_calls(&db, plan, 3);

    // Session 4's first morsel call reports 100x the whole query's
    // clean cost — far past the kill factor against the EWMA built
    // from the three identical warmup sessions.
    let chaos: Arc<dyn qc_backend::Backend> = Arc::new(ChaosExecBackend::on_nth(
        clean_clift(),
        warmup_calls,
        ExecFault::BurnCycles(serial_cycles.saturating_mul(100).max(1_000_000)),
    ));
    let session = small_morsel_session(&db);
    let requests: Vec<SessionRequest> = (0..4)
        .map(|i| SessionRequest::new(format!("s{i}"), plan.clone()))
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        runaway: Some(RunawayPolicy {
            factor: 1.5,
            kill_factor: 4.0,
            min_samples: 3,
        }),
        ..serial_scheduler_config()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &chaos, requests);

    assert_eq!(report.queries_killed, 1);
    assert_eq!(report.killed(), 1);
    for o in &report.outcomes[..3] {
        assert_eq!(o.status, OutcomeStatus::Ok, "warmup session {}", o.name);
    }
    let killed = &report.outcomes[3];
    assert_eq!(killed.status, OutcomeStatus::Killed);
    assert!(
        killed
            .error
            .as_deref()
            .is_some_and(|e| e.contains("runaway")),
        "kill outcome names the governor: {:?}",
        killed.error
    );
    assert!(killed.cycles > 0, "partial cycles are accounted");
}

#[test]
fn runaway_governor_downgrades_before_killing() {
    let db = qc_storage::gen_hlike(0.02);
    let suite = qc_workloads::hlike_suite();
    let plan = &suite[0].plan;
    let serial = small_morsel_session(&db)
        .prepare(plan)
        .and_then(|run| run.backend(clean_clift()).execute())
        .expect("serial run");
    let warmup_calls = count_warmup_calls(&db, plan, 3);

    // Same blowout, but the kill factor is far out of reach: the
    // governor downgrades the query down the chain instead, and the
    // session still completes with correct rows (the burn lies about
    // cost, not about results).
    let chaos: Arc<dyn qc_backend::Backend> = Arc::new(ChaosExecBackend::on_nth(
        clean_clift(),
        warmup_calls,
        ExecFault::BurnCycles(serial.exec_stats.cycles.saturating_mul(100).max(1_000_000)),
    ));
    let session = small_morsel_session(&db);
    let requests: Vec<SessionRequest> = (0..4)
        .map(|i| SessionRequest::new(format!("s{i}"), plan.clone()))
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        runaway: Some(RunawayPolicy {
            factor: 1.5,
            kill_factor: 1e12,
            min_samples: 3,
        }),
        fallback_chain: Some(FallbackChain::new(vec![Arc::from(backends::interpreter())])),
        ..serial_scheduler_config()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &chaos, requests);

    assert_eq!(report.runaway_downgrades, 1);
    assert_eq!(report.queries_killed, 0);
    assert_eq!(report.failures(), 0);
    let downgraded = &report.outcomes[3];
    assert_eq!(downgraded.status, OutcomeStatus::Ok);
    assert_eq!(
        downgraded.rows, serial.rows,
        "downgraded session must still produce correct rows"
    );
}

// ---------------------------------------------------------------------
// Per-tier circuit breaker.
// ---------------------------------------------------------------------

#[test]
fn breaker_trips_and_reroutes_admissions_down_the_chain() {
    let db = qc_storage::gen_hlike(0.02);
    let suite = qc_workloads::hlike_suite();
    let plan = &suite[0].plan;
    let serial = Session::new(&db)
        .prepare(plan)
        .and_then(|run| run.backend(clean_clift()).execute())
        .expect("serial run");

    // Every morsel call on the primary tier traps; after two
    // consecutive execution faults the breaker opens and later
    // admissions route to the interpreter tier instead.
    let chaos: Arc<dyn qc_backend::Backend> =
        Arc::new(ChaosExecBackend::always(clean_clift(), ExecFault::Trap(7)));
    let session = Session::new(&db);
    let requests: Vec<SessionRequest> = (0..5)
        .map(|i| SessionRequest::new(format!("s{i}"), plan.clone()))
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        breaker: Some(BreakerPolicy {
            trip_after: 2,
            cooldown: Duration::from_secs(600),
        }),
        fallback_chain: Some(FallbackChain::new(vec![Arc::from(backends::interpreter())])),
        ..serial_scheduler_config()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &chaos, requests);

    assert_eq!(report.breaker_trips, 1, "one trip after two faults");
    assert_eq!(report.failed(), 2, "the two pre-trip sessions fail");
    for o in &report.outcomes[..2] {
        assert_eq!(o.status, OutcomeStatus::Failed);
        assert!(
            o.error.as_deref().is_some_and(|e| e.contains("trap")),
            "pre-trip failure is the injected trap: {:?}",
            o.error
        );
    }
    for o in &report.outcomes[2..] {
        assert_eq!(o.status, OutcomeStatus::Ok, "rerouted session {}", o.name);
        assert_eq!(
            o.rows, serial.rows,
            "rerouted session {} must match serial rows",
            o.name
        );
    }
}

// ---------------------------------------------------------------------
// Budgets through the scheduler.
// ---------------------------------------------------------------------

#[test]
fn per_request_budget_kills_only_that_session() {
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let suite = qc_workloads::hlike_suite();
    let plan = &suite[0].plan;
    let requests: Vec<SessionRequest> = (0..4)
        .map(|i| {
            let req = SessionRequest::new(format!("s{i}"), plan.clone());
            if i == 2 {
                req.with_budget(QueryBudget::unlimited().with_max_cycles(1))
            } else {
                req
            }
        })
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &clean_clift(), requests);
    assert_eq!(report.killed(), 1);
    assert_eq!(report.queries_killed, 1);
    assert_eq!(report.failed(), 0);
    assert_eq!(report.outcomes[2].status, OutcomeStatus::Killed);
    for (i, o) in report.outcomes.iter().enumerate() {
        if i != 2 {
            assert_eq!(o.status, OutcomeStatus::Ok, "unbudgeted session {i}");
        }
    }
}

#[test]
fn scheduler_default_budget_applies_to_every_request() {
    let db = qc_storage::gen_hlike(0.02);
    let session = small_morsel_session(&db);
    let suite = qc_workloads::hlike_suite();
    let requests: Vec<SessionRequest> = (0..3)
        .map(|i| SessionRequest::new(format!("s{i}"), suite[0].plan.clone()))
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        query_budget: Some(QueryBudget::unlimited().with_max_cycles(1)),
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &clean_clift(), requests);
    assert_eq!(report.killed(), 3, "the default budget reaches everyone");
    assert_eq!(report.queries_killed, 3);
}

// ---------------------------------------------------------------------
// Satellites: admission edge cases and configuration validation.
// ---------------------------------------------------------------------

#[test]
fn admission_limit_one_still_serves_everything() {
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    let requests: Vec<SessionRequest> = (0..6)
        .map(|i| {
            let q = &suite[i % suite.len()];
            SessionRequest::new(q.name.clone(), q.plan.clone())
        })
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        admission_limit: 1,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(&session, &clean_clift(), requests);
    assert_eq!(report.outcomes.len(), 6);
    assert_eq!(report.failures(), 0);
    assert!(report
        .outcomes
        .iter()
        .all(|o| o.status == OutcomeStatus::Ok));
}

#[test]
fn zero_morsel_empty_table_query_completes() {
    use qc_plan::{col, lit_i64, PlanNode};
    use qc_storage::ColumnType;
    let mut db = Database::new();
    db.add_table(Table::new(
        "empty",
        Schema::new(vec![("a", ColumnType::I64), ("b", ColumnType::I64)]),
        vec![Column::I64(Vec::new()), Column::I64(Vec::new())],
    ));
    let session = Session::new(&db);
    let plan = PlanNode::scan("empty", &["a", "b"]).filter(col("a").lt(lit_i64(5)));

    // Direct execution, serial and parallel, with a budget attached:
    // zero morsels means nothing to claim, so the budget never trips.
    for workers in [1usize, 4] {
        let result = session
            .prepare(&plan)
            .and_then(|run| {
                run.backend(clean_clift())
                    .workers(workers)
                    .query_budget(QueryBudget::unlimited().with_max_cycles(u64::MAX))
                    .execute()
            })
            .unwrap_or_else(|e| panic!("empty-table query failed at {workers} workers: {e}"));
        assert!(result.rows.is_empty());
    }

    // Through the scheduler: a zero-morsel query must admit, run, and
    // finish Ok (initial_morsels = 0 also exempts it from the runaway
    // governor's prediction).
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        runaway: Some(RunawayPolicy::default()),
        ..Default::default()
    })
    .expect("valid scheduler config");
    let report = scheduler.serve_session(
        &session,
        &clean_clift(),
        vec![SessionRequest::new("empty-scan", plan.clone())],
    );
    assert_eq!(report.failures(), 0);
    assert_eq!(report.outcomes[0].status, OutcomeStatus::Ok);
    assert!(report.outcomes[0].rows.is_empty());
}

#[test]
fn fully_cached_session_serves_from_statement_and_code_cache() {
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    let backend = clean_clift();
    let mk_requests = || -> Vec<SessionRequest> {
        suite[..4]
            .iter()
            .map(|q| SessionRequest::new(q.name.clone(), q.plan.clone()))
            .collect()
    };
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("valid scheduler config");

    let first = scheduler.serve_session(&session, &backend, mk_requests());
    assert_eq!(first.failures(), 0);
    let hits_after_first = session.compile_service().cache_stats().hits;

    // Second serve of identical shapes: planning and compilation both
    // come from the session's caches, and the results are unchanged.
    let second = scheduler.serve_session(&session, &backend, mk_requests());
    assert_eq!(second.failures(), 0);
    assert!(
        session.compile_service().cache_stats().hits > hits_after_first,
        "the second serve must hit the shared code cache"
    );
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(a.status, OutcomeStatus::Ok);
        assert_eq!(b.status, OutcomeStatus::Ok);
        assert_eq!(a.rows, b.rows, "cached serve changed {}", a.name);
    }
}

#[test]
fn scheduler_config_validation_rejects_nonsense() {
    let bad = [
        SchedulerConfig {
            workers: 0,
            ..Default::default()
        },
        SchedulerConfig {
            admission_limit: 0,
            ..Default::default()
        },
        SchedulerConfig {
            morsel_credits: 0,
            ..Default::default()
        },
        SchedulerConfig {
            max_queue_depth: Some(0),
            ..Default::default()
        },
        SchedulerConfig {
            runaway: Some(RunawayPolicy {
                factor: 0.5,
                kill_factor: 4.0,
                min_samples: 1,
            }),
            ..Default::default()
        },
        SchedulerConfig {
            runaway: Some(RunawayPolicy {
                factor: 4.0,
                kill_factor: 2.0,
                min_samples: 1,
            }),
            ..Default::default()
        },
        SchedulerConfig {
            breaker: Some(BreakerPolicy {
                trip_after: 0,
                cooldown: Duration::from_millis(1),
            }),
            ..Default::default()
        },
    ];
    for (i, config) in bad.into_iter().enumerate() {
        match QueryScheduler::try_new(config) {
            Err(EngineError::Config(_)) => {}
            Err(other) => panic!("config {i}: expected Config error, got {other}"),
            Ok(_) => panic!("config {i} must be rejected"),
        }
    }
    assert!(QueryScheduler::try_new(SchedulerConfig::default()).is_ok());
}
