//! Failure-injection tests spanning the whole stack: planning errors,
//! runtime traps on every back-end, emulator guards, link errors, and
//! chaos-driven faults inside the compilation service (panic isolation,
//! compile deadlines, transient-retry, storage races).

use qc_backend::chaos::{ChaosBackend, ChaosFault};
use qc_backend::{Backend, BackendErrorKind};
use qc_engine::{backends, CompileBudget, CompileService, EngineError, PreparedStatement, Session};
use qc_ir::{FunctionBuilder, Module, Opcode, Signature, Type};
use qc_plan::{col, lit_i64, PlanNode};
use qc_runtime::RuntimeState;
use qc_target::{
    new_masm, EmuOptions, Emulator, ImageBuilder, Isa, Reentry, RuntimeDispatch, SymbolRef, Trap,
};
use qc_timing::TimeTrace;

/// Host with no runtime functions (generated code must not call out).
struct NoRuntime;
impl RuntimeDispatch for NoRuntime {
    fn arg_slots(&self, _: usize) -> usize {
        0
    }
    fn runtime_cost(&self, _: usize, _: &[u64]) -> u64 {
        0
    }
    fn call_runtime(&mut self, _: usize, _: &[u64], _: Reentry<'_>) -> Result<[u64; 2], Trap> {
        Err(Trap::Runtime(0))
    }
}

fn all_backends() -> Vec<Box<dyn Backend>> {
    let mut v = backends::all_for(Isa::Tx64);
    v.extend(backends::all_for(Isa::Ta64));
    v
}

/// Builds `fn f(x, y) -> i64` whose body is a single binary op.
fn binop_module(op: Opcode) -> Module {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let r = b.binary(op, Type::I64, x, y);
    b.ret(Some(r));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    m
}

fn call_on(backend: &dyn Backend, m: &Module, x: i64, y: i64) -> Result<u64, Trap> {
    let mut exe = backend.compile(m, &TimeTrace::disabled()).expect("compile");
    let mut state = RuntimeState::new();
    exe.call(&mut state, "f", &[x as u64, y as u64])
        .map(|r| r[0])
}

#[test]
fn unknown_table_is_a_plan_error() {
    let db = qc_storage::gen_hlike(0.01);
    let session = Session::new(&db);
    let plan = PlanNode::scan("no_such_table", &["x"]);
    match session.statement(&plan) {
        Err(EngineError::Plan(_)) => {}
        other => panic!("expected plan error, got {other:?}"),
    }
}

#[test]
fn unknown_column_is_a_plan_error() {
    let db = qc_storage::gen_hlike(0.01);
    let session = Session::new(&db);
    let plan =
        PlanNode::scan("lineitem", &["l_orderkey"]).filter(col("no_such_column").gt(lit_i64(0)));
    match session.statement(&plan) {
        Err(EngineError::Plan(_)) => {}
        other => panic!("expected plan error, got {other:?}"),
    }
}

#[test]
fn signed_overflow_traps_on_every_backend() {
    let m = binop_module(Opcode::SAddTrap);
    for backend in all_backends() {
        let r = call_on(backend.as_ref(), &m, i64::MAX, 1);
        assert!(
            r.is_err(),
            "{}: expected overflow trap, got {r:?}",
            backend.name()
        );
        // Non-overflowing inputs must still succeed.
        let ok = call_on(backend.as_ref(), &m, 40, 2);
        assert_eq!(ok, Ok(42), "{}", backend.name());
    }
}

#[test]
fn signed_mul_overflow_traps_on_every_backend() {
    let m = binop_module(Opcode::SMulTrap);
    for backend in all_backends() {
        let r = call_on(backend.as_ref(), &m, i64::MAX / 2, 3);
        assert!(
            r.is_err(),
            "{}: expected overflow trap, got {r:?}",
            backend.name()
        );
        assert_eq!(
            call_on(backend.as_ref(), &m, -6, -7),
            Ok(42),
            "{}",
            backend.name()
        );
    }
}

#[test]
fn division_by_zero_traps_on_every_backend() {
    let m = binop_module(Opcode::SDiv);
    for backend in all_backends() {
        let r = call_on(backend.as_ref(), &m, 42, 0);
        assert!(
            r.is_err(),
            "{}: expected div-by-zero trap, got {r:?}",
            backend.name()
        );
        assert_eq!(
            call_on(backend.as_ref(), &m, -84, -2),
            Ok(42),
            "{}",
            backend.name()
        );
    }
}

#[test]
fn int_min_division_overflow_traps_on_every_backend() {
    // i64::MIN / -1 overflows; the paper's IR traps rather than wrapping.
    let m = binop_module(Opcode::SDiv);
    for backend in all_backends() {
        let r = call_on(backend.as_ref(), &m, i64::MIN, -1);
        assert!(
            r.is_err(),
            "{}: expected overflow trap, got {r:?}",
            backend.name()
        );
    }
}

#[test]
fn fuel_guard_stops_runaway_code_on_both_isas() {
    for isa in [Isa::Tx64, Isa::Ta64] {
        let mut masm = new_masm(isa);
        let spin = masm.new_label();
        masm.bind(spin);
        masm.jmp(spin);
        masm.ret(); // unreachable; keeps the image well formed
        let (code, relocs) = masm.finish();
        let mut ib = ImageBuilder::new(isa);
        ib.add_function("spin", code, relocs);
        let image = ib.link(&|_| None).expect("link");
        let mut emu = Emulator::with_options(
            image,
            EmuOptions {
                fuel: 1_000,
                stack_size: 1 << 16,
            },
        );
        match emu.call(&mut NoRuntime, "spin", &[]) {
            Err(Trap::Fuel) => {}
            other => panic!("{isa:?}: expected fuel trap, got {other:?}"),
        }
    }
}

#[test]
fn calling_an_unknown_symbol_is_a_bad_jump() {
    let mut masm = new_masm(Isa::Tx64);
    masm.ret();
    let (code, relocs) = masm.finish();
    let mut ib = ImageBuilder::new(Isa::Tx64);
    ib.add_function("f", code, relocs);
    let image = ib.link(&|_| None).expect("link");
    let mut emu = Emulator::new(image);
    match emu.call(&mut NoRuntime, "nonexistent", &[]) {
        Err(Trap::BadJump(_)) => {}
        other => panic!("expected bad-jump trap, got {other:?}"),
    }
}

#[test]
fn unresolved_call_target_is_a_link_error_naming_the_symbol() {
    for isa in [Isa::Tx64, Isa::Ta64] {
        let mut masm = new_masm(isa);
        masm.call_sym(SymbolRef::named("missing_helper"));
        masm.ret();
        let (code, relocs) = masm.finish();
        let mut ib = ImageBuilder::new(isa);
        ib.add_function("f", code, relocs);
        let err = ib.link(&|_| None).expect_err("link must fail");
        let msg = err.to_string();
        assert!(msg.contains("missing_helper"), "{isa:?}: {msg}");
    }
}

#[test]
fn unreachable_marker_traps_on_every_backend() {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    b.unreachable();
    let mut m = Module::new("m");
    m.push_function(b.finish());
    for backend in all_backends() {
        let r = call_on(backend.as_ref(), &m, 0, 0);
        assert!(r.is_err(), "{}: expected trap, got {r:?}", backend.name());
    }
}

#[test]
fn verifier_rejects_type_mismatch() {
    // add i64 of an i128 operand must not verify.
    let sig = Signature::new(vec![Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let wide = b.sext(Type::I128, x);
    let bad = b.add(Type::I64, wide, x);
    b.ret(Some(bad));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    assert!(qc_ir::verify_module(&m).is_err());
}

/// A representative prepared statement for service-level fault injection.
fn prepared_scan(session: &Session<'_>) -> PreparedStatement {
    let plan = PlanNode::scan("lineitem", &["l_orderkey", "l_partkey"])
        .filter(col("l_orderkey").gt(lit_i64(10)));
    session.statement(&plan).expect("prepare")
}

#[test]
fn compile_panic_is_isolated_and_the_pool_survives() {
    // Silence the default panic hook for the injected panics only.
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if !msg.is_some_and(|m| m.contains("chaos: injected")) {
            default(info);
        }
    }));

    let db = qc_storage::gen_hlike(0.01);
    let session = Session::new(&db);
    let stmt = prepared_scan(&session);
    let prepared = stmt.query();
    let service = CompileService::default();
    let trace = TimeTrace::disabled();
    let workers_before = service.worker_count();

    let chaotic: std::sync::Arc<dyn Backend> = std::sync::Arc::new(ChaosBackend::always(
        std::sync::Arc::from(backends::lvm_cheap(Isa::Tx64)),
        ChaosFault::Panic,
    ));
    match service.compile(prepared, &chaotic, &trace) {
        Err(EngineError::Backend(e)) => {
            assert_eq!(e.kind, BackendErrorKind::Panic, "{e}");
            assert!(e.message.contains("panicked"), "{e}");
        }
        Err(other) => panic!("expected isolated panic error, got {other:?}"),
        Ok(_) => panic!("expected isolated panic error, got a compiled query"),
    }
    assert!(service.fault_stats().panics_caught > 0);

    // Nothing from the failed compile may be cached, and the pool must
    // still serve clean work at full strength.
    assert_eq!(service.cache_stats().entries, 0, "poisoned cache");
    let clean: std::sync::Arc<dyn Backend> = std::sync::Arc::from(backends::lvm_cheap(Isa::Tx64));
    let mut compiled = service
        .compile(prepared, &clean, &trace)
        .expect("pool must survive a panicked job");
    session
        .run(stmt.clone())
        .execute_compiled(&mut compiled)
        .expect("post-panic execution");
    assert_eq!(service.worker_count(), workers_before);
}

#[test]
fn compile_deadline_overrun_is_a_deadline_error_and_never_cached() {
    let db = qc_storage::gen_hlike(0.01);
    let session = Session::new(&db);
    let stmt = prepared_scan(&session);
    let prepared = stmt.query();
    let service = CompileService::default();
    let trace = TimeTrace::disabled();

    let slow: std::sync::Arc<dyn Backend> = std::sync::Arc::new(ChaosBackend::always(
        std::sync::Arc::from(backends::lvm_cheap(Isa::Tx64)),
        ChaosFault::Delay(std::time::Duration::from_millis(20)),
    ));
    let budget = CompileBudget::with_deadline(std::time::Duration::from_millis(2));
    match service.compile_budgeted(prepared, &slow, budget, &trace) {
        Err(EngineError::Backend(e)) => {
            assert_eq!(e.kind, BackendErrorKind::Deadline, "{e}");
        }
        Err(other) => panic!("expected deadline error, got {other:?}"),
        Ok(_) => panic!("expected deadline error, got a compiled query"),
    }
    assert!(service.fault_stats().deadline_overruns > 0);
    // The delayed compile actually finished; its artifact must still be
    // rejected from the cache because it blew the budget.
    assert_eq!(
        service.cache_stats().entries,
        0,
        "over-budget artifact cached"
    );

    // Without the deadline the same backend compiles fine.
    service
        .compile_budgeted(prepared, &slow, CompileBudget::default(), &trace)
        .expect("no deadline, no failure");
}

#[test]
fn transient_compile_fault_is_retried_to_success() {
    let db = qc_storage::gen_hlike(0.01);
    let session = Session::new(&db);
    let stmt = prepared_scan(&session);
    let prepared = stmt.query();
    let service = CompileService::default();
    let trace = TimeTrace::disabled();

    let flaky: std::sync::Arc<dyn Backend> = std::sync::Arc::new(ChaosBackend::on_nth(
        std::sync::Arc::from(backends::lvm_cheap(Isa::Tx64)),
        0,
        ChaosFault::TransientError,
    ));
    let mut compiled = service
        .compile(prepared, &flaky, &trace)
        .expect("one transient fault must be absorbed by the retry policy");
    assert!(service.fault_stats().retries >= 1);
    session
        .run(stmt.clone())
        .execute_compiled(&mut compiled)
        .expect("execution after retry");
}

#[test]
fn transient_faults_beyond_the_retry_budget_fail_with_the_last_error() {
    let db = qc_storage::gen_hlike(0.01);
    let session = Session::new(&db);
    let stmt = prepared_scan(&session);
    let prepared = stmt.query();
    let service = CompileService::default();
    let trace = TimeTrace::disabled();

    let broken: std::sync::Arc<dyn Backend> = std::sync::Arc::new(ChaosBackend::always(
        std::sync::Arc::from(backends::lvm_cheap(Isa::Tx64)),
        ChaosFault::TransientError,
    ));
    match service.compile(prepared, &broken, &trace) {
        Err(EngineError::Backend(e)) => {
            assert_eq!(e.kind, BackendErrorKind::Transient, "{e}");
        }
        Err(other) => panic!("expected transient exhaustion, got {other:?}"),
        Ok(_) => panic!("expected transient exhaustion, got a compiled query"),
    }
    assert!(
        service.fault_stats().retries >= 2,
        "retries must be attempted"
    );
}

#[test]
fn vanished_table_is_a_storage_error_not_a_panic() {
    // Prepare against an H-like catalog, execute against a DS-like one:
    // the table referenced by the plan no longer exists at execution
    // time, which must surface as EngineError::Storage.
    let db_h = qc_storage::gen_hlike(0.01);
    let session_h = Session::new(&db_h);
    let stmt = prepared_scan(&session_h);
    let backend: std::sync::Arc<dyn Backend> = std::sync::Arc::from(backends::interpreter());
    let mut compiled = session_h
        .run(stmt.clone())
        .backend(backend)
        .direct()
        .compile()
        .expect("compile");

    let db_ds = qc_storage::gen_dslike(0.01);
    let session_ds = Session::new(&db_ds);
    match session_ds.run(stmt.clone()).execute_compiled(&mut compiled) {
        Err(EngineError::Storage(msg)) => {
            assert!(msg.contains("lineitem"), "{msg}");
            assert!(msg.contains("vanished"), "{msg}");
        }
        Err(other) => panic!("expected storage error, got {other:?}"),
        Ok(r) => panic!("expected storage error, got {} rows", r.rows.len()),
    }
}

#[test]
fn trap_surfaces_through_the_engine_as_engine_error() {
    // quantity * extendedprice * extendedprice overflows a 128-bit decimal
    // eventually? Keep it deterministic instead: big literal multiply.
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let plan = PlanNode::scan("lineitem", &["l_orderkey"]).map(vec![(
        "boom",
        col("l_orderkey")
            .add(lit_i64(i64::MAX - 1))
            .mul(lit_i64(i64::MAX - 1)),
    )]);
    for backend in [backends::interpreter(), backends::clift(Isa::Tx64)] {
        let backend: std::sync::Arc<dyn Backend> = std::sync::Arc::from(backend);
        let name = backend.name();
        match session
            .prepare(&plan)
            .map(|run| run.backend(backend))
            .and_then(|run| run.execute())
        {
            Err(EngineError::Trap(_)) => {}
            other => panic!(
                "{name}: expected overflow trap through engine, got {:?}",
                other.map(|r| r.rows.len())
            ),
        }
    }
}
