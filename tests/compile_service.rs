//! The compilation service: parallel pipeline compiles must produce
//! bit-identical artifacts to sequential ones, warm cache hits must skip
//! code generation, and background tier-up must swap at a deterministic
//! morsel boundary without blocking the first morsel.

use qc_backend::chaos::{ChaosBackend, ChaosFault};
use qc_backend::Backend;
use qc_backend::BackendErrorKind;
use qc_engine::{
    backends, AdaptiveExecution, AdaptiveOutcome, CompileService, CompileServiceConfig,
    EngineConfig, PreparedStatement, Session, SessionConfig,
};
use qc_ir::Module;
use qc_plan::reference;
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;

/// Picks a query from the H-like suite that decomposes into several
/// pipelines, so the fan-out path is actually exercised.
fn multi_pipeline_query(session: &Session<'_>) -> PreparedStatement {
    let suite = qc_workloads::hlike_suite();
    for q in &suite {
        if let Ok(stmt) = session.statement(&q.plan) {
            if stmt.query().ir.modules.len() >= 2 {
                return stmt;
            }
        }
    }
    panic!("no multi-pipeline query in the suite");
}

fn direct_compile(
    session: &Session<'_>,
    stmt: &PreparedStatement,
    backend: &Arc<dyn Backend>,
) -> qc_engine::CompiledQuery {
    session
        .run(stmt.clone())
        .backend(Arc::clone(backend))
        .direct()
        .compile()
        .expect("direct compile")
}

fn execute(
    session: &Session<'_>,
    stmt: &PreparedStatement,
    compiled: &mut qc_engine::CompiledQuery,
) -> qc_engine::ExecutionResult {
    session
        .run(stmt.clone())
        .execute_compiled(compiled)
        .expect("execute")
}

fn artifact_bytes_sequential(backend: &dyn Backend, modules: &[Arc<Module>]) -> Vec<Vec<u8>> {
    let trace = TimeTrace::disabled();
    modules
        .iter()
        .map(|m| {
            backend
                .compile_artifact(m, &trace)
                .expect("compile")
                .expect("artifact support")
                .content_bytes()
        })
        .collect()
}

fn artifact_bytes_parallel(backend: &dyn Backend, modules: &[Arc<Module>]) -> Vec<Vec<u8>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = modules
            .iter()
            .map(|m| {
                s.spawn(move || {
                    let trace = TimeTrace::disabled();
                    backend
                        .compile_artifact(m, &trace)
                        .expect("compile")
                        .expect("artifact support")
                        .content_bytes()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("compile thread"))
            .collect()
    })
}

#[test]
fn parallel_compilation_is_bit_identical_to_sequential() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    for backend in backends::all_for(Isa::Tx64) {
        let seq = artifact_bytes_sequential(backend.as_ref(), &prepared.ir.modules);
        let par = artifact_bytes_parallel(backend.as_ref(), &prepared.ir.modules);
        assert_eq!(
            seq,
            par,
            "{}: concurrent compilation changed artifact content",
            backend.name()
        );
    }
}

#[test]
fn service_compile_matches_engine_compile() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    // Cache disabled so every module goes through the worker fan-out.
    let service = CompileService::new(CompileServiceConfig {
        workers: 4,
        cache_capacity: 0,
        ..Default::default()
    });
    let trace = TimeTrace::disabled();
    for backend in backends::all_for(Isa::Tx64) {
        let backend: Arc<dyn Backend> = Arc::from(backend);
        let mut a = direct_compile(&session, &stmt, &backend);
        let mut b = service
            .compile(prepared, &backend, &trace)
            .expect("service compile");
        let ra = execute(&session, &stmt, &mut a);
        let rb = execute(&session, &stmt, &mut b);
        assert_eq!(
            reference::normalize(&ra.rows),
            reference::normalize(&rb.rows),
            "{}: results differ",
            backend.name()
        );
        assert_eq!(
            ra.exec_stats.cycles,
            rb.exec_stats.cycles,
            "{}: cycle counts differ",
            backend.name()
        );
        assert_eq!(
            ra.compile_stats.code_bytes,
            rb.compile_stats.code_bytes,
            "{}: emitted code size differs",
            backend.name()
        );
        assert_eq!(
            ra.compile_stats.functions,
            rb.compile_stats.functions,
            "{}: compiled function count differs",
            backend.name()
        );
    }
}

#[test]
fn second_compile_hits_the_cache_and_reuses_code() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    let n = prepared.ir.modules.len() as u64;
    let trace = TimeTrace::disabled();
    for backend in backends::all_for(Isa::Tx64) {
        let backend: Arc<dyn Backend> = Arc::from(backend);
        let service = CompileService::new(CompileServiceConfig {
            workers: 2,
            cache_capacity: 64,
            ..Default::default()
        });
        let mut cold = service
            .compile(prepared, &backend, &trace)
            .expect("cold compile");
        let after_cold = service.cache_stats();
        assert_eq!(after_cold.hits, 0, "{}: cold run hit", backend.name());
        assert_eq!(
            after_cold.misses,
            n,
            "{}: expected one miss per pipeline",
            backend.name()
        );
        assert_eq!(after_cold.entries, n as usize);
        assert!(after_cold.resident_bytes > 0);

        let mut warm = service
            .compile(prepared, &backend, &trace)
            .expect("warm compile");
        let after_warm = service.cache_stats();
        assert_eq!(
            after_warm.hits,
            n,
            "{}: warm run did not hit on every pipeline",
            backend.name()
        );
        assert_eq!(after_warm.misses, n, "{}: warm run missed", backend.name());

        // Cached code must behave identically to freshly compiled code.
        let rc = execute(&session, &stmt, &mut cold);
        let rw = execute(&session, &stmt, &mut warm);
        assert_eq!(
            reference::normalize(&rc.rows),
            reference::normalize(&rw.rows)
        );
        assert_eq!(rc.exec_stats.cycles, rw.exec_stats.cycles);
        assert_eq!(rc.compile_stats.code_bytes, rw.compile_stats.code_bytes);
        assert_eq!(rc.compile_stats.functions, rw.compile_stats.functions);
    }
}

#[test]
fn distinct_configs_do_not_share_cached_code() {
    // lvm cheap-mode variants share name and ISA but differ in options;
    // the config fingerprint must keep their cache entries apart.
    let mut opts_a = qc_lvm::LvmOptions::defaults(Isa::Tx64, qc_lvm::OptMode::Cheap);
    opts_a.fastisel_crc32 = false;
    let mut opts_b = opts_a;
    opts_b.fastisel_crc32 = true;
    let a = backends::lvm_with(opts_a);
    let b = backends::lvm_with(opts_b);
    assert_eq!(a.name(), b.name());
    assert_ne!(
        a.config_fingerprint(),
        b.config_fingerprint(),
        "option variants must have distinct fingerprints"
    );

    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    let n = prepared.ir.modules.len() as u64;
    let service = CompileService::default();
    let trace = TimeTrace::disabled();
    let a: Arc<dyn Backend> = Arc::from(a);
    let b: Arc<dyn Backend> = Arc::from(b);
    service.compile(prepared, &a, &trace).expect("variant a");
    service.compile(prepared, &b, &trace).expect("variant b");
    let stats = service.cache_stats();
    assert_eq!(stats.hits, 0, "variant b must not reuse variant a's code");
    assert_eq!(stats.misses, 2 * n);
}

#[test]
fn background_tier_up_swaps_at_a_deterministic_boundary() {
    let db = qc_storage::gen_hlike(0.05);
    // Small morsels: many morsel boundaries.
    let session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 256 },
            ..Default::default()
        },
    );
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    let service = CompileService::default();
    let cheap: Arc<dyn Backend> = Arc::from(backends::interpreter());
    let optimized: Arc<dyn Backend> = Arc::from(backends::lvm_opt(Isa::Tx64));
    let policy = AdaptiveExecution::default();

    let (result, report) = policy
        .run_background(
            session.engine(),
            &service,
            prepared,
            &cheap,
            &optimized,
            Some(3),
        )
        .expect("background run");
    assert_eq!(report.outcome, AdaptiveOutcome::TieredUp);
    assert_eq!(report.swapped_at_morsel, Some(3));
    assert!(report.background_error.is_none());

    // Results must match a plain single-tier execution.
    let mut baseline_compiled = direct_compile(&session, &stmt, &cheap);
    let baseline = execute(&session, &stmt, &mut baseline_compiled);
    assert_eq!(
        reference::normalize(&result.rows),
        reference::normalize(&baseline.rows)
    );

    // Repeating the run swaps at the same boundary with the same cost.
    let (again, report2) = policy
        .run_background(
            session.engine(),
            &service,
            prepared,
            &cheap,
            &optimized,
            Some(3),
        )
        .expect("second background run");
    assert_eq!(report2.swapped_at_morsel, Some(3));
    assert_eq!(result.exec_stats.cycles, again.exec_stats.cycles);
}

#[test]
fn background_tier_failure_keeps_the_cheap_tier_result() {
    // Injected panics unwind through catch_unwind inside the service;
    // silence their default-hook spam without hiding real panics.
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if !msg.is_some_and(|m| m.contains("chaos: injected")) {
            default(info);
        }
    }));

    let db = qc_storage::gen_hlike(0.05);
    let session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 256 },
            ..Default::default()
        },
    );
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    let service = CompileService::default();
    let cheap: Arc<dyn Backend> = Arc::from(backends::interpreter());
    let policy = AdaptiveExecution::default();

    let mut baseline_compiled = direct_compile(&session, &stmt, &cheap);
    let baseline = execute(&session, &stmt, &mut baseline_compiled);

    for fault in [ChaosFault::Panic, ChaosFault::PermanentError] {
        let optimized: Arc<dyn Backend> = Arc::new(ChaosBackend::always(
            Arc::from(backends::lvm_opt(Isa::Tx64)),
            fault,
        ));
        let (result, report) = policy
            .run_background(
                session.engine(),
                &service,
                prepared,
                &cheap,
                &optimized,
                Some(3),
            )
            .unwrap_or_else(|e| panic!("{fault:?}: background run must survive: {e}"));

        // The failed tier-up must not disturb the cheap-tier execution:
        // same outcome shape, same rows, same stats as a plain run.
        assert_eq!(
            report.outcome,
            AdaptiveOutcome::StayedCheap,
            "{fault:?}: failed background compile must not swap"
        );
        assert_eq!(report.swapped_at_morsel, None);
        let err = report
            .background_error
            .unwrap_or_else(|| panic!("{fault:?}: background failure must be reported"));
        match fault {
            ChaosFault::Panic => assert_eq!(err.kind, BackendErrorKind::Panic),
            _ => assert_eq!(err.kind, BackendErrorKind::Permanent),
        }
        assert_eq!(
            reference::normalize(&result.rows),
            reference::normalize(&baseline.rows),
            "{fault:?}: cheap-tier rows disturbed"
        );
        assert_eq!(result.exec_stats.cycles, baseline.exec_stats.cycles);
        assert_eq!(
            result.compile_stats.functions, baseline.compile_stats.functions,
            "{fault:?}: cheap-tier compile stats disturbed"
        );
        assert_eq!(
            result.compile_stats.code_bytes,
            baseline.compile_stats.code_bytes
        );
    }

    // Panics were isolated, and the pool is still healthy: a genuine
    // tier-up through the same service succeeds afterwards.
    assert!(service.fault_stats().panics_caught > 0);
    let optimized: Arc<dyn Backend> = Arc::from(backends::lvm_opt(Isa::Tx64));
    let (_, report) = policy
        .run_background(
            session.engine(),
            &service,
            prepared,
            &cheap,
            &optimized,
            Some(3),
        )
        .expect("clean background run after faults");
    assert_eq!(report.outcome, AdaptiveOutcome::TieredUp);
    assert!(report.background_error.is_none());
}

#[test]
fn tier_up_merges_compile_stats_across_tiers() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let stmt = multi_pipeline_query(&session);
    let prepared = stmt.query();
    let cheap: Arc<dyn Backend> = Arc::from(backends::interpreter());
    let optimized = backends::clift(Isa::Tx64);
    // Force the tier-up path with a policy whose threshold is trivially
    // exceeded.
    let policy = AdaptiveExecution {
        expected_executions: u64::MAX / 2,
        benefit_threshold: 1,
    };
    let (result, outcome) = policy
        .run(
            session.engine(),
            prepared,
            cheap.as_ref(),
            optimized.as_ref(),
        )
        .expect("adaptive run");
    assert_eq!(outcome, AdaptiveOutcome::TieredUp);
    let mut cheap_only = direct_compile(&session, &stmt, &cheap);
    let cheap_result = execute(&session, &stmt, &mut cheap_only);
    // Both tiers contribute: the merged stats must strictly exceed the
    // cheap tier's own function count.
    assert!(
        result.compile_stats.functions > cheap_result.compile_stats.functions,
        "tiered stats {} not above cheap-tier stats {}",
        result.compile_stats.functions,
        cheap_result.compile_stats.functions
    );
}
