//! End-to-end linker tests: cross-function calls through symbolic
//! relocations must execute correctly even when the callee is out of
//! direct branch range and the linker has to synthesize a thunk
//! (TA64's ±1 MiB branch range — AArch64 veneer territory).

use qc_target::{new_masm, Emulator, ImageBuilder, Isa, Reentry, RuntimeDispatch, SymbolRef, Trap};

struct NoRuntime;
impl RuntimeDispatch for NoRuntime {
    fn arg_slots(&self, _: usize) -> usize {
        0
    }
    fn runtime_cost(&self, _: usize, _: &[u64]) -> u64 {
        0
    }
    fn call_runtime(&mut self, _: usize, _: &[u64], _: Reentry<'_>) -> Result<[u64; 2], Trap> {
        Err(Trap::Runtime(0))
    }
}

fn ret_const(isa: Isa, value: i64) -> (Vec<u8>, Vec<qc_target::Reloc>) {
    let mut m = new_masm(isa);
    m.mov_ri(qc_target::Reg(0), value);
    m.ret();
    m.finish()
}

fn call_and_ret(isa: Isa, callee: &str) -> (Vec<u8>, Vec<qc_target::Reloc>) {
    let mut m = new_masm(isa);
    m.call_sym(SymbolRef::named(callee));
    m.ret();
    m.finish()
}

fn run(image: qc_target::CodeImage, entry: &str) -> u64 {
    let mut emu = Emulator::new(image);
    emu.call(&mut NoRuntime, entry, &[]).expect("execute")[0]
}

#[test]
fn near_cross_function_call_executes() {
    for isa in [Isa::Tx64, Isa::Ta64] {
        let mut ib = ImageBuilder::new(isa);
        let (code, relocs) = call_and_ret(isa, "callee");
        ib.add_function("caller", code, relocs);
        let (code, relocs) = ret_const(isa, 42);
        ib.add_function("callee", code, relocs);
        let image = ib.link(&|_| None).expect("link");
        assert_eq!(run(image, "caller"), 42, "{isa:?}");
    }
}

#[test]
fn far_call_goes_through_a_synthesized_veneer() {
    // 2 MiB of padding pushes the callee beyond TA64's ±1 MiB direct
    // branch range; the linker must insert a thunk. TX64's rel32 reaches
    // ±2 GiB, so the same layout links thunk-free there — both must run.
    for isa in [Isa::Tx64, Isa::Ta64] {
        let mut ib = ImageBuilder::new(isa);
        let (code, relocs) = call_and_ret(isa, "callee");
        ib.add_function("caller", code, relocs);
        let before = {
            let (code, _) = call_and_ret(isa, "callee");
            code.len()
        };
        ib.add_data("pad", vec![0u8; 2 << 20], 16, vec![]);
        let (code, relocs) = ret_const(isa, 4242);
        ib.add_function("callee", code, relocs);
        let image = ib.link(&|_| None).expect("link");
        // The linked image must be at least pad + both functions; on TA64
        // the thunk adds code beyond the original functions.
        assert!(
            image.len() >= (2 << 20) + before,
            "{isa:?}: image too small"
        );
        assert_eq!(run(image, "caller"), 4242, "{isa:?}");
    }
}

#[test]
fn far_call_in_both_directions() {
    // Backward far call: the callee comes *first*, the caller 2 MiB later.
    for isa in [Isa::Tx64, Isa::Ta64] {
        let mut ib = ImageBuilder::new(isa);
        let (code, relocs) = ret_const(isa, 7);
        ib.add_function("callee", code, relocs);
        ib.add_data("pad", vec![0u8; 2 << 20], 16, vec![]);
        let (code, relocs) = call_and_ret(isa, "callee");
        ib.add_function("caller", code, relocs);
        let image = ib.link(&|_| None).expect("link");
        assert_eq!(run(image, "caller"), 7, "{isa:?}");
    }
}

#[test]
fn chain_of_cross_function_calls() {
    // f3 -> f2 -> f1, with padding spreading them across veneer range.
    for isa in [Isa::Tx64, Isa::Ta64] {
        let mut ib = ImageBuilder::new(isa);
        let (code, relocs) = ret_const(isa, 99);
        ib.add_function("f1", code, relocs);
        ib.add_data("pad1", vec![0u8; 2 << 20], 16, vec![]);
        let (code, relocs) = call_and_ret(isa, "f1");
        ib.add_function("f2", code, relocs);
        ib.add_data("pad2", vec![0u8; 2 << 20], 16, vec![]);
        let (code, relocs) = call_and_ret(isa, "f2");
        ib.add_function("f3", code, relocs);
        let image = ib.link(&|_| None).expect("link");
        assert_eq!(run(image, "f3"), 99, "{isa:?}");
    }
}
