//! Floating-point semantics across every back-end: the query layer only
//! produces `f64` through `AVG` (int→float casts + division), but the IR
//! and all back-ends implement the full float ALU, comparisons, selects,
//! and conversions — results must be bit-identical to Rust `f64`.

use qc_backend::Backend;
use qc_engine::backends;
use qc_ir::{CastOp, CmpOp, FunctionBuilder, Module, Opcode, Signature, Type};
use qc_runtime::RuntimeState;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn all_backends() -> Vec<Box<dyn Backend>> {
    let mut v = backends::all_for(Isa::Tx64);
    v.extend(backends::all_for(Isa::Ta64));
    v
}

fn run_all_f64(m: &Module, args: &[u64], expected_bits: u64) {
    qc_ir::verify_module(m).expect("verify");
    for backend in all_backends() {
        let mut exe = backend.compile(m, &TimeTrace::disabled()).expect("compile");
        let mut state = RuntimeState::new();
        let got = exe
            .call(&mut state, "f", args)
            .unwrap_or_else(|t| panic!("{}: trapped: {t}", backend.name()));
        assert_eq!(
            got[0],
            expected_bits,
            "{}: got {} expected {}",
            backend.name(),
            f64::from_bits(got[0]),
            f64::from_bits(expected_bits)
        );
    }
}

/// `fn f(x: i64, y: i64) -> f64 bits`: chains every float ALU op.
#[test]
fn float_alu_chain_is_bit_identical() {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::F64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let fx = b.cast(CastOp::SiToF, Type::F64, x);
    let fy = b.cast(CastOp::SiToF, Type::F64, y);
    let half = b.fconst(0.5);
    let s = b.binary(Opcode::FAdd, Type::F64, fx, fy);
    let d = b.binary(Opcode::FSub, Type::F64, s, half);
    let p = b.binary(Opcode::FMul, Type::F64, d, fx);
    let q = b.binary(Opcode::FDiv, Type::F64, p, fy);
    b.ret(Some(q));
    let mut m = Module::new("m");
    m.push_function(b.finish());

    let model = |x: i64, y: i64| -> f64 { ((x as f64 + y as f64) - 0.5) * x as f64 / y as f64 };
    for (x, y) in [(3i64, 7i64), (-5, 2), (1_000_000, -3), (0, 9)] {
        run_all_f64(&m, &[x as u64, y as u64], model(x, y).to_bits());
    }
}

/// Float comparison drives a select; both sides of the branchless path.
#[test]
fn float_compare_and_select() {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::F64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let fx = b.cast(CastOp::SiToF, Type::F64, x);
    let fy = b.cast(CastOp::SiToF, Type::F64, y);
    let c = b.fcmp(CmpOp::SLt, fx, fy);
    let r = b.select(Type::F64, c, fx, fy); // min(fx, fy)
    b.ret(Some(r));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    for (x, y) in [(1i64, 2i64), (2, 1), (-8, -9), (5, 5)] {
        let expected = (x as f64).min(y as f64).to_bits();
        run_all_f64(&m, &[x as u64, y as u64], expected);
    }
}

/// Float → int conversion (the trapping cast) on exact values.
#[test]
fn float_to_int_roundtrip() {
    let sig = Signature::new(vec![Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let fx = b.cast(CastOp::SiToF, Type::F64, x);
    let three = b.fconst(3.0);
    let trip = b.binary(Opcode::FMul, Type::F64, fx, three);
    let back = b.cast(CastOp::FToSi, Type::I64, trip);
    b.ret(Some(back));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    qc_ir::verify_module(&m).expect("verify");
    for backend in all_backends() {
        let mut exe = backend
            .compile(&m, &TimeTrace::disabled())
            .expect("compile");
        let mut state = RuntimeState::new();
        for x in [0i64, 14, -100, 1 << 20] {
            let got = exe
                .call(&mut state, "f", &[x as u64])
                .unwrap_or_else(|t| panic!("{}: trapped: {t}", backend.name()));
            assert_eq!(got[0] as i64, x * 3, "{} at x={x}", backend.name());
        }
    }
}

/// More live float values than the float register pool: float spill
/// paths must reload the right bits.
#[test]
fn float_register_pressure() {
    const N: i64 = 24;
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::F64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let fx = b.cast(CastOp::SiToF, Type::F64, x);
    let mut live = Vec::new();
    for i in 0..N {
        let k = b.fconst(i as f64 + 1.5);
        live.push(b.binary(Opcode::FMul, Type::F64, fx, k));
    }
    let mut acc = live.pop().expect("values");
    while let Some(v) = live.pop() {
        acc = b.binary(Opcode::FAdd, Type::F64, acc, v);
    }
    b.ret(Some(acc));
    let mut m = Module::new("m");
    m.push_function(b.finish());

    let model = |x: i64| -> f64 {
        let fx = x as f64;
        let vals: Vec<f64> = (0..N).map(|i| fx * (i as f64 + 1.5)).collect();
        let mut acc = vals[N as usize - 1];
        for v in vals[..N as usize - 1].iter().rev() {
            acc += v;
        }
        acc
    };
    for x in [1i64, -7, 12345] {
        run_all_f64(&m, &[x as u64, 0], model(x).to_bits());
    }
}
