//! Register-pressure stress on every back-end: more simultaneously live
//! values than either ISA has registers (forcing spills in Clift/LVM and
//! home-slot traffic in DirectEmit), including 128-bit pairs that consume
//! two registers each.

use qc_backend::Backend;
use qc_engine::backends;
use qc_ir::{FunctionBuilder, Module, Signature, Type};
use qc_runtime::RuntimeState;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn all_backends() -> Vec<Box<dyn Backend>> {
    let mut v = backends::all_for(Isa::Tx64);
    v.extend(backends::all_for(Isa::Ta64));
    v
}

fn run_all(m: &Module, args: &[u64], expected: u64) {
    qc_ir::verify_module(m).expect("verify");
    for backend in all_backends() {
        let mut exe = backend.compile(m, &TimeTrace::disabled()).expect("compile");
        let mut state = RuntimeState::new();
        let got = exe
            .call(&mut state, "f", args)
            .unwrap_or_else(|t| panic!("{}: trapped: {t}", backend.name()));
        assert_eq!(got[0], expected, "{} wrong result", backend.name());
    }
}

/// 48 products `x*(i+1) ^ y` all live until a final fold — far beyond 16
/// (TX64) and 31 (TA64) registers, so every allocator must spill and
/// reload correctly.
#[test]
fn forty_eight_simultaneously_live_values() {
    const N: i64 = 48;
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let mut live = Vec::new();
    for i in 0..N {
        let k = b.iconst(Type::I64, i128::from(i + 1));
        let p = b.mul(Type::I64, x, k);
        let v = b.binary(qc_ir::Opcode::Xor, Type::I64, p, y);
        live.push(v);
    }
    // Fold in reverse so the first product has the longest live range.
    let mut acc = live.pop().expect("values");
    while let Some(v) = live.pop() {
        acc = b.add(Type::I64, acc, v);
    }
    b.ret(Some(acc));
    let mut m = Module::new("m");
    m.push_function(b.finish());

    let model = |x: i64, y: i64| -> i64 {
        (0..N)
            .map(|i| (x.wrapping_mul(i + 1)) ^ y)
            .fold(0i64, i64::wrapping_add)
    };
    for (x, y) in [(3i64, 5i64), (-7, 1 << 40), (i64::MAX / 3, -1)] {
        run_all(&m, &[x as u64, y as u64], model(x, y) as u64);
    }
}

/// Twelve live i128 values (24 register halves) plus their fold: pair
/// allocation must keep lo/hi halves consistent across spills.
#[test]
fn live_i128_pairs_under_pressure() {
    const N: i64 = 12;
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let wx = b.sext(Type::I128, x);
    let wy = b.sext(Type::I128, y);
    let mut live = Vec::new();
    for i in 0..N {
        let k = b.iconst(Type::I128, i128::from(i + 3));
        // Trapping arithmetic: the only i128 multiply query code emits
        // (decimals), supported by every back-end including DirectEmit.
        let p = b.binary(qc_ir::Opcode::SMulTrap, Type::I128, wx, k);
        let q = b.binary(qc_ir::Opcode::SAddTrap, Type::I128, p, wy);
        live.push(q);
    }
    let mut acc = live.pop().expect("values");
    while let Some(v) = live.pop() {
        acc = b.binary(qc_ir::Opcode::SAddTrap, Type::I128, acc, v);
    }
    // Collapse to 64 bits mixing both halves: the hi half is extracted
    // with the i128 division DirectEmit supports (a runtime helper).
    let two64 = b.iconst(Type::I128, 1i128 << 64);
    let hi = b.binary(qc_ir::Opcode::SDiv, Type::I128, acc, two64);
    let lo64 = b.trunc(Type::I64, acc);
    let hi64 = b.trunc(Type::I64, hi);
    let r = b.binary(qc_ir::Opcode::Xor, Type::I64, lo64, hi64);
    b.ret(Some(r));
    let mut m = Module::new("m");
    m.push_function(b.finish());

    let model = |x: i64, y: i64| -> u64 {
        let (wx, wy) = (i128::from(x), i128::from(y));
        let acc = (0..N).map(|i| wx * i128::from(i + 3) + wy).sum::<i128>();
        let hi = acc / (1i128 << 64);
        (acc as u64) ^ (hi as u64)
    };
    for (x, y) in [
        (1_000_000_007i64, -13i64),
        (-1, 1),
        (i64::MAX / 5, i64::MIN / 7),
    ] {
        run_all(&m, &[x as u64, y as u64], model(x, y));
    }
}

/// Pressure across a runtime call: values live over a call must survive
/// the call (caller-saved handling / store-through-home correctness).
#[test]
fn values_live_across_runtime_calls() {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let mut live = Vec::new();
    for i in 0..20i64 {
        let k = b.iconst(Type::I64, i128::from(i + 17));
        live.push(b.mul(Type::I64, x, k));
    }
    // rt_alloc allocates scratch memory and clobbers caller-saved regs.
    let callee = b.declare_ext_func(qc_ir::ExtFuncDecl {
        name: "rt_alloc".to_string(),
        sig: Signature::new(vec![Type::I64], Type::Ptr),
    });
    let size = b.iconst(Type::I64, 64);
    let ptr = b.call(callee, vec![size]).expect("rt_alloc returns");
    // Store/load through the fresh allocation to use the call result.
    b.store(Type::I64, ptr, y, 0);
    let back = b.load(Type::I64, ptr, 0);
    let mut acc = back;
    for v in live {
        acc = b.add(Type::I64, acc, v);
    }
    b.ret(Some(acc));
    let mut m = Module::new("m");
    m.push_function(b.finish());

    let model = |x: i64, y: i64| -> i64 {
        (0..20i64)
            .map(|i| x.wrapping_mul(i + 17))
            .fold(y, i64::wrapping_add)
    };
    for (x, y) in [(11i64, 300i64), (-2, 9)] {
        run_all(&m, &[x as u64, y as u64], model(x, y) as u64);
    }
}
