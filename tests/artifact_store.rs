//! Integration tests for the persistent artifact store (L2) under the
//! session/compile-service stack: warm restarts served from disk,
//! checksum rejection of corrupted or truncated files followed by a
//! clean recompile, concurrent writers publishing no torn files, the
//! directory size budget, and graceful pass-through degradation when
//! the store directory is unusable.

use qc_backend::Backend;
use qc_engine::{
    backends, ArtifactStore, ArtifactStoreConfig, CompileServiceConfig, CompiledQuery, Session,
    SessionConfig,
};
use qc_plan::{reference, PlanNode};
use qc_target::Isa;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fresh, empty per-test directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qc-artifact-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_session<'db>(db: &'db qc_storage::Database, dir: &Path) -> Session<'db> {
    Session::with_config(
        db,
        SessionConfig::with_artifact_store(ArtifactStoreConfig::at(dir.to_path_buf())),
    )
}

fn native_backend() -> Arc<dyn Backend> {
    Arc::from(backends::clift(Isa::Tx64))
}

/// Compiles through the session's compile service (L1 + L2 visible),
/// not the direct one-shot path.
fn compile_via_service(
    session: &Session<'_>,
    plan: &PlanNode,
    backend: &Arc<dyn Backend>,
) -> CompiledQuery {
    session
        .prepare(plan)
        .expect("prepare")
        .backend(Arc::clone(backend))
        .compile()
        .expect("compile")
}

fn execute(session: &Session<'_>, plan: &PlanNode, compiled: &mut CompiledQuery) -> Vec<String> {
    let stmt = session.statement(plan).expect("statement");
    let result = session
        .run(stmt)
        .execute_compiled(compiled)
        .expect("execute");
    reference::normalize(&result.rows)
}

fn qca_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .expect("store dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "qca"))
        .collect()
}

#[test]
fn warm_restart_is_served_from_disk() {
    let dir = fresh_dir("warm");
    let db = qc_storage::gen_hlike(0.02);
    let q = &qc_workloads::hlike_suite()[0];
    let backend = native_backend();
    let expected = reference::normalize(&reference::execute(&q.plan, &db).expect("reference"));

    // Cold process: every module misses both tiers and is written out.
    let cold = store_session(&db, &dir);
    let mut compiled = compile_via_service(&cold, &q.plan, &backend);
    let stats = cold.compile_service().cache_stats();
    assert_eq!(stats.disk_hits, 0, "cold run must not hit the disk tier");
    assert!(stats.disk_writes > 0, "cold run must persist its artifacts");
    assert_eq!(execute(&cold, &q.plan, &mut compiled), expected);
    drop(cold);

    // Fresh session over the same directory models a process restart:
    // the in-memory LRU is empty, so every module is served from disk.
    let warm = store_session(&db, &dir);
    let mut compiled = compile_via_service(&warm, &q.plan, &backend);
    let stats = warm.compile_service().cache_stats();
    assert_eq!(stats.hits, 0, "restart cannot hit the in-memory tier");
    assert!(stats.disk_hits > 0, "restart must hit the disk tier");
    assert_eq!(stats.disk_writes, 0, "disk hits must not be re-written");
    assert_eq!(execute(&warm, &q.plan, &mut compiled), expected);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_truncated_artifacts_are_rejected_then_recompiled() {
    let dir = fresh_dir("corrupt");
    let db = qc_storage::gen_hlike(0.02);
    let q = &qc_workloads::hlike_suite()[2];
    let backend = native_backend();
    let expected = reference::normalize(&reference::execute(&q.plan, &db).expect("reference"));

    let seed = store_session(&db, &dir);
    compile_via_service(&seed, &q.plan, &backend);
    drop(seed);

    // Damage every stored artifact: flip a payload byte in half of the
    // files (checksum mismatch), truncate the rest (short read).
    let files = qca_files(&dir);
    assert!(!files.is_empty(), "seed run must leave artifacts behind");
    for (i, path) in files.iter().enumerate() {
        let mut bytes = std::fs::read(path).expect("read artifact");
        if i % 2 == 0 {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
        } else {
            bytes.truncate(bytes.len() / 2);
        }
        std::fs::write(path, &bytes).expect("re-write artifact");
    }

    // A restart sees only damaged files: every load is rejected by
    // verification, the query recompiles cleanly, and the event is
    // visible in both the cache and fault counter surfaces.
    let warm = store_session(&db, &dir);
    let mut compiled = compile_via_service(&warm, &q.plan, &backend);
    let stats = warm.compile_service().cache_stats();
    assert_eq!(stats.disk_hits, 0, "damaged artifacts must not be served");
    assert_eq!(
        stats.disk_corrupt_rejected,
        files.len() as u64,
        "every damaged file must be rejected"
    );
    assert!(
        warm.compile_service().fault_stats().artifact_corruptions > 0,
        "corruption must surface in the fault counters"
    );
    assert!(stats.disk_writes > 0, "recompile must re-publish artifacts");
    assert_eq!(execute(&warm, &q.plan, &mut compiled), expected);

    // The rejected files were removed and replaced: a further restart
    // is served from the re-published artifacts.
    let again = store_session(&db, &dir);
    compile_via_service(&again, &q.plan, &backend);
    let stats = again.compile_service().cache_stats();
    assert!(stats.disk_hits > 0, "re-published artifacts must serve");
    assert_eq!(stats.disk_corrupt_rejected, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_publish_no_torn_files() {
    let dir = fresh_dir("race");
    let db = qc_storage::gen_hlike(0.02);
    let suite = qc_workloads::hlike_suite();
    let picks: Vec<&qc_workloads::BenchQuery> = suite.iter().take(4).collect();

    // Several sessions (each with its own store handle over the same
    // directory) race to publish the same artifact files.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let dir = dir.clone();
            let db = &db;
            let picks = &picks;
            s.spawn(move || {
                let session = store_session(db, &dir);
                let backend = native_backend();
                for q in picks {
                    compile_via_service(&session, &q.plan, &backend);
                }
            });
        }
    });

    // Every published file parses and checksums; rename-publishing left
    // no torn or partial files behind.
    let store = ArtifactStore::open(ArtifactStoreConfig::at(dir.clone()));
    let (intact, corrupt) = store.fsck();
    assert!(intact > 0, "racing writers must have published artifacts");
    assert_eq!(corrupt, 0, "no torn files may be published");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn size_budget_evicts_artifacts() {
    let dir = fresh_dir("budget");
    let db = qc_storage::gen_hlike(0.02);
    let suite = qc_workloads::hlike_suite();
    let backend = native_backend();

    // A 1-byte budget forces eviction after every write; the store
    // keeps compiling and the counters record the evictions.
    let session = Session::with_config(
        &db,
        SessionConfig::with_artifact_store(ArtifactStoreConfig::at(dir.clone()).with_max_bytes(1)),
    );
    for q in suite.iter().take(3) {
        compile_via_service(&session, &q.plan, &backend);
    }
    let store = session.compile_service().artifact_store().expect("store");
    let counters = store.counters();
    assert!(counters.writes > 0);
    assert!(
        counters.evictions > 0,
        "a 1-byte budget must evict: {counters:?}"
    );
    assert!(
        qca_files(&dir).is_empty(),
        "nothing fits a 1-byte budget after eviction"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_store_directory_degrades_to_passthrough() {
    // A regular file where the directory should be: the store cannot
    // create it and must open in pass-through mode without failing any
    // compile.
    let blocker =
        std::env::temp_dir().join(format!("qc-artifact-test-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("blocker file");
    let dir = blocker.join("store");

    let db = qc_storage::gen_hlike(0.02);
    let q = &qc_workloads::hlike_suite()[0];
    let backend = native_backend();
    let expected = reference::normalize(&reference::execute(&q.plan, &db).expect("reference"));

    let session = store_session(&db, &dir);
    let store = session.compile_service().artifact_store().expect("store");
    assert!(!store.is_enabled());
    assert!(store.disabled_reason().is_some());

    let mut compiled = compile_via_service(&session, &q.plan, &backend);
    assert_eq!(execute(&session, &q.plan, &mut compiled), expected);
    let stats = session.compile_service().cache_stats();
    assert_eq!(stats.disk_writes, 0, "pass-through must not write");
    assert_eq!(stats.disk_hits, 0);
    assert!(stats.disk_misses > 0, "loads still count as misses");

    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn zero_l1_capacity_still_serves_disk_hits() {
    let dir = fresh_dir("zero-l1");
    let db = qc_storage::gen_hlike(0.02);
    let q = &qc_workloads::hlike_suite()[0];
    let backend = native_backend();

    let session = Session::with_config(
        &db,
        SessionConfig {
            compile: CompileServiceConfig {
                cache_capacity: 0,
                ..Default::default()
            },
            artifact_store: Some(ArtifactStoreConfig::at(dir.clone())),
            ..Default::default()
        },
    );
    compile_via_service(&session, &q.plan, &backend);
    compile_via_service(&session, &q.plan, &backend);
    let stats = session.compile_service().cache_stats();
    assert_eq!(stats.hits, 0, "L1 is disabled");
    assert_eq!(stats.entries, 0, "L1 must stay empty at capacity 0");
    assert!(
        stats.disk_hits > 0,
        "second compile must be served by the disk tier: {stats:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
