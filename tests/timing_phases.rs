//! The bench harness reads per-phase timings out of [`qc_timing`]
//! reports; these tests pin the phase vocabulary each back-end emits (the
//! rows of the paper's Figures 2–5 and Table I) so a refactor cannot
//! silently rename a phase out of the published breakdowns.

use qc_engine::{backends, Session};
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;

fn trace_for(backend: Box<dyn qc_backend::Backend>) -> qc_timing::Report {
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
    let trace = TimeTrace::new();
    session
        .prepare(&suite[2].plan)
        .expect("prepare")
        .backend(backend)
        .trace(&trace)
        .direct()
        .compile()
        .expect("compile");
    trace.report()
}

fn assert_phases(report: &qc_timing::Report, backend: &str, expect: &[&str]) {
    for phase in expect {
        assert!(
            report.total(phase).is_some(),
            "{backend}: phase `{phase}` missing; recorded phases: {:?}",
            report
                .rows()
                .iter()
                .map(|r| r.path.clone())
                .collect::<Vec<_>>()
        );
    }
}

/// Top-level phase fractions must account for (almost) all compile time —
/// the breakdown figures would otherwise hide work in unlabeled gaps.
fn assert_fractions_sum(report: &qc_timing::Report, backend: &str) {
    let sum: f64 = report
        .rows()
        .iter()
        .filter(|r| r.depth() == 0)
        .map(|r| report.fraction(&r.path))
        .sum();
    assert!(
        (0.99..=1.01).contains(&sum),
        "{backend}: top-level fractions sum to {sum}"
    );
}

#[test]
fn interpreter_phases() {
    let r = trace_for(backends::interpreter());
    assert_phases(&r, "Interpreter", &["bytecodegen"]);
    assert_fractions_sum(&r, "Interpreter");
}

#[test]
fn direct_emit_phases_match_figure5() {
    let r = trace_for(backends::direct_emit());
    assert_phases(
        &r,
        "DirectEmit",
        &[
            "analysis",
            "analysis/liveness",
            "analysis/cfg",
            "codegen",
            "link",
        ],
    );
    assert_fractions_sum(&r, "DirectEmit");
    // Figure 5's headline: liveness dominates the analysis pass.
    let liveness = r
        .total("analysis/liveness")
        .expect("liveness")
        .as_secs_f64();
    let analysis = r.total("analysis").expect("analysis").as_secs_f64();
    assert!(
        liveness > 0.5 * analysis,
        "liveness is only {:.0}% of analysis",
        100.0 * liveness / analysis
    );
}

#[test]
fn clift_phases_match_figure4() {
    let r = trace_for(backends::clift(Isa::Tx64));
    assert_phases(&r, "Clift", &["irgen", "regalloc", "emit", "finish"]);
    assert_fractions_sum(&r, "Clift");
}

#[test]
fn lvm_cheap_phases_match_figure2() {
    let r = trace_for(backends::lvm_cheap(Isa::Tx64));
    assert_phases(
        &r,
        "LVM-cheap",
        &["irgen", "isel", "regalloc", "asmprinter", "link", "irdtor"],
    );
    assert_fractions_sum(&r, "LVM-cheap");
    // The paper's surprise: the AsmPrinter is a visible fraction even in
    // cheap mode.
    assert!(
        r.fraction("asmprinter") > 0.05,
        "AsmPrinter fraction too small"
    );
}

#[test]
fn lvm_opt_runs_the_pass_pipeline() {
    let r = trace_for(backends::lvm_opt(Isa::Tx64));
    assert_phases(
        &r,
        "LVM-opt",
        &["irgen", "isel", "regalloc", "asmprinter", "link"],
    );
    assert_fractions_sum(&r, "LVM-opt");
}

#[test]
fn cgen_phases_match_table1() {
    let r = trace_for(backends::cgen(Isa::Tx64));
    assert_phases(
        &r,
        "GCC/C",
        &[
            "cgen",
            "io",
            "cc1_parse",
            "cc1_gimplify",
            "cc1_optimize",
            "cc1_codegen",
            "as",
            "ld",
        ],
    );
    assert_fractions_sum(&r, "GCC/C");
    // Table I: the compiler proper dominates; the linker is small.
    let ld = r.fraction("ld");
    assert!(ld < 0.2, "linker fraction {ld} unexpectedly large");
}

#[test]
fn disabled_traces_record_nothing() {
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let suite = qc_workloads::hlike_suite();
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));
    let trace = TimeTrace::disabled();
    session
        .prepare(&suite[0].plan)
        .expect("prepare")
        .backend(backend)
        .trace(&trace)
        .direct()
        .compile()
        .expect("compile");
    assert_eq!(trace.event_count(), 0);
}
