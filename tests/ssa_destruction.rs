//! SSA-destruction edge cases on every back-end: parallel copies on
//! critical edges are where phi lowering classically goes wrong (the
//! "swap" and "lost copy" problems). Each function's expected value is
//! computed directly in Rust.

use qc_backend::Backend;
use qc_engine::backends;
use qc_ir::{CmpOp, FunctionBuilder, Module, Signature, Type};
use qc_runtime::RuntimeState;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn all_backends() -> Vec<Box<dyn Backend>> {
    let mut v = backends::all_for(Isa::Tx64);
    v.extend(backends::all_for(Isa::Ta64));
    v
}

fn run_all(m: &Module, args: &[u64], expected: u64) {
    qc_ir::verify_module(m).expect("verify");
    for backend in all_backends() {
        let mut exe = backend.compile(m, &TimeTrace::disabled()).expect("compile");
        let mut state = RuntimeState::new();
        let got = exe
            .call(&mut state, "f", args)
            .unwrap_or_else(|t| panic!("{}: trapped: {t}", backend.name()));
        assert_eq!(got[0], expected, "{} wrong result", backend.name());
    }
}

/// `for _ in 0..n { (a, b) = (b, a) }` — the phi swap problem: both phis
/// read each other's previous value, so naive sequential copies on the
/// back edge corrupt one of them.
#[test]
fn phi_swap_loop() {
    let sig = Signature::new(vec![Type::I64, Type::I64, Type::I64], Type::I64);
    let mut bd = FunctionBuilder::new("f", sig);
    let entry = bd.entry_block();
    let lp = bd.create_block();
    let exit = bd.create_block();
    bd.switch_to(entry);
    let a0 = bd.param(0);
    let b0 = bd.param(1);
    let n = bd.param(2);
    let zero = bd.iconst(Type::I64, 0);
    bd.jump(lp);
    bd.switch_to(lp);
    let i = bd.phi(Type::I64, vec![(entry, zero)]);
    let a = bd.phi(Type::I64, vec![(entry, a0)]);
    let b = bd.phi(Type::I64, vec![(entry, b0)]);
    bd.phi_add_incoming(a, lp, b);
    bd.phi_add_incoming(b, lp, a);
    let one = bd.iconst(Type::I64, 1);
    let i2 = bd.add(Type::I64, i, one);
    bd.phi_add_incoming(i, lp, i2);
    let c = bd.icmp(CmpOp::SLt, Type::I64, i2, n);
    bd.branch(c, lp, exit);
    bd.switch_to(exit);
    // After the loop: a holds the value as of the last *entry* to the
    // loop body; returning a*3+b distinguishes the orderings.
    let three = bd.iconst(Type::I64, 3);
    let a3 = bd.mul(Type::I64, a, three);
    let r = bd.add(Type::I64, a3, b);
    bd.ret(Some(r));
    let mut m = Module::new("m");
    m.push_function(bd.finish());

    let model = |a0: i64, b0: i64, n: i64| -> i64 {
        let (mut a, mut b) = (a0, b0);
        let mut i = 0;
        loop {
            // phis are as-of block entry; the swap takes effect on the
            // next iteration.
            i += 1;
            if i >= n {
                return a.wrapping_mul(3).wrapping_add(b);
            }
            std::mem::swap(&mut a, &mut b);
        }
    };
    for (a0, b0, n) in [(7i64, 11i64, 1i64), (7, 11, 2), (7, 11, 5), (-3, 9, 8)] {
        let expected = model(a0, b0, n) as u64;
        run_all(&m, &[a0 as u64, b0 as u64, n as u64], expected);
    }
}

/// Three-way rotation `(a, b, c) = (c, a, b)` — a parallel-copy cycle of
/// length 3 that needs a temporary regardless of copy order.
#[test]
fn phi_rotate3_loop() {
    let sig = Signature::new(vec![Type::I64, Type::I64, Type::I64], Type::I64);
    let mut bd = FunctionBuilder::new("f", sig);
    let entry = bd.entry_block();
    let lp = bd.create_block();
    let exit = bd.create_block();
    bd.switch_to(entry);
    let a0 = bd.param(0);
    let b0 = bd.param(1);
    let n = bd.param(2);
    let c0 = bd.iconst(Type::I64, 1000);
    let zero = bd.iconst(Type::I64, 0);
    bd.jump(lp);
    bd.switch_to(lp);
    let i = bd.phi(Type::I64, vec![(entry, zero)]);
    let a = bd.phi(Type::I64, vec![(entry, a0)]);
    let b = bd.phi(Type::I64, vec![(entry, b0)]);
    let c = bd.phi(Type::I64, vec![(entry, c0)]);
    bd.phi_add_incoming(a, lp, c);
    bd.phi_add_incoming(b, lp, a);
    bd.phi_add_incoming(c, lp, b);
    let one = bd.iconst(Type::I64, 1);
    let i2 = bd.add(Type::I64, i, one);
    bd.phi_add_incoming(i, lp, i2);
    let cond = bd.icmp(CmpOp::SLt, Type::I64, i2, n);
    bd.branch(cond, lp, exit);
    bd.switch_to(exit);
    // a + 10*b + 100*c pins each slot.
    let ten = bd.iconst(Type::I64, 10);
    let hundred = bd.iconst(Type::I64, 100);
    let tb = bd.mul(Type::I64, b, ten);
    let hc = bd.mul(Type::I64, c, hundred);
    let s1 = bd.add(Type::I64, a, tb);
    let r = bd.add(Type::I64, s1, hc);
    bd.ret(Some(r));
    let mut m = Module::new("m");
    m.push_function(bd.finish());

    let model = |a0: i64, b0: i64, n: i64| -> i64 {
        let (mut a, mut b, mut c) = (a0, b0, 1000i64);
        let mut i = 0;
        loop {
            i += 1;
            if i >= n {
                return a + 10 * b + 100 * c;
            }
            let (na, nb, nc) = (c, a, b);
            a = na;
            b = nb;
            c = nc;
        }
    };
    for (a0, b0, n) in [
        (1i64, 2i64, 1i64),
        (1, 2, 2),
        (1, 2, 3),
        (1, 2, 4),
        (5, -6, 9),
    ] {
        run_all(
            &m,
            &[a0 as u64, b0 as u64, n as u64],
            model(a0, b0, n) as u64,
        );
    }
}

/// The "lost copy" problem: the phi's result is live past the back edge
/// that also redefines it, so the copy inserted on the edge must not
/// clobber the value still needed after the loop.
#[test]
fn lost_copy_problem() {
    let sig = Signature::new(vec![Type::I64], Type::I64);
    let mut bd = FunctionBuilder::new("f", sig);
    let entry = bd.entry_block();
    let lp = bd.create_block();
    let exit = bd.create_block();
    bd.switch_to(entry);
    let n = bd.param(0);
    let zero = bd.iconst(Type::I64, 0);
    bd.jump(lp);
    bd.switch_to(lp);
    let i = bd.phi(Type::I64, vec![(entry, zero)]);
    let one = bd.iconst(Type::I64, 1);
    let i2 = bd.add(Type::I64, i, one);
    bd.phi_add_incoming(i, lp, i2);
    let c = bd.icmp(CmpOp::SLt, Type::I64, i2, n);
    bd.branch(c, lp, exit);
    bd.switch_to(exit);
    // Return the phi (pre-increment) value: its live range crosses the
    // back-edge copy `i <- i2`.
    bd.ret(Some(i));
    let mut m = Module::new("m");
    m.push_function(bd.finish());
    for n in [1i64, 2, 7, 100] {
        let expected = (n - 1).max(0) as u64; // last value of i at block entry
        run_all(&m, &[n as u64], expected);
    }
}

/// Phis whose incoming value is another phi of the same block: the
/// parallel copy must read the *old* value of the other phi, not the one
/// just written (chained dependency, not a cycle).
#[test]
fn phi_chain_dependency() {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut bd = FunctionBuilder::new("f", sig);
    let entry = bd.entry_block();
    let lp = bd.create_block();
    let exit = bd.create_block();
    bd.switch_to(entry);
    let x = bd.param(0);
    let n = bd.param(1);
    let zero = bd.iconst(Type::I64, 0);
    bd.jump(lp);
    bd.switch_to(lp);
    let i = bd.phi(Type::I64, vec![(entry, zero)]);
    let a = bd.phi(Type::I64, vec![(entry, x)]);
    let b = bd.phi(Type::I64, vec![(entry, zero)]);
    // b <- a (old), a <- a+1: b must receive a's previous value.
    bd.phi_add_incoming(b, lp, a);
    let one = bd.iconst(Type::I64, 1);
    let a2 = bd.add(Type::I64, a, one);
    bd.phi_add_incoming(a, lp, a2);
    let i2 = bd.add(Type::I64, i, one);
    bd.phi_add_incoming(i, lp, i2);
    let c = bd.icmp(CmpOp::SLt, Type::I64, i2, n);
    bd.branch(c, lp, exit);
    bd.switch_to(exit);
    let k = bd.iconst(Type::I64, 1_000_000);
    let ak = bd.mul(Type::I64, a, k);
    let r = bd.add(Type::I64, ak, b);
    bd.ret(Some(r));
    let mut m = Module::new("m");
    m.push_function(bd.finish());

    let model = |x: i64, n: i64| -> i64 {
        let (mut a, mut b) = (x, 0i64);
        let mut i = 0;
        loop {
            i += 1;
            if i >= n {
                return a * 1_000_000 + b;
            }
            let (na, nb) = (a + 1, a);
            a = na;
            b = nb;
        }
    };
    for (x, n) in [(5i64, 1i64), (5, 2), (5, 3), (42, 10)] {
        run_all(&m, &[x as u64, n as u64], model(x, n) as u64);
    }
}
