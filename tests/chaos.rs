//! Chaos suite: deterministic fault injection against the compilation
//! service's fault-tolerance layer. With a `ChaosBackend` injecting a
//! panic, error, or deadline overrun into any tier, every query of the
//! differential picks must still return the reference result through
//! the fallback chain, with the downgrade visible in compile stats and
//! no worker-pool deadlock or cache poisoning.

use qc_backend::chaos::{ChaosBackend, ChaosFault};
use qc_backend::{Backend, BackendErrorKind};
use qc_engine::{
    backends, CompileBudget, CompileService, CompileServiceConfig, EngineError, FallbackChain,
    Session,
};
use qc_plan::reference;
use qc_plan::PlanNode;
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;
use std::time::Duration;

/// Injected panics unwind through `catch_unwind` in the service; keep
/// their default-hook backtraces out of the test output while letting
/// real panics print. Installed at most once per test binary.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if !msg.is_some_and(|m| m.contains("chaos: injected")) {
                default(info);
            }
        }));
    });
}

/// The differential picks from `crates/core/tests/differential.rs`:
/// representative operator shapes across the H-like suite.
fn suite_picks() -> Vec<(String, PlanNode)> {
    let suite = qc_workloads::hlike_suite();
    [0usize, 2, 4, 5, 12, 16, 21]
        .iter()
        .map(|&i| (suite[i].name.clone(), suite[i].plan.clone()))
        .collect()
}

/// The standard TX64 chain with tiers `0..=faulty_through` replaced by
/// chaos wrappers injecting `fault` on every compile call.
fn chaotic_chain(faulty_through: usize, fault: ChaosFault) -> FallbackChain {
    let clean = FallbackChain::standard(Isa::Tx64);
    let tiers: Vec<Arc<dyn Backend>> = clean
        .tiers()
        .iter()
        .enumerate()
        .map(|(i, tier)| -> Arc<dyn Backend> {
            if i <= faulty_through {
                Arc::new(ChaosBackend::always(Arc::clone(tier), fault))
            } else {
                Arc::clone(tier)
            }
        })
        .collect();
    FallbackChain::new(tiers)
}

/// Every differential pick, compiled through a chain whose top tier
/// panics, errors, or overruns its deadline, must produce the
/// reference result and record the downgrade.
#[test]
fn every_pick_survives_a_faulty_top_tier() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.03);
    let session = Session::new(&db);
    let service = CompileService::default();
    let trace = TimeTrace::disabled();
    let faults = [
        ChaosFault::Panic,
        ChaosFault::PermanentError,
        ChaosFault::TransientError, // exhausts retries, then downgrades
    ];
    for fault in faults {
        let chain = chaotic_chain(0, fault);
        for (name, plan) in suite_picks() {
            let expected = reference::execute(&plan, &db).expect("reference");
            let stmt = session.statement(&plan).expect("prepare");
            let prepared = stmt.query();
            let (mut compiled, report) = service
                .compile_with_fallback(prepared, &chain, CompileBudget::default(), &trace)
                .unwrap_or_else(|e| panic!("{name} under {fault:?}: {e}"));
            assert!(report.degraded(), "{name}: downgrade expected");
            assert_eq!(report.tier_used, 1, "{name}: LVM-cheap must serve");
            assert_eq!(report.failures.len(), 1);
            assert_eq!(report.failures[0].backend, "LVM-opt");
            assert_eq!(
                compiled.compile_stats.counters.get("fallback_downgrades"),
                Some(&1),
                "{name}: downgrade missing from compile stats"
            );
            assert_eq!(
                compiled.compile_stats.counters.get("fallback_from_LVM-opt"),
                Some(&1)
            );
            let got = session
                .run(stmt.clone())
                .execute_compiled(&mut compiled)
                .expect("execute");
            assert_eq!(
                reference::normalize(&got.rows),
                reference::normalize(&expected),
                "{name} under {fault:?}: wrong result after fallback"
            );
        }
    }
    let stats = service.fault_stats();
    assert!(stats.panics_caught > 0, "panics must be caught: {stats:?}");
    assert!(stats.retries > 0, "transient faults must be retried");
    assert!(stats.downgrades > 0, "downgrades must be counted");
}

/// Deeper cascades: with tiers 0..=k all faulty, tier k+1 serves; the
/// interpreter floor makes the chain total for supported queries.
#[test]
fn cascade_degrades_to_the_first_healthy_tier() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.03);
    let session = Session::new(&db);
    let service = CompileService::default();
    let trace = TimeTrace::disabled();
    let (_, plan) = suite_picks().remove(0);
    let expected = reference::execute(&plan, &db).expect("reference");
    let stmt = session.statement(&plan).expect("prepare");
    let prepared = stmt.query();
    let chain_len = FallbackChain::standard(Isa::Tx64).tiers().len();
    for k in 0..chain_len - 1 {
        let chain = chaotic_chain(k, ChaosFault::Panic);
        let (mut compiled, report) = service
            .compile_with_fallback(prepared, &chain, CompileBudget::default(), &trace)
            .unwrap_or_else(|e| panic!("cascade k={k}: {e}"));
        assert_eq!(report.tier_used, k + 1, "cascade k={k}");
        assert_eq!(report.failures.len(), k + 1);
        assert_eq!(
            compiled.compile_stats.counters.get("fallback_downgrades"),
            Some(&((k + 1) as u64))
        );
        let got = session
            .run(stmt.clone())
            .execute_compiled(&mut compiled)
            .expect("execute");
        assert_eq!(
            reference::normalize(&got.rows),
            reference::normalize(&expected),
            "cascade k={k}: wrong result"
        );
    }
}

/// A whole chain of faulty tiers fails cleanly — an error naming every
/// tier, not a deadlock or a panic.
#[test]
fn all_tiers_faulty_is_a_clean_error() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    let service = CompileService::default();
    let (_, plan) = suite_picks().remove(0);
    let stmt = session.statement(&plan).expect("prepare");
    let prepared = stmt.query();
    let chain_len = FallbackChain::standard(Isa::Tx64).tiers().len();
    let chain = chaotic_chain(chain_len - 1, ChaosFault::Panic);
    match service.compile_with_fallback(
        prepared,
        &chain,
        CompileBudget::default(),
        &TimeTrace::disabled(),
    ) {
        Err(EngineError::Backend(e)) => {
            for tier in ["LVM-opt", "LVM-cheap", "DirectEmit", "Interpreter"] {
                assert!(e.message.contains(tier), "missing tier {tier}: {e}");
            }
        }
        Err(other) => panic!("expected chain exhaustion error, got {other:?}"),
        Ok(_) => panic!("expected chain exhaustion error, got a compiled query"),
    }
    // The pool survives total chain failure: a clean compile works.
    let clean: Arc<dyn Backend> = Arc::from(backends::interpreter());
    service
        .compile(prepared, &clean, &TimeTrace::disabled())
        .expect("service must stay usable");
}

/// A deadline overrun in the optimizing tier (driven by an injected
/// delay) downgrades instead of stalling the query, and the too-slow
/// tier's artifacts never enter the cache.
#[test]
fn deadline_overrun_downgrades_and_does_not_pollute_the_cache() {
    let db = qc_storage::gen_hlike(0.03);
    let session = Session::new(&db);
    let service = CompileService::default();
    let trace = TimeTrace::disabled();
    let (_, plan) = suite_picks().remove(0);
    let expected = reference::execute(&plan, &db).expect("reference");
    let stmt = session.statement(&plan).expect("prepare");
    let prepared = stmt.query();

    let clean = FallbackChain::standard(Isa::Tx64);
    let slow: Arc<dyn Backend> = Arc::new(ChaosBackend::always(
        Arc::clone(&clean.tiers()[0]),
        ChaosFault::Delay(Duration::from_millis(100)),
    ));
    let mut tiers = clean.tiers().to_vec();
    tiers[0] = slow;
    let chain = FallbackChain::new(tiers);

    let entries_before = service.cache_stats().entries;
    let budget = CompileBudget::with_deadline(Duration::from_millis(20));
    let (mut compiled, report) = service
        .compile_with_fallback(prepared, &chain, budget, &trace)
        .expect("fallback under deadline");
    assert_eq!(report.tier_used, 1, "LVM-cheap must take over");
    assert_eq!(report.failures[0].error.kind, BackendErrorKind::Deadline);
    let got = session
        .run(stmt.clone())
        .execute_compiled(&mut compiled)
        .expect("execute");
    assert_eq!(
        reference::normalize(&got.rows),
        reference::normalize(&expected)
    );
    assert!(service.fault_stats().deadline_overruns > 0);
    // Only the serving tier's modules may be resident; the slow tier
    // produced nothing cacheable.
    let entries_after = service.cache_stats().entries;
    assert!(
        entries_after - entries_before <= prepared.ir.modules.len(),
        "over-deadline artifacts leaked into the cache"
    );
}

/// A one-shot transient fault is absorbed by the retry policy: the
/// faulty tier itself still serves the query, with no downgrade.
#[test]
fn transient_fault_is_retried_on_the_same_tier() {
    let db = qc_storage::gen_hlike(0.03);
    let session = Session::new(&db);
    let service = CompileService::default();
    let trace = TimeTrace::disabled();
    let (_, plan) = suite_picks().remove(0);
    let expected = reference::execute(&plan, &db).expect("reference");
    let stmt = session.statement(&plan).expect("prepare");
    let prepared = stmt.query();

    let clean = FallbackChain::standard(Isa::Tx64);
    let flaky: Arc<dyn Backend> = Arc::new(ChaosBackend::on_nth(
        Arc::clone(&clean.tiers()[0]),
        0,
        ChaosFault::TransientError,
    ));
    let mut tiers = clean.tiers().to_vec();
    tiers[0] = flaky;
    let chain = FallbackChain::new(tiers);

    let (mut compiled, report) = service
        .compile_with_fallback(prepared, &chain, CompileBudget::default(), &trace)
        .expect("retry should succeed");
    assert!(!report.degraded(), "retry must avoid the downgrade");
    assert_eq!(report.backend_name, "LVM-opt");
    assert!(service.fault_stats().retries >= 1);
    let got = session
        .run(stmt.clone())
        .execute_compiled(&mut compiled)
        .expect("execute");
    assert_eq!(
        reference::normalize(&got.rows),
        reference::normalize(&expected)
    );
}

/// Seeded random faults across the whole suite on one long-lived
/// service: results stay correct, the pool never wedges, and a final
/// clean pass over the same service warm-hits the cache.
#[test]
fn seeded_chaos_soak_keeps_results_correct() {
    quiet_chaos_panics();
    let db = qc_storage::gen_hlike(0.03);
    let session = Session::new(&db);
    let service = CompileService::new(CompileServiceConfig {
        workers: 4,
        cache_capacity: 256,
        ..Default::default()
    });
    let trace = TimeTrace::disabled();
    let clean = FallbackChain::standard(Isa::Tx64);
    // Top two tiers each fail ~30% of calls, mixing errors and panics.
    let mut tiers = clean.tiers().to_vec();
    tiers[0] = Arc::new(ChaosBackend::seeded(
        Arc::clone(&clean.tiers()[0]),
        0x5EED_0001,
        300,
        ChaosFault::Panic,
    ));
    tiers[1] = Arc::new(ChaosBackend::seeded(
        Arc::clone(&clean.tiers()[1]),
        0x5EED_0002,
        300,
        ChaosFault::PermanentError,
    ));
    let chain = FallbackChain::new(tiers);

    for (name, plan) in suite_picks() {
        let expected = reference::execute(&plan, &db).expect("reference");
        let stmt = session.statement(&plan).expect("prepare");
        let prepared = stmt.query();
        let (mut compiled, _report) = service
            .compile_with_fallback(prepared, &chain, CompileBudget::default(), &trace)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let got = session
            .run(stmt.clone())
            .execute_compiled(&mut compiled)
            .expect("execute");
        assert_eq!(
            reference::normalize(&got.rows),
            reference::normalize(&expected),
            "{name}: wrong result under seeded chaos"
        );
    }

    // The same service still serves clean compiles, and nothing the
    // chaos runs cached is corrupt: a warm pass agrees with reference.
    let cheap: Arc<dyn Backend> = Arc::from(backends::lvm_cheap(Isa::Tx64));
    for (name, plan) in suite_picks() {
        let expected = reference::execute(&plan, &db).expect("reference");
        let stmt = session.statement(&plan).expect("prepare");
        let prepared = stmt.query();
        let mut compiled = service
            .compile(prepared, &cheap, &trace)
            .unwrap_or_else(|e| panic!("clean pass {name}: {e}"));
        let got = session
            .run(stmt.clone())
            .execute_compiled(&mut compiled)
            .expect("execute");
        assert_eq!(
            reference::normalize(&got.rows),
            reference::normalize(&expected),
            "{name}: cache served corrupt code after chaos"
        );
    }
}
