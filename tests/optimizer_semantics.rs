//! Optimizer correctness: every shared IR pass (and the composed -O
//! pipeline the GCC/LVM analogs run) must preserve both the verifier
//! invariants and the observable semantics of arbitrary loopy functions,
//! including trap behavior.

use proptest::prelude::*;
use qc_backend::Backend;
use qc_ir::opt::{pass_cse, pass_dce, pass_instcombine, pass_licm, pass_phi_prune};
use qc_ir::{CmpOp, Function, FunctionBuilder, Module, Opcode, Signature, Type};
use qc_runtime::RuntimeState;
use qc_timing::TimeTrace;

/// One step of the randomly generated loop body. Indices pick operands
/// from the pool of previously defined values (modulo pool size).
#[derive(Debug, Clone)]
enum Op {
    Const(i64),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddTrap(usize, usize),
    Xor(usize, usize),
    And(usize, usize),
    Shl(usize, usize),
    RotR(usize, usize),
    Crc(usize, usize),
    LmF(usize, usize),
    SelectLt(usize, usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let i = || 0usize..12;
    prop_oneof![
        any::<i64>().prop_map(Op::Const),
        (i(), i()).prop_map(|(a, b)| Op::Add(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::Sub(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::Mul(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::AddTrap(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::Xor(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::And(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::Shl(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::RotR(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::Crc(a, b)),
        (i(), i()).prop_map(|(a, b)| Op::LmF(a, b)),
        (i(), i(), i(), i()).prop_map(|(c, d, a, b)| Op::SelectLt(c, d, a, b)),
    ]
}

/// Builds `fn f(x, y) -> i64` as a counted loop running `trips` times,
/// with `body` applied to a growing value pool each iteration. The loop
/// gives LICM something to hoist, the duplicated body gives CSE work, and
/// the pool values never consumed give DCE work.
fn build_loop_fn(body: &[Op], trips: u8) -> Function {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let entry = b.entry_block();
    let loop_bb = b.create_block();
    let exit = b.create_block();

    b.switch_to(entry);
    let x = b.param(0);
    let y = b.param(1);
    let zero = b.iconst(Type::I64, 0);
    let start_acc = b.binary(Opcode::Xor, Type::I64, x, y);
    let n = b.iconst(Type::I64, i128::from(trips));
    b.jump(loop_bb);

    b.switch_to(loop_bb);
    let i_phi = b.phi(Type::I64, vec![(entry, zero)]);
    let acc_phi = b.phi(Type::I64, vec![(entry, start_acc)]);
    let mut pool = vec![x, y, i_phi, acc_phi];
    for op in body {
        let pick = |k: usize| pool[k % pool.len()];
        let v = match *op {
            Op::Const(c) => b.iconst(Type::I64, i128::from(c)),
            Op::Add(a2, b2) => b.add(Type::I64, pick(a2), pick(b2)),
            Op::Sub(a2, b2) => b.sub(Type::I64, pick(a2), pick(b2)),
            Op::Mul(a2, b2) => b.mul(Type::I64, pick(a2), pick(b2)),
            Op::AddTrap(a2, b2) => b.binary(Opcode::SAddTrap, Type::I64, pick(a2), pick(b2)),
            Op::Xor(a2, b2) => b.binary(Opcode::Xor, Type::I64, pick(a2), pick(b2)),
            Op::And(a2, b2) => b.binary(Opcode::And, Type::I64, pick(a2), pick(b2)),
            Op::Shl(a2, b2) => b.binary(Opcode::Shl, Type::I64, pick(a2), pick(b2)),
            Op::RotR(a2, b2) => b.binary(Opcode::RotR, Type::I64, pick(a2), pick(b2)),
            Op::Crc(a2, b2) => b.crc32(pick(a2), pick(b2)),
            Op::LmF(a2, b2) => b.long_mul_fold(pick(a2), pick(b2)),
            Op::SelectLt(c2, d2, a2, b2) => {
                let c = b.icmp(CmpOp::SLt, Type::I64, pick(c2), pick(d2));
                b.select(Type::I64, c, pick(a2), pick(b2))
            }
        };
        pool.push(v);
    }
    let next_acc = b.binary(Opcode::Xor, Type::I64, acc_phi, *pool.last().expect("pool"));
    let one = b.iconst(Type::I64, 1);
    let next_i = b.add(Type::I64, i_phi, one);
    b.phi_add_incoming(i_phi, loop_bb, next_i);
    b.phi_add_incoming(acc_phi, loop_bb, next_acc);
    let more = b.icmp(CmpOp::SLt, Type::I64, next_i, n);
    b.branch(more, loop_bb, exit);

    b.switch_to(exit);
    let out = b.phi(Type::I64, vec![(loop_bb, next_acc)]);
    b.ret(Some(out));
    b.finish()
}

fn run_interp(f: Function, x: i64, y: i64) -> Result<u64, String> {
    let mut m = Module::new("m");
    m.push_function(f);
    qc_ir::verify_module(&m).map_err(|e| format!("verify: {e}"))?;
    let backend = qc_interp::InterpBackend::new();
    let mut exe = backend
        .compile(&m, &TimeTrace::disabled())
        .map_err(|e| e.to_string())?;
    let mut state = RuntimeState::new();
    exe.call(&mut state, "f", &[x as u64, y as u64])
        .map(|r| r[0])
        .map_err(|t| format!("trap: {t}"))
}

type Pass = (&'static str, fn(&Function) -> Function);

const PASSES: &[Pass] = &[
    ("phi_prune", pass_phi_prune),
    ("cse", pass_cse),
    ("instcombine", pass_instcombine),
    ("licm", pass_licm),
    ("dce", pass_dce),
];

/// The composed pipeline minicc runs at -O3 (and qc-lvm's -O2 is the same
/// set applied twice).
fn full_pipeline(f: &Function) -> Function {
    let mut g = pass_phi_prune(f);
    g = pass_cse(&g);
    g = pass_instcombine(&g);
    g = pass_licm(&g);
    g = pass_dce(&g);
    g = pass_cse(&g);
    pass_dce(&g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_pass_preserves_loop_semantics(
        body in prop::collection::vec(op_strategy(), 1..16),
        trips in 0u8..12,
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        let base = build_loop_fn(&body, trips);
        let expected = run_interp(base.clone(), x, y);
        for (name, pass) in PASSES {
            let opt = pass(&base);
            let got = run_interp(opt, x, y);
            // Traps must be preserved exactly: trapping instructions have
            // side effects and may not be removed or hoisted past control
            // flow that guards them.
            prop_assert_eq!(&got, &expected, "pass {} changed semantics", name);
        }
        let got = run_interp(full_pipeline(&base), x, y);
        prop_assert_eq!(&got, &expected, "full pipeline changed semantics");
    }

    #[test]
    fn passes_are_idempotent_on_semantics(
        body in prop::collection::vec(op_strategy(), 1..10),
        trips in 0u8..6,
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        let base = build_loop_fn(&body, trips);
        let once = full_pipeline(&base);
        let twice = full_pipeline(&once);
        prop_assert_eq!(
            run_interp(once, x, y),
            run_interp(twice, x, y),
            "second pipeline application changed semantics"
        );
    }
}

#[test]
fn licm_hoists_invariant_work_out_of_the_loop() {
    // Body multiplies the two loop-invariant params; after LICM the loop
    // block must contain fewer instructions.
    let body = vec![Op::Mul(0, 1), Op::Crc(0, 1)];
    let f = build_loop_fn(&body, 8);
    let opt = pass_licm(&f);
    let count_in = |f: &Function| -> usize {
        // Loop header is the (only) block with a phi; count its insts.
        f.blocks()
            .map(|b| f.block_insts(b).len())
            .max()
            .unwrap_or(0)
    };
    assert!(
        count_in(&opt) < count_in(&f),
        "LICM did not shrink the loop body: {} -> {}",
        count_in(&f),
        count_in(&opt)
    );
    assert_eq!(
        run_interp(f, 7, 9).expect("base"),
        run_interp(opt, 7, 9).expect("opt"),
    );
}

#[test]
fn dce_keeps_trapping_instructions_alive() {
    // An unused overflow-checked add must survive DCE: its trap is an
    // observable effect.
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let _unused = b.binary(Opcode::SAddTrap, Type::I64, x, x);
    let r = b.add(Type::I64, x, y);
    b.ret(Some(r));
    let f = b.finish();
    let opt = pass_dce(&f);
    assert!(
        run_interp(opt, i64::MAX, 1).is_err(),
        "DCE removed a trapping instruction"
    );
}

#[test]
fn cse_merges_duplicate_pure_work() {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let x = b.param(0);
    let y = b.param(1);
    let a1 = b.mul(Type::I64, x, y);
    let a2 = b.mul(Type::I64, x, y);
    let s = b.add(Type::I64, a1, a2);
    b.ret(Some(s));
    let f = b.finish();
    let opt = pass_dce(&pass_cse(&f));
    let insts = |f: &Function| f.blocks().map(|bb| f.block_insts(bb).len()).sum::<usize>();
    assert!(insts(&opt) < insts(&f), "CSE+DCE removed nothing");
    assert_eq!(run_interp(f, 6, 7).unwrap(), run_interp(opt, 6, 7).unwrap());
}
