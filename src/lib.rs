//! Facade over the full query-compilation reproduction.
//!
//! Each subsystem lives in its own crate under `crates/`; this root package
//! re-exports them under one roof so integration tests in `tests/` (and
//! downstream experiments) can depend on a single crate. See `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the per-table and
//! per-figure reproduction results.

pub use qc_backend as backend;
pub use qc_cgen as cgen;
pub use qc_clift as clift;
pub use qc_codegen as codegen;
pub use qc_direct as direct;
pub use qc_engine as engine;
pub use qc_interp as interp;
pub use qc_ir as ir;
pub use qc_lvm as lvm;
pub use qc_plan as plan;
pub use qc_runtime as runtime;
pub use qc_storage as storage;
pub use qc_target as target;
pub use qc_timing as timing;
pub use qc_workloads as workloads;
