//! Shared MIR → machine-code emission core.
//!
//! Back-ends wrap this: the Cranelift analog adds its clobber/veneer
//! pre-passes, the LLVM analog its AsmPrinter layer (per-instruction MC
//! lowering, hooks, string-keyed labels, object-file assembly).

use crate::mir::{Allocation, CallTarget, Loc, MInst};
use crate::BackendError;
use qc_target::{new_masm, AluOp, Cond, FReg, Isa, MLabel, MacroAssembler, Reg, SymbolRef, Width};

/// The two emission scratch registers used for spill traffic.
pub fn emission_scratches(isa: Isa) -> (Reg, Reg) {
    match isa {
        Isa::Tx64 => (Reg(9), Reg(10)),
        Isa::Ta64 => (Reg(15), Reg(16)),
    }
}

/// Emission core driving a [`MacroAssembler`] from allocated MIR.
pub struct MirEmitter<'a> {
    masm: Box<dyn MacroAssembler>,
    alloc: &'a Allocation,
    isa: Isa,
    frame: u32,
    labels: Vec<MLabel>,
    func_names: &'a [String],
}

impl<'a> MirEmitter<'a> {
    /// Creates an emitter; `extra_frame` reserves a user area (stack
    /// slots) above the spill slots.
    pub fn new(
        isa: Isa,
        alloc: &'a Allocation,
        func_names: &'a [String],
        nblocks: usize,
        extra_frame: u32,
    ) -> Self {
        let mut e = MirEmitter {
            masm: new_masm(isa),
            alloc,
            isa,
            frame: (alloc.spill_slots * 8 + extra_frame + 15) & !15,
            labels: Vec::new(),
            func_names,
        };
        for _ in 0..nblocks {
            let l = e.masm.new_label();
            e.labels.push(l);
        }
        e
    }

    /// Byte offset within the frame of the user area.
    pub fn user_frame_off(&self) -> u32 {
        self.alloc.spill_slots * 8
    }

    /// Emits the prologue and places the flattened parameters.
    pub fn prologue(&mut self, params: &[u32]) {
        let sp = self.isa.abi().sp;
        let frame = self.frame as i64;
        self.masm
            .alu_rri(AluOp::Sub, Width::W64, false, sp, sp, frame);
        let nreg = self.isa.abi().arg_regs.len();
        let moves: Vec<(Loc, Loc)> = params
            .iter()
            .take(nreg)
            .enumerate()
            .map(|(i, &p)| {
                (
                    Loc::R(self.isa.abi().arg_regs[i]),
                    self.alloc.locs[p as usize],
                )
            })
            .collect();
        self.par_move(moves);
        for (i, &p) in params.iter().enumerate().skip(nreg) {
            let disp = (self.frame + 8 * (i - nreg) as u32) as i32;
            match self.alloc.locs[p as usize] {
                Loc::R(r) => self.masm.load(Width::W64, r, sp, None, disp),
                Loc::Spill(t) => {
                    let (es1, _) = emission_scratches(self.isa);
                    self.masm.load(Width::W64, es1, sp, None, disp);
                    let sd = self.slot_disp(t);
                    self.masm.store(Width::W64, es1, sp, None, sd);
                }
                Loc::F(_) => unreachable!("float stack param"),
            }
        }
    }

    /// Binds block `b`'s label at the current position.
    pub fn bind_block(&mut self, b: usize) {
        let l = self.labels[b];
        self.masm.bind(l);
    }

    /// Current code offset.
    pub fn offset(&self) -> usize {
        self.masm.offset()
    }

    /// Finishes emission.
    pub fn finish(self) -> (Vec<u8>, Vec<qc_target::Reloc>, u32) {
        let frame = self.frame;
        let (code, relocs) = self.masm.finish();
        (code, relocs, frame)
    }

    fn sp(&self) -> Reg {
        self.isa.abi().sp
    }

    fn slot_disp(&self, slot: u32) -> i32 {
        (slot * 8) as i32
    }

    /// Reads an int vreg into a register (spill → scratch `which`).
    fn rd(&mut self, v: u32, which: u8) -> Reg {
        match self.alloc.locs[v as usize] {
            Loc::R(r) => r,
            Loc::Spill(s) => {
                let (es1, es2) = emission_scratches(self.isa);
                let sc = if which == 0 { es1 } else { es2 };
                let sp = self.sp();
                let disp = self.slot_disp(s);
                self.masm.load(Width::W64, sc, sp, None, disp);
                sc
            }
            Loc::F(_) => panic!("int read of float vreg"),
        }
    }

    /// Destination register for an int def (spill → scratch 0, stored by
    /// [`Emitter::wb`]).
    fn wd(&mut self, v: u32) -> Reg {
        match self.alloc.locs[v as usize] {
            Loc::R(r) => r,
            Loc::Spill(_) => emission_scratches(self.isa).0,
            Loc::F(_) => panic!("int def of float vreg"),
        }
    }

    /// Write-back after a def computed via [`Emitter::wd`].
    fn wb(&mut self, v: u32) {
        if let Loc::Spill(s) = self.alloc.locs[v as usize] {
            let (es1, _) = emission_scratches(self.isa);
            let sp = self.sp();
            let disp = self.slot_disp(s);
            self.masm.store(Width::W64, es1, sp, None, disp);
        }
    }

    fn frd(&mut self, v: u32) -> FReg {
        match self.alloc.locs[v as usize] {
            Loc::F(f) => f,
            Loc::Spill(s) => {
                let fs = self.isa.abi().fscratch;
                let sp = self.sp();
                let disp = self.slot_disp(s);
                self.masm.fload(fs, sp, disp);
                fs
            }
            Loc::R(_) => panic!("float read of int vreg"),
        }
    }

    fn fwd(&mut self, v: u32) -> FReg {
        match self.alloc.locs[v as usize] {
            Loc::F(f) => f,
            Loc::Spill(_) => self.isa.abi().fscratch,
            Loc::R(_) => panic!("float def of int vreg"),
        }
    }

    fn fwb(&mut self, v: u32) {
        if let Loc::Spill(s) = self.alloc.locs[v as usize] {
            let fs = self.isa.abi().fscratch;
            let sp = self.sp();
            let disp = self.slot_disp(s);
            self.masm.fstore(fs, sp, disp);
        }
    }

    /// Parallel move between locations (block params, call setup).
    fn par_move(&mut self, moves: Vec<(Loc, Loc)>) {
        let mut pending: Vec<(Loc, Loc)> = moves.into_iter().filter(|(s, d)| s != d).collect();
        let (es1, es2) = emission_scratches(self.isa);
        let fs = self.isa.abi().fscratch;
        while !pending.is_empty() {
            // A move whose destination is no other pending move's source.
            let idx = pending
                .iter()
                .position(|&(_, d)| !pending.iter().any(|&(s, _)| s == d));
            match idx {
                Some(i) => {
                    let (s, d) = pending.remove(i);
                    self.emit_move(s, d, es2);
                }
                None => {
                    // Cycle: rotate through a scratch.
                    let (s, d) = pending[0];
                    let temp = match s {
                        Loc::F(_) => Loc::F(fs),
                        _ => Loc::R(es1),
                    };
                    self.emit_move(s, temp, es2);
                    // Redirect every pending use of `s` to the temp.
                    for m in &mut pending {
                        if m.0 == s {
                            m.0 = temp;
                        }
                    }
                    let _ = d;
                }
            }
        }
    }

    fn emit_move(&mut self, s: Loc, d: Loc, slot_scratch: Reg) {
        let sp = self.sp();
        match (s, d) {
            (Loc::R(a), Loc::R(b)) => self.masm.mov_rr(b, a),
            (Loc::F(a), Loc::F(b)) => self.masm.fmov(b, a),
            (Loc::R(a), Loc::Spill(t)) => {
                let disp = self.slot_disp(t);
                self.masm.store(Width::W64, a, sp, None, disp);
            }
            (Loc::Spill(t), Loc::R(b)) => {
                let disp = self.slot_disp(t);
                self.masm.load(Width::W64, b, sp, None, disp);
            }
            (Loc::F(a), Loc::Spill(t)) => {
                let disp = self.slot_disp(t);
                self.masm.fstore(a, sp, disp);
            }
            (Loc::Spill(t), Loc::F(b)) => {
                let disp = self.slot_disp(t);
                self.masm.fload(b, sp, disp);
            }
            (Loc::Spill(a), Loc::Spill(b)) => {
                let (da, db) = (self.slot_disp(a), self.slot_disp(b));
                self.masm.load(Width::W64, slot_scratch, sp, None, da);
                self.masm.store(Width::W64, slot_scratch, sp, None, db);
            }
            (Loc::R(_), Loc::F(_)) | (Loc::F(_), Loc::R(_)) => {
                unreachable!("cross-class move")
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    /// Emits one MIR instruction.
    pub fn emit_inst(&mut self, inst: &MInst) -> Result<(), BackendError> {
        match inst {
            MInst::MovRR { d, s } => {
                let sl = self.alloc.locs[*s as usize];
                let dl = self.alloc.locs[*d as usize];
                self.emit_move(sl, dl, emission_scratches(self.isa).1);
            }
            MInst::FMovM { d, s } => {
                let sl = self.alloc.locs[*s as usize];
                let dl = self.alloc.locs[*d as usize];
                self.emit_move(sl, dl, emission_scratches(self.isa).1);
            }
            MInst::MovRI { d, imm } => {
                let dr = self.wd(*d);
                self.masm.mov_ri(dr, *imm);
                self.wb(*d);
            }
            MInst::Alu {
                op,
                w,
                sf,
                d,
                s1,
                s2,
            } => {
                let a = self.rd(*s1, 0);
                let b = self.rd(*s2, 1);
                let dr = self.wd(*d);
                self.masm.alu_rrr(*op, *w, *sf, dr, a, b);
                self.wb(*d);
            }
            MInst::AluImm {
                op,
                w,
                sf,
                d,
                s1,
                imm,
            } => {
                let a = self.rd(*s1, 0);
                let dr = self.wd(*d);
                self.masm.alu_rri(*op, *w, *sf, dr, a, *imm);
                self.wb(*d);
            }
            MInst::MulFull { dlo, dhi, a, b } => {
                let ra = self.rd(*a, 0);
                let rb = self.rd(*b, 1);
                // Both destinations must be registers and distinct; route
                // spilled ones through scratches.
                let (es1, es2) = emission_scratches(self.isa);
                let rlo = match self.alloc.locs[*dlo as usize] {
                    Loc::R(r) => r,
                    _ => es1,
                };
                let rhi = match self.alloc.locs[*dhi as usize] {
                    Loc::R(r) if r != rlo => r,
                    _ => {
                        if rlo == es2 {
                            es1
                        } else {
                            es2
                        }
                    }
                };
                self.masm.mulfull(rlo, rhi, ra, rb);
                if let Loc::Spill(s) = self.alloc.locs[*dlo as usize] {
                    let sp = self.sp();
                    let disp = self.slot_disp(s);
                    self.masm.store(Width::W64, rlo, sp, None, disp);
                }
                match self.alloc.locs[*dhi as usize] {
                    Loc::R(r) if r == rhi => {}
                    Loc::R(r) => self.masm.mov_rr(r, rhi),
                    Loc::Spill(s) => {
                        let sp = self.sp();
                        let disp = self.slot_disp(s);
                        self.masm.store(Width::W64, rhi, sp, None, disp);
                    }
                    Loc::F(_) => unreachable!(),
                }
            }
            MInst::Crc32 { d, acc, data } => {
                let a = self.rd(*acc, 0);
                let b = self.rd(*data, 1);
                let dr = self.wd(*d);
                self.masm.crc32(dr, a, b);
                self.wb(*d);
            }
            MInst::Div {
                signed,
                rem,
                w,
                d,
                a,
                b,
            } => {
                let ra = self.rd(*a, 0);
                let rb = self.rd(*b, 1);
                let dr = self.wd(*d);
                self.masm.div(*signed, *rem, *w, dr, ra, rb);
                self.wb(*d);
            }
            MInst::Sext { from, d, s } => {
                let rs = self.rd(*s, 0);
                let dr = self.wd(*d);
                self.masm.sext(*from, dr, rs);
                self.wb(*d);
            }
            MInst::Lea {
                d,
                base,
                index,
                disp,
            } => {
                let rb = self.rd(*base, 1);
                let idx = index.as_ref().map(|(i, scale)| (self.rd(*i, 0), *scale));
                let dr = self.wd(*d);
                self.masm.lea(dr, rb, idx, *disp);
                self.wb(*d);
            }
            MInst::Load { w, d, base, disp } => {
                let rb = self.rd(*base, 1);
                let dr = self.wd(*d);
                self.masm.load(*w, dr, rb, None, *disp);
                self.wb(*d);
            }
            MInst::Store { w, s, base, disp } => {
                let rs = self.rd(*s, 0);
                let rb = self.rd(*base, 1);
                self.masm.store(*w, rs, rb, None, *disp);
            }
            MInst::FLoad { d, base, disp } => {
                let rb = self.rd(*base, 1);
                let dr = self.fwd(*d);
                self.masm.fload(dr, rb, *disp);
                self.fwb(*d);
            }
            MInst::FStore { s, base, disp } => {
                let rs = self.frd(*s);
                let rb = self.rd(*base, 1);
                self.masm.fstore(rs, rb, *disp);
            }
            MInst::Cmp { w, a, b } => {
                let ra = self.rd(*a, 0);
                let rb = self.rd(*b, 1);
                self.masm.cmp(*w, ra, rb);
            }
            MInst::CmpImm { w, a, imm } => {
                let ra = self.rd(*a, 0);
                self.masm.cmp_ri(*w, ra, *imm);
            }
            MInst::SetCc { cond, d } => {
                let dr = self.wd(*d);
                self.masm.setcc(*cond, dr);
                self.wb(*d);
            }
            MInst::TrapIf { cond, code } => {
                let skip = self.masm.new_label();
                self.masm.jcc(cond.negated(), skip);
                self.masm.trap(*code);
                self.masm.bind(skip);
            }
            MInst::Trap { code } => self.masm.trap(*code),
            MInst::Select { cond, d, t, f } => {
                let rc = self.rd(*cond, 0);
                self.masm.cmp_ri(Width::W8, rc, 0);
                let dl = self.alloc.locs[*d as usize];
                let tl = self.alloc.locs[*t as usize];
                let (_, es2) = emission_scratches(self.isa);
                let skip = self.masm.new_label();
                if dl == tl {
                    // d already holds t; overwrite with f when cond == 0.
                    self.masm.jcc(Cond::Ne, skip);
                    let fl = self.alloc.locs[*f as usize];
                    self.emit_move(fl, dl, es2);
                } else {
                    let fl = self.alloc.locs[*f as usize];
                    self.emit_move(fl, dl, es2);
                    self.masm.jcc(Cond::Eq, skip);
                    self.emit_move(tl, dl, es2);
                }
                self.masm.bind(skip);
            }
            MInst::FSelect { cond, d, t, f } => {
                let rc = self.rd(*cond, 0);
                self.masm.cmp_ri(Width::W8, rc, 0);
                let dl = self.alloc.locs[*d as usize];
                let tl = self.alloc.locs[*t as usize];
                let (_, es2) = emission_scratches(self.isa);
                let skip = self.masm.new_label();
                if dl == tl {
                    self.masm.jcc(Cond::Ne, skip);
                    let fl = self.alloc.locs[*f as usize];
                    self.emit_move(fl, dl, es2);
                } else {
                    let fl = self.alloc.locs[*f as usize];
                    self.emit_move(fl, dl, es2);
                    self.masm.jcc(Cond::Eq, skip);
                    self.emit_move(tl, dl, es2);
                }
                self.masm.bind(skip);
            }
            MInst::Jcc { cond, target } => {
                let l = self.labels[*target];
                self.masm.jcc(*cond, l);
            }
            MInst::Jmp { target } => {
                let l = self.labels[*target];
                self.masm.jmp(l);
            }
            MInst::CallRt { target, args, ret } => {
                let abi = self.isa.abi();
                if args.len() > abi.arg_regs.len() {
                    return Err(BackendError::new("clift: stack call arguments unsupported"));
                }
                let moves: Vec<(Loc, Loc)> = args
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (self.alloc.locs[v as usize], Loc::R(abi.arg_regs[i])))
                    .collect();
                self.par_move(moves);
                match target {
                    CallTarget::Abs(addr) => self.masm.call_abs(*addr),
                    CallTarget::Sym(name) => self.masm.call_sym(SymbolRef::named(name)),
                }
                let ret_regs = [abi.ret, abi.ret_hi];
                let moves: Vec<(Loc, Loc)> = ret
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (Loc::R(ret_regs[i]), self.alloc.locs[v as usize]))
                    .collect();
                self.par_move(moves);
            }
            MInst::FrameAddr { d, off } => {
                let dr = self.wd(*d);
                let sp = self.sp();
                let disp = (self.user_frame_off() + off) as i32;
                self.masm.lea(dr, sp, None, disp);
                self.wb(*d);
            }
            MInst::FuncAddr { d, func } => {
                let dr = self.wd(*d);
                let name = &self.func_names[*func];
                self.masm.mov_sym(dr, SymbolRef::named(name));
                self.wb(*d);
            }
            MInst::Falu { op, d, a, b } => {
                let ra = self.frd(*a);
                // Only one float scratch: require register allocations for
                // float operands (regalloc spills floats rarely in query
                // code); fall back through the gpr path if needed.
                let rb = match self.alloc.locs[*b as usize] {
                    Loc::F(f) => f,
                    Loc::Spill(s) => {
                        let (es1, _) = emission_scratches(self.isa);
                        let sp = self.sp();
                        let disp = self.slot_disp(s);
                        self.masm.load(Width::W64, es1, sp, None, disp);
                        let fs = FReg(13); // reserved: excluded from the pool
                        self.masm.fmov_from_gpr(fs, es1);
                        fs
                    }
                    Loc::R(_) => unreachable!(),
                };
                let dr = self.fwd(*d);
                self.masm.falu(*op, dr, ra, rb);
                self.fwb(*d);
            }
            MInst::FCmpM { a, b } => {
                let ra = self.frd(*a);
                let rb = match self.alloc.locs[*b as usize] {
                    Loc::F(f) => f,
                    Loc::Spill(s) => {
                        let (es1, _) = emission_scratches(self.isa);
                        let sp = self.sp();
                        let disp = self.slot_disp(s);
                        self.masm.load(Width::W64, es1, sp, None, disp);
                        let fs = FReg(13);
                        self.masm.fmov_from_gpr(fs, es1);
                        fs
                    }
                    Loc::R(_) => unreachable!(),
                };
                self.masm.fcmp(ra, rb);
            }
            MInst::FMovFromGpr { d, s } => {
                let rs = self.rd(*s, 0);
                let dr = self.fwd(*d);
                self.masm.fmov_from_gpr(dr, rs);
                self.fwb(*d);
            }
            MInst::FMovToGpr { d, s } => {
                let rs = self.frd(*s);
                let dr = self.wd(*d);
                self.masm.fmov_to_gpr(dr, rs);
                self.wb(*d);
            }
            MInst::CvtSiToF { d, s } => {
                let rs = self.rd(*s, 0);
                let dr = self.fwd(*d);
                self.masm.cvt_si2f(dr, rs);
                self.fwb(*d);
            }
            MInst::CvtFToSi { d, s } => {
                let rs = self.frd(*s);
                let dr = self.wd(*d);
                self.masm.cvt_f2si(dr, rs);
                self.wb(*d);
            }
            MInst::ParMove { moves } => {
                let moves: Vec<(Loc, Loc)> = moves
                    .iter()
                    .map(|&(s, d)| (self.alloc.locs[s as usize], self.alloc.locs[d as usize]))
                    .collect();
                self.par_move(moves);
            }
            MInst::Ret { vals } => {
                let abi = self.isa.abi();
                if vals.len() == 1 && matches!(self.alloc.locs[vals[0] as usize], Loc::F(_)) {
                    let f = self.frd(vals[0]);
                    self.masm.fmov_to_gpr(abi.ret, f);
                } else {
                    let ret_regs = [abi.ret, abi.ret_hi];
                    let moves: Vec<(Loc, Loc)> = vals
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (self.alloc.locs[v as usize], Loc::R(ret_regs[i])))
                        .collect();
                    self.par_move(moves);
                }
                let sp = self.sp();
                self.masm
                    .alu_rri(AluOp::Add, Width::W64, false, sp, sp, self.frame as i64);
                self.masm.ret();
            }
        }
        Ok(())
    }
}
