//! Deterministic fault injection for back-ends.
//!
//! [`ChaosBackend`] wraps any [`Backend`] and injects a configured
//! fault — an error, a panic, or a delay — according to a deterministic
//! schedule: on the Nth compile job, on every job, or pseudo-randomly
//! from a seed. The compilation service's fault-tolerance layer (panic
//! isolation, compile deadlines, retry policy, fallback chain) is
//! driven end-to-end by tests built on this wrapper; nothing in here is
//! used on the production compile path.
//!
//! [`ChaosExecBackend`] is the execution-phase counterpart: compiles
//! pass through untouched, but every `main` (per-morsel) call of the
//! produced executables can panic, trap, stall, or inflate its reported
//! cycle cost on the same deterministic schedules. It drives the
//! engine's *execution* fault envelope — worker panic isolation, query
//! budgets, the runaway governor, and the serving-path circuit breaker.

use crate::{Backend, BackendError, CodeArtifact, CompileStats, Executable};
use qc_ir::Module;
use qc_runtime::RuntimeState;
use qc_target::{ExecStats, Isa, Trap};
use qc_timing::TimeTrace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What [`ChaosBackend`] injects when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Return a [`BackendError`] of kind `Transient` (retryable).
    TransientError,
    /// Return a [`BackendError`] of kind `Permanent` (not retryable;
    /// forces a tier downgrade under a fallback chain).
    PermanentError,
    /// Panic inside the compile call. The service must catch this,
    /// convert it to a `Panic`-kind error, and keep its workers alive.
    Panic,
    /// Sleep for the given duration before compiling normally, driving
    /// compile-deadline overruns.
    Delay(Duration),
}

/// When the fault fires, as a function of the 0-based compile-call
/// index (each module compile — fresh or retried — is one call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// Exactly the Nth call.
    Nth(u64),
    /// Every call.
    Always,
    /// Pseudo-random per call: fault with probability `permille`/1000,
    /// derived from `seed` and the call index only — identical across
    /// runs and thread schedules.
    Seeded { seed: u64, permille: u16 },
}

/// SplitMix64: tiny, high-quality mixing for the seeded schedule (no
/// dependency on the `rand` crate from the backend interface crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fault-injecting [`Backend`] wrapper with a deterministic schedule.
///
/// The wrapper reports the inner back-end's `name` and `isa` so that
/// downgrade records and compile stats name the real tier, but mixes
/// the fault plan into `config_fingerprint` so chaos-compiled artifacts
/// never alias clean cache entries.
pub struct ChaosBackend {
    inner: Arc<dyn Backend>,
    fault: ChaosFault,
    schedule: Schedule,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl std::fmt::Debug for ChaosBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChaosBackend({}, {:?}, {:?}, {} injected)",
            self.inner.name(),
            self.fault,
            self.schedule,
            self.injected.load(Ordering::Relaxed)
        )
    }
}

impl ChaosBackend {
    fn with_schedule(inner: Arc<dyn Backend>, fault: ChaosFault, schedule: Schedule) -> Self {
        ChaosBackend {
            inner,
            fault,
            schedule,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Injects `fault` on the `n`-th (0-based) compile call only.
    pub fn on_nth(inner: Arc<dyn Backend>, n: u64, fault: ChaosFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Nth(n))
    }

    /// Injects `fault` on every compile call.
    pub fn always(inner: Arc<dyn Backend>, fault: ChaosFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Always)
    }

    /// Injects `fault` on each call independently with probability
    /// `permille`/1000, deterministically derived from `seed` and the
    /// call index.
    pub fn seeded(inner: Arc<dyn Backend>, seed: u64, permille: u16, fault: ChaosFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Seeded { seed, permille })
    }

    /// Total compile calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decides whether the fault fires for the next call and, when it
    /// is an error or panic fault, raises it. `Delay` faults sleep and
    /// then let the inner back-end compile normally.
    fn maybe_inject(&self) -> Result<(), BackendError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let fire = match self.schedule {
            Schedule::Nth(k) => n == k,
            Schedule::Always => true,
            Schedule::Seeded { seed, permille } => {
                (splitmix64(seed ^ n) % 1000) < u64::from(permille)
            }
        };
        if !fire {
            return Ok(());
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        match self.fault {
            ChaosFault::TransientError => Err(BackendError::transient(format!(
                "chaos: injected transient fault on call {n}"
            ))),
            ChaosFault::PermanentError => Err(BackendError::new(format!(
                "chaos: injected fault on call {n}"
            ))),
            ChaosFault::Panic => panic!("chaos: injected panic on call {n}"),
            ChaosFault::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

impl Backend for ChaosBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn isa(&self) -> Isa {
        self.inner.isa()
    }

    fn config_fingerprint(&self) -> u64 {
        let plan = match self.schedule {
            Schedule::Nth(k) => splitmix64(k ^ 1),
            Schedule::Always => splitmix64(2),
            Schedule::Seeded { seed, permille } => splitmix64(seed ^ u64::from(permille) ^ 3),
        };
        let fault = match self.fault {
            ChaosFault::TransientError => 1,
            ChaosFault::PermanentError => 2,
            ChaosFault::Panic => 3,
            ChaosFault::Delay(d) => splitmix64(4 ^ d.as_nanos() as u64),
        };
        // Never alias the clean back-end's cache entries.
        self.inner.config_fingerprint() ^ plan ^ fault ^ 0x4348_414f_5321
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        self.maybe_inject()?;
        self.inner.compile(module, trace)
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        self.maybe_inject()?;
        self.inner.compile_artifact(module, trace)
    }
}

/// What [`ChaosExecBackend`] injects into a `main` (per-morsel) call
/// when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecFault {
    /// Panic inside the morsel call. The morsel executor must contain
    /// this with its per-worker `catch_unwind`, replay the lost
    /// morsels, and keep the merged result byte-identical.
    Panic,
    /// Return [`Trap::Runtime`] with the given code, as a miscompiled
    /// or resource-starved kernel would. Drives the serving scheduler's
    /// per-tier circuit breaker.
    Trap(u8),
    /// Sleep for the given duration before executing normally, driving
    /// query-deadline overruns without corrupting results.
    Delay(Duration),
    /// Execute normally but inflate the executable's reported cycle
    /// count by this much per injection. Results stay correct; only the
    /// modeled cost lies, which is exactly what the runaway governor
    /// and cycle budgets must react to.
    BurnCycles(u64),
}

/// The shared fault plan of one [`ChaosExecBackend`]: fault, schedule,
/// and the global `main`-call counter. Shared (`Arc`) across every
/// executable the back-end produces — including re-instantiations of a
/// cached artifact — so the schedule indexes *morsel calls across the
/// whole serving run*, not calls per executable.
struct ExecPlan {
    fault: ExecFault,
    schedule: Schedule,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl ExecPlan {
    /// Advances the call counter; returns the 0-based call index when
    /// the fault fires for this call.
    fn fires(&self) -> Option<u64> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let fire = match self.schedule {
            Schedule::Nth(k) => n == k,
            Schedule::Always => true,
            Schedule::Seeded { seed, permille } => {
                (splitmix64(seed ^ n) % 1000) < u64::from(permille)
            }
        };
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Some(n)
        } else {
            None
        }
    }
}

/// A [`Backend`] wrapper whose *executables* misbehave: compilation is
/// delegated untouched, but each produced [`Executable`] consults the
/// shared [`ExecPlan`] on every `main` call (`setup`/`finish` stay
/// clean so pipelines always reach the morsel loop). Deterministic for
/// a serial reference run; under parallel execution the *set* of faulted
/// call indices is fixed even though their thread assignment is not.
pub struct ChaosExecBackend {
    inner: Arc<dyn Backend>,
    plan: Arc<ExecPlan>,
}

impl std::fmt::Debug for ChaosExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChaosExecBackend({}, {:?}, {:?}, {} injected)",
            self.inner.name(),
            self.plan.fault,
            self.plan.schedule,
            self.plan.injected.load(Ordering::Relaxed)
        )
    }
}

impl ChaosExecBackend {
    fn with_schedule(inner: Arc<dyn Backend>, fault: ExecFault, schedule: Schedule) -> Self {
        ChaosExecBackend {
            inner,
            plan: Arc::new(ExecPlan {
                fault,
                schedule,
                calls: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Injects `fault` on the `n`-th (0-based) `main` call only.
    pub fn on_nth(inner: Arc<dyn Backend>, n: u64, fault: ExecFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Nth(n))
    }

    /// Injects `fault` on every `main` call.
    pub fn always(inner: Arc<dyn Backend>, fault: ExecFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Always)
    }

    /// Injects `fault` on each `main` call independently with
    /// probability `permille`/1000, deterministically derived from
    /// `seed` and the global call index.
    pub fn seeded(inner: Arc<dyn Backend>, seed: u64, permille: u16, fault: ExecFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Seeded { seed, permille })
    }

    /// Total `main` calls observed across all produced executables.
    pub fn calls(&self) -> u64 {
        self.plan.calls.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.plan.injected.load(Ordering::Relaxed)
    }
}

impl Backend for ChaosExecBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn isa(&self) -> Isa {
        self.inner.isa()
    }

    fn config_fingerprint(&self) -> u64 {
        let plan = match self.plan.schedule {
            Schedule::Nth(k) => splitmix64(k ^ 1),
            Schedule::Always => splitmix64(2),
            Schedule::Seeded { seed, permille } => splitmix64(seed ^ u64::from(permille) ^ 3),
        };
        let fault = match self.plan.fault {
            ExecFault::Panic => 5,
            ExecFault::Trap(code) => splitmix64(6 ^ u64::from(code)),
            ExecFault::Delay(d) => splitmix64(7 ^ d.as_nanos() as u64),
            ExecFault::BurnCycles(c) => splitmix64(8 ^ c),
        };
        // Never alias the clean back-end's cache entries ("EXEC" salt,
        // distinct from the compile-phase wrapper's salt).
        self.inner.config_fingerprint() ^ plan ^ fault ^ 0x4558_4543_2121
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        let exe = self.inner.compile(module, trace)?;
        Ok(Box::new(ChaosExecutable {
            inner: exe,
            plan: Arc::clone(&self.plan),
            extra_cycles: 0,
        }))
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        Ok(self
            .inner
            .compile_artifact(module, trace)?
            .map(|art| -> Box<dyn CodeArtifact> {
                Box::new(ChaosExecArtifact {
                    inner: art,
                    plan: Arc::clone(&self.plan),
                })
            }))
    }
}

/// [`CodeArtifact`] wrapper keeping chaos attached across the engine's
/// compile-result cache: a cached artifact re-instantiated for a later
/// query still consults the shared plan. Never serialized — a fault
/// plan must not escape into the persistent artifact store.
struct ChaosExecArtifact {
    inner: Box<dyn CodeArtifact>,
    plan: Arc<ExecPlan>,
}

impl CodeArtifact for ChaosExecArtifact {
    fn instantiate(&self) -> Result<Box<dyn Executable>, BackendError> {
        Ok(Box::new(ChaosExecutable {
            inner: self.inner.instantiate()?,
            plan: Arc::clone(&self.plan),
            extra_cycles: 0,
        }))
    }

    fn compile_stats(&self) -> &CompileStats {
        self.inner.compile_stats()
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn content_bytes(&self) -> Vec<u8> {
        self.inner.content_bytes()
    }
}

/// [`Executable`] that injects its plan's fault into `main` calls.
struct ChaosExecutable {
    inner: Box<dyn Executable>,
    plan: Arc<ExecPlan>,
    /// Cycles added by `BurnCycles` injections, reported on top of the
    /// inner executable's honest stats.
    extra_cycles: u64,
}

impl Executable for ChaosExecutable {
    fn call(
        &mut self,
        state: &mut RuntimeState,
        name: &str,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        if name == "main" {
            if let Some(n) = self.plan.fires() {
                match self.plan.fault {
                    ExecFault::Panic => panic!("chaos: injected exec panic on call {n}"),
                    ExecFault::Trap(code) => return Err(Trap::Runtime(code)),
                    ExecFault::Delay(d) => std::thread::sleep(d),
                    ExecFault::BurnCycles(c) => self.extra_cycles += c,
                }
            }
        }
        self.inner.call(state, name, args)
    }

    fn exec_stats(&self) -> ExecStats {
        let mut stats = self.inner.exec_stats();
        stats.cycles += self.extra_cycles;
        stats
    }

    fn compile_stats(&self) -> &CompileStats {
        self.inner.compile_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendErrorKind;

    /// Minimal backend that always "succeeds" with no artifact support
    /// and an unusable executable; enough to observe injection logic.
    struct NullBackend;
    impl Backend for NullBackend {
        fn name(&self) -> &'static str {
            "Null"
        }
        fn isa(&self) -> Isa {
            Isa::Tx64
        }
        fn compile(
            &self,
            _module: &Module,
            _trace: &TimeTrace,
        ) -> Result<Box<dyn Executable>, BackendError> {
            Err(BackendError::new("null backend compiles nothing"))
        }
    }

    fn module() -> Module {
        Module::new("m")
    }

    #[test]
    fn nth_schedule_fires_once() {
        let chaos = ChaosBackend::on_nth(Arc::new(NullBackend), 1, ChaosFault::TransientError);
        let trace = TimeTrace::disabled();
        // Call 0: clean (the null inner's artifact default is Ok(None)).
        assert!(chaos.compile_artifact(&module(), &trace).is_ok());
        // Call 1: the injected transient fault.
        let e1 = chaos
            .compile_artifact(&module(), &trace)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(e1.kind, BackendErrorKind::Transient);
        // Call 2: clean again.
        assert!(chaos.compile_artifact(&module(), &trace).is_ok());
        assert_eq!(chaos.injected(), 1);
        assert_eq!(chaos.calls(), 3);
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let mk = || {
            ChaosBackend::seeded(
                Arc::new(NullBackend),
                0xC4A05,
                250,
                ChaosFault::TransientError,
            )
        };
        let trace = TimeTrace::disabled();
        let a = mk();
        let b = mk();
        let pattern = |c: &ChaosBackend| {
            (0..64)
                .map(|_| c.compile_artifact(&module(), &trace).is_err())
                .collect::<Vec<_>>()
        };
        let pa = pattern(&a);
        assert_eq!(pa, pattern(&b), "seeded schedule must be deterministic");
        assert!(pa.iter().any(|&f| f), "some calls must fault");
        assert!(pa.iter().any(|&f| !f), "some calls must pass");
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn panic_fault_panics() {
        let chaos = ChaosBackend::always(Arc::new(NullBackend), ChaosFault::Panic);
        let _ = chaos.compile_artifact(&module(), &TimeTrace::disabled());
    }

    #[test]
    fn fingerprint_differs_from_inner() {
        let inner: Arc<dyn Backend> = Arc::new(NullBackend);
        let chaos = ChaosBackend::always(Arc::clone(&inner), ChaosFault::PermanentError);
        assert_ne!(chaos.config_fingerprint(), inner.config_fingerprint());
    }

    /// Executable that records call names and reports fixed stats, so
    /// the exec-chaos wrapper's behavior is observable.
    struct EchoExecutable {
        stats: CompileStats,
    }
    impl Executable for EchoExecutable {
        fn call(
            &mut self,
            _state: &mut RuntimeState,
            _name: &str,
            _args: &[u64],
        ) -> Result<[u64; 2], Trap> {
            Ok([7, 0])
        }
        fn exec_stats(&self) -> ExecStats {
            ExecStats {
                cycles: 100,
                insts: 10,
            }
        }
        fn compile_stats(&self) -> &CompileStats {
            &self.stats
        }
    }

    struct EchoBackend;
    impl Backend for EchoBackend {
        fn name(&self) -> &'static str {
            "Echo"
        }
        fn isa(&self) -> Isa {
            Isa::Tx64
        }
        fn compile(
            &self,
            _module: &Module,
            _trace: &TimeTrace,
        ) -> Result<Box<dyn Executable>, BackendError> {
            Ok(Box::new(EchoExecutable {
                stats: CompileStats::default(),
            }))
        }
    }

    #[test]
    fn exec_trap_fires_on_main_only() {
        let chaos = ChaosExecBackend::on_nth(Arc::new(EchoBackend), 0, ExecFault::Trap(9));
        let mut exe = chaos.compile(&module(), &TimeTrace::disabled()).unwrap();
        let mut state = RuntimeState::new();
        // setup/finish never consult the schedule.
        assert!(exe.call(&mut state, "setup", &[]).is_ok());
        assert_eq!(
            exe.call(&mut state, "main", &[]),
            Err(Trap::Runtime(9)),
            "call 0 must trap"
        );
        assert!(exe.call(&mut state, "main", &[]).is_ok(), "call 1 is clean");
        assert!(exe.call(&mut state, "finish", &[]).is_ok());
        assert_eq!(chaos.calls(), 2);
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn exec_burn_cycles_inflates_stats_without_failing() {
        let chaos = ChaosExecBackend::always(Arc::new(EchoBackend), ExecFault::BurnCycles(1000));
        let mut exe = chaos.compile(&module(), &TimeTrace::disabled()).unwrap();
        let mut state = RuntimeState::new();
        assert_eq!(exe.call(&mut state, "main", &[]).unwrap()[0], 7);
        assert_eq!(exe.call(&mut state, "main", &[]).unwrap()[0], 7);
        assert_eq!(exe.exec_stats().cycles, 100 + 2000);
        assert_eq!(exe.exec_stats().insts, 10, "insts stay honest");
    }

    #[test]
    #[should_panic(expected = "chaos: injected exec panic")]
    fn exec_panic_fault_panics_on_main() {
        let chaos = ChaosExecBackend::always(Arc::new(EchoBackend), ExecFault::Panic);
        let mut exe = chaos.compile(&module(), &TimeTrace::disabled()).unwrap();
        let _ = exe.call(&mut RuntimeState::new(), "main", &[]);
    }

    #[test]
    fn exec_schedule_is_shared_across_executables() {
        // Two executables from the same back-end share one call counter:
        // Nth(1) fires on the second main call overall, regardless of
        // which executable makes it.
        let chaos = ChaosExecBackend::on_nth(Arc::new(EchoBackend), 1, ExecFault::Trap(1));
        let trace = TimeTrace::disabled();
        let mut a = chaos.compile(&module(), &trace).unwrap();
        let mut b = chaos.compile(&module(), &trace).unwrap();
        let mut state = RuntimeState::new();
        assert!(a.call(&mut state, "main", &[]).is_ok());
        assert_eq!(b.call(&mut state, "main", &[]), Err(Trap::Runtime(1)));
    }

    #[test]
    fn exec_fingerprint_differs_from_inner_and_compile_chaos() {
        let inner: Arc<dyn Backend> = Arc::new(EchoBackend);
        let exec = ChaosExecBackend::always(Arc::clone(&inner), ExecFault::Panic);
        let comp = ChaosBackend::always(Arc::clone(&inner), ChaosFault::Panic);
        assert_ne!(exec.config_fingerprint(), inner.config_fingerprint());
        assert_ne!(exec.config_fingerprint(), comp.config_fingerprint());
    }
}
