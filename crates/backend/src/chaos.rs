//! Deterministic fault injection for back-ends.
//!
//! [`ChaosBackend`] wraps any [`Backend`] and injects a configured
//! fault — an error, a panic, or a delay — according to a deterministic
//! schedule: on the Nth compile job, on every job, or pseudo-randomly
//! from a seed. The compilation service's fault-tolerance layer (panic
//! isolation, compile deadlines, retry policy, fallback chain) is
//! driven end-to-end by tests built on this wrapper; nothing in here is
//! used on the production compile path.

use crate::{Backend, BackendError, CodeArtifact, Executable};
use qc_ir::Module;
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What [`ChaosBackend`] injects when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Return a [`BackendError`] of kind `Transient` (retryable).
    TransientError,
    /// Return a [`BackendError`] of kind `Permanent` (not retryable;
    /// forces a tier downgrade under a fallback chain).
    PermanentError,
    /// Panic inside the compile call. The service must catch this,
    /// convert it to a `Panic`-kind error, and keep its workers alive.
    Panic,
    /// Sleep for the given duration before compiling normally, driving
    /// compile-deadline overruns.
    Delay(Duration),
}

/// When the fault fires, as a function of the 0-based compile-call
/// index (each module compile — fresh or retried — is one call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// Exactly the Nth call.
    Nth(u64),
    /// Every call.
    Always,
    /// Pseudo-random per call: fault with probability `permille`/1000,
    /// derived from `seed` and the call index only — identical across
    /// runs and thread schedules.
    Seeded { seed: u64, permille: u16 },
}

/// SplitMix64: tiny, high-quality mixing for the seeded schedule (no
/// dependency on the `rand` crate from the backend interface crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fault-injecting [`Backend`] wrapper with a deterministic schedule.
///
/// The wrapper reports the inner back-end's `name` and `isa` so that
/// downgrade records and compile stats name the real tier, but mixes
/// the fault plan into `config_fingerprint` so chaos-compiled artifacts
/// never alias clean cache entries.
pub struct ChaosBackend {
    inner: Arc<dyn Backend>,
    fault: ChaosFault,
    schedule: Schedule,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl std::fmt::Debug for ChaosBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChaosBackend({}, {:?}, {:?}, {} injected)",
            self.inner.name(),
            self.fault,
            self.schedule,
            self.injected.load(Ordering::Relaxed)
        )
    }
}

impl ChaosBackend {
    fn with_schedule(inner: Arc<dyn Backend>, fault: ChaosFault, schedule: Schedule) -> Self {
        ChaosBackend {
            inner,
            fault,
            schedule,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Injects `fault` on the `n`-th (0-based) compile call only.
    pub fn on_nth(inner: Arc<dyn Backend>, n: u64, fault: ChaosFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Nth(n))
    }

    /// Injects `fault` on every compile call.
    pub fn always(inner: Arc<dyn Backend>, fault: ChaosFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Always)
    }

    /// Injects `fault` on each call independently with probability
    /// `permille`/1000, deterministically derived from `seed` and the
    /// call index.
    pub fn seeded(inner: Arc<dyn Backend>, seed: u64, permille: u16, fault: ChaosFault) -> Self {
        Self::with_schedule(inner, fault, Schedule::Seeded { seed, permille })
    }

    /// Total compile calls observed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decides whether the fault fires for the next call and, when it
    /// is an error or panic fault, raises it. `Delay` faults sleep and
    /// then let the inner back-end compile normally.
    fn maybe_inject(&self) -> Result<(), BackendError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let fire = match self.schedule {
            Schedule::Nth(k) => n == k,
            Schedule::Always => true,
            Schedule::Seeded { seed, permille } => {
                (splitmix64(seed ^ n) % 1000) < u64::from(permille)
            }
        };
        if !fire {
            return Ok(());
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        match self.fault {
            ChaosFault::TransientError => Err(BackendError::transient(format!(
                "chaos: injected transient fault on call {n}"
            ))),
            ChaosFault::PermanentError => Err(BackendError::new(format!(
                "chaos: injected fault on call {n}"
            ))),
            ChaosFault::Panic => panic!("chaos: injected panic on call {n}"),
            ChaosFault::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

impl Backend for ChaosBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn isa(&self) -> Isa {
        self.inner.isa()
    }

    fn config_fingerprint(&self) -> u64 {
        let plan = match self.schedule {
            Schedule::Nth(k) => splitmix64(k ^ 1),
            Schedule::Always => splitmix64(2),
            Schedule::Seeded { seed, permille } => splitmix64(seed ^ u64::from(permille) ^ 3),
        };
        let fault = match self.fault {
            ChaosFault::TransientError => 1,
            ChaosFault::PermanentError => 2,
            ChaosFault::Panic => 3,
            ChaosFault::Delay(d) => splitmix64(4 ^ d.as_nanos() as u64),
        };
        // Never alias the clean back-end's cache entries.
        self.inner.config_fingerprint() ^ plan ^ fault ^ 0x4348_414f_5321
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        self.maybe_inject()?;
        self.inner.compile(module, trace)
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        self.maybe_inject()?;
        self.inner.compile_artifact(module, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackendErrorKind;

    /// Minimal backend that always "succeeds" with no artifact support
    /// and an unusable executable; enough to observe injection logic.
    struct NullBackend;
    impl Backend for NullBackend {
        fn name(&self) -> &'static str {
            "Null"
        }
        fn isa(&self) -> Isa {
            Isa::Tx64
        }
        fn compile(
            &self,
            _module: &Module,
            _trace: &TimeTrace,
        ) -> Result<Box<dyn Executable>, BackendError> {
            Err(BackendError::new("null backend compiles nothing"))
        }
    }

    fn module() -> Module {
        Module::new("m")
    }

    #[test]
    fn nth_schedule_fires_once() {
        let chaos = ChaosBackend::on_nth(Arc::new(NullBackend), 1, ChaosFault::TransientError);
        let trace = TimeTrace::disabled();
        // Call 0: clean (the null inner's artifact default is Ok(None)).
        assert!(chaos.compile_artifact(&module(), &trace).is_ok());
        // Call 1: the injected transient fault.
        let e1 = chaos
            .compile_artifact(&module(), &trace)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(e1.kind, BackendErrorKind::Transient);
        // Call 2: clean again.
        assert!(chaos.compile_artifact(&module(), &trace).is_ok());
        assert_eq!(chaos.injected(), 1);
        assert_eq!(chaos.calls(), 3);
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let mk = || {
            ChaosBackend::seeded(
                Arc::new(NullBackend),
                0xC4A05,
                250,
                ChaosFault::TransientError,
            )
        };
        let trace = TimeTrace::disabled();
        let a = mk();
        let b = mk();
        let pattern = |c: &ChaosBackend| {
            (0..64)
                .map(|_| c.compile_artifact(&module(), &trace).is_err())
                .collect::<Vec<_>>()
        };
        let pa = pattern(&a);
        assert_eq!(pa, pattern(&b), "seeded schedule must be deterministic");
        assert!(pa.iter().any(|&f| f), "some calls must fault");
        assert!(pa.iter().any(|&f| !f), "some calls must pass");
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn panic_fault_panics() {
        let chaos = ChaosBackend::always(Arc::new(NullBackend), ChaosFault::Panic);
        let _ = chaos.compile_artifact(&module(), &TimeTrace::disabled());
    }

    #[test]
    fn fingerprint_differs_from_inner() {
        let inner: Arc<dyn Backend> = Arc::new(NullBackend);
        let chaos = ChaosBackend::always(Arc::clone(&inner), ChaosFault::PermanentError);
        assert_ne!(chaos.config_fingerprint(), inner.config_fingerprint());
    }
}
