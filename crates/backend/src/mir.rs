//! Shared machine-IR over virtual registers.
//!
//! Both multi-target back-ends (the Cranelift analog and the LLVM analog)
//! lower into this instruction form; each brings its own register
//! allocator and emission pipeline, which is where the paper's compile-time
//! differences live.

use qc_target::{AluOp, Cond, FReg, FaluOp, Reg, Width};

/// Call target of a runtime call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// Hard-wired absolute address (Cranelift style).
    Abs(u64),
    /// Symbolic reference resolved through PLT/GOT or at link time
    /// (LLVM style).
    Sym(String),
}

/// A virtual register.
pub type VReg = u32;
/// Sentinel for "no vreg".
pub const VNONE: VReg = u32::MAX;

/// Register class of a vreg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// General-purpose.
    Int,
    /// Floating-point.
    Float,
}

/// Machine-level instruction over virtual registers.
#[derive(Debug, Clone)]
pub enum MInst {
    /// Move.
    MovRR { d: VReg, s: VReg },
    /// Immediate.
    MovRI { d: VReg, imm: i64 },
    /// Three-address ALU.
    Alu {
        op: AluOp,
        w: Width,
        sf: bool,
        d: VReg,
        s1: VReg,
        s2: VReg,
    },
    /// ALU with immediate.
    AluImm {
        op: AluOp,
        w: Width,
        sf: bool,
        d: VReg,
        s1: VReg,
        imm: i64,
    },
    /// Full multiply.
    MulFull {
        dlo: VReg,
        dhi: VReg,
        a: VReg,
        b: VReg,
    },
    /// CRC-32.
    Crc32 { d: VReg, acc: VReg, data: VReg },
    /// Division.
    Div {
        signed: bool,
        rem: bool,
        w: Width,
        d: VReg,
        a: VReg,
        b: VReg,
    },
    /// Sign extension.
    Sext { from: Width, d: VReg, s: VReg },
    /// Address computation (`base + index * scale + disp`).
    Lea {
        d: VReg,
        base: VReg,
        index: Option<(VReg, u8)>,
        disp: i32,
    },
    /// Load.
    Load {
        w: Width,
        d: VReg,
        base: VReg,
        disp: i32,
    },
    /// Store.
    Store {
        w: Width,
        s: VReg,
        base: VReg,
        disp: i32,
    },
    /// Float load/store.
    FLoad { d: VReg, base: VReg, disp: i32 },
    /// Float store.
    FStore { s: VReg, base: VReg, disp: i32 },
    /// Compare.
    Cmp { w: Width, a: VReg, b: VReg },
    /// Compare with immediate.
    CmpImm { w: Width, a: VReg, imm: i64 },
    /// Materialize condition.
    SetCc { cond: Cond, d: VReg },
    /// Trap when condition holds.
    TrapIf { cond: Cond, code: u8 },
    /// Unconditional trap.
    Trap { code: u8 },
    /// Select on a materialized bool.
    Select {
        cond: VReg,
        d: VReg,
        t: VReg,
        f: VReg,
    },
    /// Float select.
    FSelect {
        cond: VReg,
        d: VReg,
        t: VReg,
        f: VReg,
    },
    /// Conditional branch (flags set by a preceding Cmp).
    Jcc { cond: Cond, target: usize },
    /// Jump.
    Jmp { target: usize },
    /// Runtime call.
    CallRt {
        target: CallTarget,
        args: Vec<VReg>,
        ret: Vec<VReg>,
    },
    /// Local function address (fixup at finish).
    FuncAddr { d: VReg, func: usize },
    /// Address of a frame-local slot (`sp + user_area + off`).
    FrameAddr { d: VReg, off: u32 },
    /// Float ALU.
    Falu {
        op: FaluOp,
        d: VReg,
        a: VReg,
        b: VReg,
    },
    /// Float compare (sets flags).
    FCmpM { a: VReg, b: VReg },
    /// Float register move.
    FMovM { d: VReg, s: VReg },
    /// Int → float bits.
    FMovFromGpr { d: VReg, s: VReg },
    /// Float bits → int.
    FMovToGpr { d: VReg, s: VReg },
    /// Int → float conversion.
    CvtSiToF { d: VReg, s: VReg },
    /// Float → int conversion.
    CvtFToSi { d: VReg, s: VReg },
    /// Parallel moves (block-parameter transfers); same-class pairs.
    ParMove { moves: Vec<(VReg, VReg)> },
    /// Return; values already moved to the ABI registers by emission.
    Ret { vals: Vec<VReg> },
}

impl MInst {
    /// Visits used vregs.
    pub fn for_each_use(&self, mut f: impl FnMut(VReg)) {
        match self {
            MInst::MovRR { s, .. } | MInst::FMovM { s, .. } => f(*s),
            MInst::MovRI { .. }
            | MInst::SetCc { .. }
            | MInst::TrapIf { .. }
            | MInst::Trap { .. }
            | MInst::Jmp { .. }
            | MInst::Jcc { .. }
            | MInst::FuncAddr { .. }
            | MInst::FrameAddr { .. } => {}
            MInst::Alu { s1, s2, .. } => {
                f(*s1);
                f(*s2);
            }
            MInst::AluImm { s1, .. } => f(*s1),
            MInst::MulFull { a, b, .. }
            | MInst::Crc32 {
                acc: a, data: b, ..
            } => {
                f(*a);
                f(*b);
            }
            MInst::Div { a, b, .. } => {
                f(*a);
                f(*b);
            }
            MInst::Sext { s, .. } => f(*s),
            MInst::Load { base, .. } | MInst::FLoad { base, .. } => f(*base),
            MInst::Lea { base, index, .. } => {
                f(*base);
                if let Some((i, _)) = index {
                    f(*i);
                }
            }
            MInst::Store { s, base, .. } => {
                f(*s);
                f(*base);
            }
            MInst::FStore { s, base, .. } => {
                f(*s);
                f(*base);
            }
            MInst::Cmp { a, b, .. } | MInst::FCmpM { a, b } => {
                f(*a);
                f(*b);
            }
            MInst::CmpImm { a, .. } => f(*a),
            MInst::Select { cond, t, f: fv, .. } | MInst::FSelect { cond, t, f: fv, .. } => {
                f(*cond);
                f(*t);
                f(*fv);
            }
            MInst::CallRt { args, .. } => args.iter().copied().for_each(f),
            MInst::Falu { a, b, .. } => {
                f(*a);
                f(*b);
            }
            MInst::FMovFromGpr { s, .. }
            | MInst::FMovToGpr { s, .. }
            | MInst::CvtSiToF { s, .. }
            | MInst::CvtFToSi { s, .. } => f(*s),
            MInst::ParMove { moves } => moves.iter().for_each(|&(s, _)| f(s)),
            MInst::Ret { vals } => vals.iter().copied().for_each(f),
        }
    }

    /// Visits defined vregs.
    pub fn for_each_def(&self, mut f: impl FnMut(VReg)) {
        match self {
            MInst::MovRR { d, .. }
            | MInst::MovRI { d, .. }
            | MInst::AluImm { d, .. }
            | MInst::Alu { d, .. }
            | MInst::Crc32 { d, .. }
            | MInst::Div { d, .. }
            | MInst::Sext { d, .. }
            | MInst::Load { d, .. }
            | MInst::Lea { d, .. }
            | MInst::FLoad { d, .. }
            | MInst::SetCc { d, .. }
            | MInst::Select { d, .. }
            | MInst::FSelect { d, .. }
            | MInst::FuncAddr { d, .. }
            | MInst::FrameAddr { d, .. }
            | MInst::Falu { d, .. }
            | MInst::FMovM { d, .. }
            | MInst::FMovFromGpr { d, .. }
            | MInst::FMovToGpr { d, .. }
            | MInst::CvtSiToF { d, .. }
            | MInst::CvtFToSi { d, .. } => f(*d),
            MInst::MulFull { dlo, dhi, .. } => {
                f(*dlo);
                f(*dhi);
            }
            MInst::CallRt { ret, .. } => ret.iter().copied().for_each(f),
            MInst::ParMove { moves } => moves.iter().for_each(|&(_, d)| f(d)),
            _ => {}
        }
    }

    /// Whether this is a call (clobbers caller-saved registers).
    pub fn is_call(&self) -> bool {
        matches!(self, MInst::CallRt { .. })
    }
}

/// VCode for one function.
#[derive(Debug, Default)]
pub struct VCode {
    /// Function name.
    pub name: String,
    /// Instructions per block (block order = CIR block order plus splits).
    pub blocks: Vec<Vec<MInst>>,
    /// Successor blocks.
    pub succs: Vec<Vec<usize>>,
    /// Register class per vreg.
    pub classes: Vec<RegClass>,
    /// Flattened parameter vregs (entry-block live-ins from the ABI).
    pub params: Vec<VReg>,
    /// Lowering statistics: (fused icmp-brif, folded constants).
    pub fusions: (u64, u64),
}

/// Where a vreg lives after register allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A general-purpose register.
    R(Reg),
    /// A float register.
    F(FReg),
    /// A spill slot (8 bytes each, sp-relative).
    Spill(u32),
}

/// Register-allocation result.
#[derive(Debug)]
pub struct Allocation {
    /// Location per vreg.
    pub locs: Vec<Loc>,
    /// Number of spill slots used.
    pub spill_slots: u32,
    /// Spilled-bundle/interval count (statistics).
    pub spills: u64,
}
