//! Common back-end interface.
//!
//! Every execution back-end — interpreter, DirectEmit, the Cranelift
//! analog, the LLVM analog in its cheap/optimized modes, and the C
//! back-end — implements [`Backend`]: compile one IR module, produce an
//! [`Executable`]. The engine measures wall-clock compile time around
//! `compile` (the paper's primary metric) and deterministic cycles through
//! [`Executable::exec_stats`].

pub mod chaos;
pub mod memit;
pub mod mir;

use qc_ir::Module;
use qc_runtime::{EmuHost, RuntimeState};
use qc_target::{CodeImage, Emulator, ExecStats, ImageBuilder, Isa, Trap, UnwindRegistry};
use qc_timing::TimeTrace;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Failure class of a [`BackendError`], used by the compilation
/// service's fault-tolerance layer to decide between retrying a job,
/// falling back to a cheaper tier, or giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendErrorKind {
    /// The back-end deterministically rejects this input (unsupported
    /// construct, link failure, bad configuration). Retrying the same
    /// tier cannot help; a different tier might.
    Permanent,
    /// Infrastructure hiccup (worker died, channel closed, injected
    /// transient fault). Retrying the same tier may succeed.
    Transient,
    /// The compile job panicked; the panic was caught and isolated by
    /// the compilation service.
    Panic,
    /// The compile job exceeded its `CompileBudget` deadline (the
    /// budget type lives in the engine crate's compile service).
    Deadline,
}

/// Error produced when a back-end cannot compile a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Problem description.
    pub message: String,
    /// Failure class; drives the service's retry/fallback policy.
    pub kind: BackendErrorKind,
}

impl BackendError {
    /// Creates a [`BackendErrorKind::Permanent`] error from a message
    /// (the common case for back-ends rejecting an input).
    pub fn new(message: impl Into<String>) -> Self {
        Self::with_kind(message, BackendErrorKind::Permanent)
    }

    /// Creates an error with an explicit failure class.
    pub fn with_kind(message: impl Into<String>, kind: BackendErrorKind) -> Self {
        BackendError {
            message: message.into(),
            kind,
        }
    }

    /// Creates a [`BackendErrorKind::Transient`] error.
    pub fn transient(message: impl Into<String>) -> Self {
        Self::with_kind(message, BackendErrorKind::Transient)
    }

    /// Creates a [`BackendErrorKind::Panic`] error from a caught panic
    /// payload description.
    pub fn panicked(message: impl Into<String>) -> Self {
        Self::with_kind(message, BackendErrorKind::Panic)
    }

    /// Creates a [`BackendErrorKind::Deadline`] error.
    pub fn deadline(message: impl Into<String>) -> Self {
        Self::with_kind(message, BackendErrorKind::Deadline)
    }

    /// Whether a retry of the same back-end may succeed.
    pub fn is_transient(&self) -> bool {
        self.kind == BackendErrorKind::Transient
    }

    /// Prefixes the message with the back-end's name so a failure
    /// surfacing through a fallback chain names the tier that produced
    /// it. No-op if the message already carries the prefix.
    #[must_use]
    pub fn in_backend(mut self, name: &str) -> Self {
        if !self.message.starts_with(name) {
            self.message = format!("{name}: {}", self.message);
        }
        self
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BackendErrorKind::Permanent => write!(f, "backend error: {}", self.message),
            BackendErrorKind::Transient => {
                write!(f, "backend error (transient): {}", self.message)
            }
            BackendErrorKind::Panic => write!(f, "backend panic: {}", self.message),
            BackendErrorKind::Deadline => {
                write!(f, "backend deadline exceeded: {}", self.message)
            }
        }
    }
}

impl Error for BackendError {}

/// Per-compilation statistics a back-end reports alongside its code.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Number of functions compiled.
    pub functions: usize,
    /// Emitted machine-code bytes (0 for the interpreter).
    pub code_bytes: usize,
    /// Back-end-specific counters (e.g. FastISel fallback counts,
    /// paper Sec. V-B3).
    pub counters: BTreeMap<String, u64>,
}

impl CompileStats {
    /// Adds `n` to counter `name`.
    pub fn bump(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &CompileStats) {
        self.functions += other.functions;
        self.code_bytes += other.code_bytes;
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Executable form of one compiled module.
///
/// `Send` so the engine's compilation service can build executables on
/// worker threads and hand them back to the query thread.
pub trait Executable: Send {
    /// Calls the function `name` with 64-bit argument slots.
    ///
    /// # Errors
    /// Returns a [`Trap`] raised during execution.
    fn call(
        &mut self,
        state: &mut RuntimeState,
        name: &str,
        args: &[u64],
    ) -> Result<[u64; 2], Trap>;

    /// Cumulative deterministic execution statistics.
    fn exec_stats(&self) -> ExecStats;

    /// Compilation statistics.
    fn compile_stats(&self) -> &CompileStats;
}

/// A reusable compilation result: code generation is complete, linking
/// is not. [`CodeArtifact::instantiate`] repeats only the link and
/// unwind-registration step, producing a fresh [`Executable`] — this is
/// what the engine's compile-result cache stores, so parameterized
/// re-runs of a query skip code generation entirely.
pub trait CodeArtifact: Send + Sync {
    /// Links a fresh executable from the cached artifact.
    ///
    /// # Errors
    /// Returns [`BackendError`] when linking fails (e.g. a runtime
    /// symbol disappeared; cannot normally happen for artifacts that
    /// linked once already).
    fn instantiate(&self) -> Result<Box<dyn Executable>, BackendError>;

    /// Statistics of the original compilation.
    fn compile_stats(&self) -> &CompileStats;

    /// Approximate retained bytes, for cache accounting.
    fn size_bytes(&self) -> usize;

    /// Stable, position-independent serialization of the generated
    /// code, used by determinism tests to compare compilations without
    /// the linked image's embedded base address.
    fn content_bytes(&self) -> Vec<u8>;

    /// Serializes the artifact for the engine's persistent store, or
    /// `None` when this artifact kind cannot round-trip through bytes
    /// (e.g. interpreter executables that hold live bytecode tables).
    /// The default is `None`: persistence is strictly opt-in per
    /// artifact kind, and a non-serializable artifact simply stays
    /// memory-only.
    fn serialize(&self) -> Option<Vec<u8>> {
        None
    }
}

/// A query-compilation back-end.
///
/// `Send + Sync` so one back-end instance can compile a query's
/// independent pipeline modules on several worker threads at once (all
/// six frameworks the paper studies support threaded compilation).
pub trait Backend: Send + Sync {
    /// Short name as used in the paper's tables (e.g. `"DirectEmit"`).
    fn name(&self) -> &'static str;

    /// Target ISA of generated code.
    fn isa(&self) -> Isa;

    /// Distinguishes differently configured instances that share a
    /// [`Backend::name`] (e.g. the LVM ablation options) so the
    /// compile-result cache never serves code built under different
    /// options. Instances that always generate identical code may keep
    /// the default of 0.
    fn config_fingerprint(&self) -> u64 {
        0
    }

    /// Compiles one module. Phase timings go into `trace`.
    ///
    /// # Errors
    /// Returns [`BackendError`] for unsupported inputs (e.g. DirectEmit on
    /// irreducible control flow or a non-TX64 target).
    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError>;

    /// Compiles one module to a cacheable, relinkable artifact, or
    /// `None` when the back-end does not support artifact caching (the
    /// engine then falls back to [`Backend::compile`] per use).
    ///
    /// # Errors
    /// Same failure modes as [`Backend::compile`].
    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        let _ = (module, trace);
        Ok(None)
    }
}

/// [`CodeArtifact`] for the compiling back-ends: an unlinked
/// [`ImageBuilder`] plus the original compile statistics. Instantiation
/// clones the builder, links it against the runtime resolver, and
/// registers unwind information.
pub struct NativeArtifact {
    builder: ImageBuilder,
    stats: CompileStats,
}

impl NativeArtifact {
    /// Wraps an unlinked image. `stats.code_bytes` is recomputed from
    /// the linked image at each instantiation.
    pub fn new(builder: ImageBuilder, stats: CompileStats) -> Self {
        NativeArtifact { builder, stats }
    }

    /// Restores an artifact from [`CodeArtifact::serialize`] output.
    ///
    /// # Errors
    /// Returns a [`BackendError`] for truncated or malformed input; the
    /// persistent store treats that as a corrupt file and recompiles.
    pub fn deserialize(bytes: &[u8]) -> Result<NativeArtifact, BackendError> {
        fn corrupt(what: &str) -> BackendError {
            BackendError::new(format!("corrupt artifact payload: {what}"))
        }
        fn take_slice<'a>(
            bytes: &'a [u8],
            at: &mut usize,
            len: u64,
        ) -> Result<&'a [u8], BackendError> {
            let len = usize::try_from(len).map_err(|_| corrupt("oversized field"))?;
            let end = at
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| corrupt("truncated field"))?;
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        }
        fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, BackendError> {
            let s = take_slice(bytes, at, 8).map_err(|_| corrupt("truncated length field"))?;
            Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
        }
        let mut at = 0usize;
        let builder_len = take_u64(bytes, &mut at)?;
        let builder_bytes = take_slice(bytes, &mut at, builder_len)?;
        let builder = ImageBuilder::deserialize_bytes(builder_bytes)
            .map_err(|e| BackendError::new(e.to_string()))?;
        let mut stats = CompileStats {
            functions: usize::try_from(take_u64(bytes, &mut at)?)
                .map_err(|_| corrupt("function count"))?,
            code_bytes: usize::try_from(take_u64(bytes, &mut at)?)
                .map_err(|_| corrupt("code byte count"))?,
            counters: BTreeMap::new(),
        };
        let n_counters = take_u64(bytes, &mut at)?;
        for _ in 0..n_counters {
            let name_len = take_u64(bytes, &mut at)?;
            let name = std::str::from_utf8(take_slice(bytes, &mut at, name_len)?)
                .map_err(|_| corrupt("non-UTF-8 counter name"))?
                .to_string();
            let value = take_u64(bytes, &mut at)?;
            stats.counters.insert(name, value);
        }
        if at != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(NativeArtifact { builder, stats })
    }
}

impl fmt::Debug for NativeArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeArtifact(~{} bytes)", self.builder.approx_size())
    }
}

impl CodeArtifact for NativeArtifact {
    fn instantiate(&self) -> Result<Box<dyn Executable>, BackendError> {
        let linked = self
            .builder
            .clone()
            .link(&|name| qc_runtime::resolve_runtime(name))
            .map_err(|e| BackendError::new(e.to_string()))?;
        let mut stats = self.stats.clone();
        stats.code_bytes = linked.len();
        Ok(Box::new(NativeExecutable::new(linked, stats)))
    }

    fn compile_stats(&self) -> &CompileStats {
        &self.stats
    }

    fn size_bytes(&self) -> usize {
        self.builder.approx_size()
    }

    fn content_bytes(&self) -> Vec<u8> {
        self.builder.content_bytes()
    }

    fn serialize(&self) -> Option<Vec<u8>> {
        let builder_bytes = self.builder.serialize_bytes();
        let mut out = Vec::with_capacity(builder_bytes.len() + 64);
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push_u64(&mut out, builder_bytes.len() as u64);
        out.extend_from_slice(&builder_bytes);
        push_u64(&mut out, self.stats.functions as u64);
        push_u64(&mut out, self.stats.code_bytes as u64);
        push_u64(&mut out, self.stats.counters.len() as u64);
        for (name, value) in &self.stats.counters {
            push_u64(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            push_u64(&mut out, *value);
        }
        Some(out)
    }
}

/// [`Executable`] backed by emulated machine code (all compiling
/// back-ends).
pub struct NativeExecutable {
    emu: Emulator,
    stats: CompileStats,
}

impl fmt::Debug for NativeExecutable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeExecutable({} bytes)", self.emu.image().len())
    }
}

impl NativeExecutable {
    /// Wraps a linked image, registering its unwind information (the
    /// registration itself is part of what back-ends must produce; see
    /// paper Sec. III-A).
    pub fn new(image: CodeImage, stats: CompileStats) -> Self {
        let mut unwind = UnwindRegistry::new();
        unwind.register_image(&image);
        NativeExecutable {
            emu: Emulator::new(image),
            stats,
        }
    }

    /// The underlying image.
    pub fn image(&self) -> &CodeImage {
        self.emu.image()
    }
}

impl Executable for NativeExecutable {
    fn call(
        &mut self,
        state: &mut RuntimeState,
        name: &str,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let mut host = EmuHost { state };
        self.emu.call(&mut host, name, args)
    }

    fn exec_stats(&self) -> ExecStats {
        self.emu.stats()
    }

    fn compile_stats(&self) -> &CompileStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{FunctionBuilder, Signature, Type};
    use qc_target::{ImageBuilder, Tx64Assembler};

    #[test]
    fn compile_stats_merge_and_bump() {
        let mut a = CompileStats {
            functions: 1,
            code_bytes: 100,
            ..Default::default()
        };
        a.bump("fallbacks", 2);
        let mut b = CompileStats {
            functions: 2,
            code_bytes: 50,
            ..Default::default()
        };
        b.bump("fallbacks", 3);
        b.bump("other", 1);
        a.merge(&b);
        assert_eq!(a.functions, 3);
        assert_eq!(a.code_bytes, 150);
        assert_eq!(a.counters["fallbacks"], 5);
        assert_eq!(a.counters["other"], 1);
    }

    #[test]
    fn native_executable_runs_code() {
        let mut asm = Tx64Assembler::new();
        asm.alu_rr(
            qc_target::AluOp::Add,
            qc_target::Width::W64,
            false,
            qc_target::Reg(0),
            qc_target::Reg(1),
        );
        asm.ret();
        let (code, relocs) = asm.finish();
        let mut ib = ImageBuilder::new(Isa::Tx64);
        ib.add_function("f", code, relocs);
        let image = ib.link(&|_| None).unwrap();
        let mut exe = NativeExecutable::new(image, CompileStats::default());
        let mut state = RuntimeState::new();
        let r = exe.call(&mut state, "f", &[2, 40]).unwrap();
        assert_eq!(r[0], 42);
        assert!(exe.exec_stats().insts > 0);
    }

    #[test]
    fn native_artifact_serialize_roundtrip() {
        let mut asm = Tx64Assembler::new();
        asm.ret();
        let (code, relocs) = asm.finish();
        let mut ib = ImageBuilder::new(Isa::Tx64);
        ib.add_function("f", code, relocs);
        let mut stats = CompileStats {
            functions: 1,
            code_bytes: 0,
            ..Default::default()
        };
        stats.bump("isel_fallbacks", 3);
        let artifact = NativeArtifact::new(ib, stats);
        let bytes = artifact.serialize().expect("native artifacts serialize");
        let back = NativeArtifact::deserialize(&bytes).expect("roundtrip");
        assert_eq!(artifact.content_bytes(), back.content_bytes());
        assert_eq!(back.compile_stats().functions, 1);
        assert_eq!(back.compile_stats().counters["isel_fallbacks"], 3);
        // The restored artifact must still link and run.
        let mut exe = back.instantiate().expect("instantiate");
        let mut state = RuntimeState::new();
        exe.call(&mut state, "f", &[]).expect("call");
        // Corruption must be detected, not misparsed.
        for cut in [0, 7, bytes.len() - 1] {
            assert!(NativeArtifact::deserialize(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn backend_error_display() {
        let e = BackendError::new("irreducible control flow");
        assert!(e.to_string().contains("irreducible"));
    }

    // Referenced so the module type stays exercised even before back-ends
    // land; a trivial function must verify.
    #[test]
    fn ir_module_construction_sanity() {
        let mut b = FunctionBuilder::new("f", Signature::new(vec![], Type::Void));
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        let mut m = Module::new("m");
        m.push_function(b.finish());
        qc_ir::verify_module(&m).unwrap();
    }
}
