//! The 16-byte by-value string descriptor.

use crate::arena::Arena;

/// A database string value in the paper's layout (Sec. III-A):
///
/// * bytes 0–3: length,
/// * if `len <= 12`: bytes 4–15 hold the entire string ("small string"),
/// * otherwise: bytes 4–7 hold the first four characters (the *prefix*,
///   enabling quick comparisons) and bytes 8–15 a pointer to the data.
///
/// The descriptor is passed by value to and from runtime functions as two
/// 64-bit register halves (`lo` = bytes 0–7, `hi` = bytes 8–15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct RtString {
    /// Bytes 0–7: length + prefix/first data bytes.
    pub lo: u64,
    /// Bytes 8–15: pointer or remaining data bytes.
    pub hi: u64,
}

impl RtString {
    /// Maximum length stored inline.
    pub const INLINE_LEN: usize = 12;

    /// Creates a descriptor for `s`, spilling long strings into `arena`.
    pub fn new(s: &str, arena: &mut Arena) -> Self {
        let bytes = s.as_bytes();
        let len = bytes.len() as u32;
        let mut buf = [0u8; 16];
        buf[0..4].copy_from_slice(&len.to_le_bytes());
        if bytes.len() <= Self::INLINE_LEN {
            buf[4..4 + bytes.len()].copy_from_slice(bytes);
        } else {
            let ptr = arena.alloc_bytes(bytes);
            buf[4..8].copy_from_slice(&bytes[0..4]);
            buf[8..16].copy_from_slice(&ptr.to_le_bytes());
        }
        Self::from_bytes(buf)
    }

    /// Reassembles a descriptor from its 16 raw bytes.
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        RtString {
            lo: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            hi: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Reassembles a descriptor from its two register halves.
    pub fn from_parts(lo: u64, hi: u64) -> Self {
        RtString { lo, hi }
    }

    /// The 16 raw bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&self.lo.to_le_bytes());
        b[8..16].copy_from_slice(&self.hi.to_le_bytes());
        b
    }

    /// String length in bytes.
    pub fn len(self) -> usize {
        (self.lo as u32) as usize
    }

    /// Whether the string is empty.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The 4-byte prefix (zero-padded for short strings).
    pub fn prefix(self) -> u32 {
        (self.lo >> 32) as u32
    }

    /// Returns the string contents.
    ///
    /// # Safety-relevant invariant
    /// For long strings the embedded pointer must still be live (arena
    /// memory is never freed while the runtime exists).
    pub fn as_slice(&self) -> &[u8] {
        let len = self.len();
        let bytes_ptr: *const u8 = if len <= Self::INLINE_LEN {
            // Inline: bytes 4..16 of the descriptor itself.
            (self as *const RtString as *const u8).wrapping_add(4)
        } else {
            self.hi as *const u8
        };
        // SAFETY: inline data lives inside `self`; long data lives in the
        // arena which outlives all descriptors (see invariant above).
        unsafe { std::slice::from_raw_parts(bytes_ptr, len) }
    }

    /// Equality by content. Uses the length and prefix as cheap filters
    /// before touching the data, like the engine the paper describes.
    pub fn eq_content(&self, other: &RtString) -> bool {
        if self.len() != other.len() || self.prefix() != other.prefix() {
            return false;
        }
        self.as_slice() == other.as_slice()
    }

    /// Lexicographic comparison by content.
    pub fn cmp_content(&self, other: &RtString) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }

    /// Whether the string starts with `prefix` (used for `LIKE 'x%'`).
    pub fn starts_with(&self, prefix: &RtString) -> bool {
        let p = prefix.as_slice();
        self.len() >= p.len() && &self.as_slice()[..p.len()] == p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_strings_are_inline() {
        let mut a = Arena::new();
        let before = a.allocated();
        let s = RtString::new("hello", &mut a);
        assert_eq!(
            a.allocated(),
            before,
            "no arena allocation for short strings"
        );
        assert_eq!(s.len(), 5);
        assert_eq!(s.as_slice(), b"hello");
    }

    #[test]
    fn twelve_bytes_still_inline_thirteen_spills() {
        let mut a = Arena::new();
        let s12 = RtString::new("abcdefghijkl", &mut a);
        assert_eq!(a.allocated(), 0);
        assert_eq!(s12.as_slice(), b"abcdefghijkl");
        let s13 = RtString::new("abcdefghijklm", &mut a);
        assert!(a.allocated() > 0);
        assert_eq!(s13.as_slice(), b"abcdefghijklm");
        assert_eq!(s13.prefix(), u32::from_le_bytes(*b"abcd"));
    }

    #[test]
    fn content_comparisons() {
        let mut a = Arena::new();
        let x = RtString::new("analytical_database", &mut a);
        let y = RtString::new("analytical_database", &mut a);
        let z = RtString::new("analytical_databasf", &mut a);
        assert!(x.eq_content(&y));
        assert!(!x.eq_content(&z));
        assert_eq!(x.cmp_content(&z), std::cmp::Ordering::Less);
        let pre = RtString::new("analytical", &mut a);
        assert!(x.starts_with(&pre));
        assert!(!pre.starts_with(&x));
    }

    #[test]
    fn prefix_filter_rejects_without_data_access() {
        let mut a = Arena::new();
        let x = RtString::new("aaaa_long_string_x", &mut a);
        let y = RtString::new("bbbb_long_string_x", &mut a);
        assert_ne!(x.prefix(), y.prefix());
        assert!(!x.eq_content(&y));
    }

    #[test]
    fn roundtrips_register_halves() {
        let mut a = Arena::new();
        for text in [
            "",
            "hi",
            "exactly_12ch",
            "a significantly longer string value",
        ] {
            let s = RtString::new(text, &mut a);
            let r = RtString::from_parts(s.lo, s.hi);
            assert_eq!(r.as_slice(), text.as_bytes());
            let b = RtString::from_bytes(s.to_bytes());
            assert_eq!(b.as_slice(), text.as_bytes());
        }
    }
}
