//! Hash functions used by joins and aggregations.
//!
//! Umbra's hash function uses CRC-32 when the hardware supports it and a
//! `64×64→128`-bit multiply whose halves are folded with XOR otherwise
//! ("long-mul-fold", paper Sec. III-A). Generated code inlines the same
//! sequence (Listing 2); these Rust versions exist for the runtime side
//! (string hashing, hash-table management) and must produce identical bits.

use crate::strings::RtString;
use qc_target::crc32c_u64;

/// First CRC seed used by the paper's Listing 2.
pub const HASH_SEED1: u64 = 0x0845_f017_ffbc_4390;
/// Second CRC seed used by the paper's Listing 2.
pub const HASH_SEED2: u64 = 0xb993_5cc9_7ab5_b272;

/// Hashes one 64-bit value the way generated code does: two CRC-32 steps
/// with different seeds, combined into 64 bits.
pub fn hash_u64(value: u64) -> u64 {
    let a = crc32c_u64(HASH_SEED1, value);
    let b = crc32c_u64(HASH_SEED2, value);
    a | (b << 32)
}

/// The long-mul-fold combiner: full 64×64 multiply, XOR of both halves.
pub fn long_mul_fold(a: u64, b: u64) -> u64 {
    let p = (a as u128).wrapping_mul(b as u128);
    (p as u64) ^ ((p >> 64) as u64)
}

/// Hashes a string's contents (length-prefixed, 8 bytes at a time).
pub fn hash_string(s: &RtString) -> u64 {
    let bytes = s.as_slice();
    let mut h = hash_u64(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        h = crc32c_u64(h, u64::from_le_bytes(lane)) | (h << 32);
    }
    // Final avalanche through long-mul-fold.
    long_mul_fold(h, HASH_SEED2 | 1)
}

/// Combines two hash values (for multi-column keys).
pub fn hash_combine(a: u64, b: u64) -> u64 {
    long_mul_fold(
        a.wrapping_mul(3).wrapping_add(b.rotate_right(17)),
        HASH_SEED1 | 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Arena;

    #[test]
    fn hash_u64_is_deterministic_and_spreads() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
        // Low bits must differ for consecutive keys (bucket selection).
        let mask = 0xFFFF;
        let h: std::collections::HashSet<u64> = (0..1000u64).map(|i| hash_u64(i) & mask).collect();
        assert!(h.len() > 800, "poor low-bit dispersion: {}", h.len());
    }

    #[test]
    fn long_mul_fold_matches_definition() {
        let (a, b) = (0x0123_4567_89ab_cdef_u64, 0xfedc_ba98_7654_3210_u64);
        let p = (a as u128) * (b as u128);
        assert_eq!(long_mul_fold(a, b), (p as u64) ^ ((p >> 64) as u64));
        assert_eq!(long_mul_fold(0, b), 0);
    }

    #[test]
    fn string_hash_depends_on_content_not_storage() {
        let mut arena = Arena::new();
        let short = RtString::new("abc", &mut arena);
        let short2 = RtString::new("abc", &mut arena);
        assert_eq!(hash_string(&short), hash_string(&short2));
        let long1 = RtString::new("the same long string value!", &mut arena);
        let long2 = RtString::new("the same long string value!", &mut arena);
        assert_eq!(hash_string(&long1), hash_string(&long2));
        assert_ne!(hash_string(&short), hash_string(&long1));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let (a, b) = (hash_u64(1), hash_u64(2));
        assert_ne!(hash_combine(a, b), hash_combine(b, a));
    }
}
