//! Result values, used for cross-back-end differential testing.

use std::fmt;

/// One decoded SQL value.
///
/// The engine decodes output-buffer rows into these for display and for
/// checksums that must agree bit-for-bit across all back-ends.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 128-bit decimal with its scale (number of fractional digits).
    Decimal(i128, u8),
    /// Double-precision float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// SQL NULL.
    Null,
}

impl SqlValue {
    /// A stable 64-bit checksum contribution for differential tests.
    /// Floats are quantized to 6 decimal digits to absorb association
    /// differences.
    pub fn checksum(&self) -> u64 {
        match self {
            SqlValue::I32(v) => 0x1000 ^ *v as u64,
            SqlValue::I64(v) => 0x2000 ^ *v as u64,
            SqlValue::Decimal(v, s) => 0x3000 ^ (*v as u64) ^ ((*v >> 64) as u64) ^ (*s as u64),
            SqlValue::F64(v) => {
                let q = (v * 1e6).round() as i64;
                0x4000 ^ q as u64
            }
            SqlValue::Bool(v) => 0x5000 ^ *v as u64,
            SqlValue::Str(s) => {
                let mut h = 0x6000u64;
                for b in s.bytes() {
                    h = h.wrapping_mul(31).wrapping_add(b as u64);
                }
                h
            }
            SqlValue::Null => 0x7000,
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::I32(v) => write!(f, "{v}"),
            SqlValue::I64(v) => write!(f, "{v}"),
            SqlValue::Decimal(v, scale) => {
                if *scale == 0 {
                    return write!(f, "{v}");
                }
                let div = 10i128.pow(*scale as u32);
                let (int, frac) = (v / div, (v % div).abs());
                write!(f, "{int}.{frac:0width$}", width = *scale as usize)
            }
            SqlValue::F64(v) => write!(f, "{v:.6}"),
            SqlValue::Bool(v) => write!(f, "{v}"),
            SqlValue::Str(s) => write!(f, "{s}"),
            SqlValue::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_formatting() {
        assert_eq!(SqlValue::Decimal(123456, 2).to_string(), "1234.56");
        assert_eq!(SqlValue::Decimal(-1050, 2).to_string(), "-10.50");
        assert_eq!(SqlValue::Decimal(7, 0).to_string(), "7");
        assert_eq!(SqlValue::Decimal(5, 3).to_string(), "0.005");
    }

    #[test]
    fn checksums_distinguish_values_and_types() {
        assert_ne!(SqlValue::I64(1).checksum(), SqlValue::I64(2).checksum());
        assert_ne!(SqlValue::I64(1).checksum(), SqlValue::I32(1).checksum());
        assert_ne!(
            SqlValue::Str("a".into()).checksum(),
            SqlValue::Str("b".into()).checksum()
        );
        assert_eq!(SqlValue::Null.checksum(), SqlValue::Null.checksum());
    }

    #[test]
    fn float_checksum_absorbs_tiny_noise() {
        let a = SqlValue::F64(1.000000001);
        let b = SqlValue::F64(1.0000000011);
        assert_eq!(a.checksum(), b.checksum());
    }
}
