//! Database runtime for compiled queries.
//!
//! Generated query code is deliberately thin: everything non-trivial —
//! memory management, hash tables, tuple buffers, sorting, string
//! operations, overflow reporting — is a call into this runtime (paper
//! Sec. III-A). The runtime owns all dynamic memory in real host buffers,
//! which is what allows the emulated code to address it directly.
//!
//! Key pieces:
//!
//! * [`RtString`] — the paper's 16-byte string descriptor with small-string
//!   optimization and a 4-byte prefix, passed *by value* in two registers.
//! * [`Arena`] — bump allocation with stable addresses.
//! * [`HashTable`] — chained hash table whose entries live in the arena, so
//!   generated code walks chains with plain loads.
//! * [`TupleBuffer`] — materialization buffers (pipeline outputs); sorting
//!   re-enters generated comparator code.
//! * [`RuntimeState`] — the function registry: a fixed index space of
//!   runtime entry points with per-call cycle costs, dispatched from the
//!   emulator (via [`qc_target::RuntimeDispatch`]) or directly from the
//!   bytecode interpreter.

mod arena;
mod buffer;
mod hash;
mod hashtable;
mod state;
mod strings;
mod values;

pub use arena::Arena;
pub use buffer::TupleBuffer;
pub use hash::{hash_combine, hash_string, hash_u64, long_mul_fold, HASH_SEED1, HASH_SEED2};
pub use hashtable::{
    entry_hash, HashTable, ENTRY_HASH_OFFSET, ENTRY_NEXT_OFFSET, ENTRY_PAYLOAD_OFFSET,
};
pub use state::{resolve_runtime, rt_index, rtfn, EmuHost, RuntimeState};
pub use strings::RtString;
pub use values::SqlValue;
