//! Bump allocation with stable addresses.

/// A chunked bump allocator.
///
/// Allocations are 16-byte aligned and their addresses remain stable for
/// the arena's lifetime (chunks are never reallocated), which is required
/// because generated code holds raw pointers into them.
#[derive(Debug, Default)]
pub struct Arena {
    chunks: Vec<Box<[u8]>>,
    /// Offset into the last chunk.
    used: usize,
    total: usize,
}

const CHUNK_SIZE: usize = 1 << 20;

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `size` zeroed bytes, returning a stable address.
    pub fn alloc(&mut self, size: usize) -> u64 {
        let size = (size + 15) & !15;
        let need_new = match self.chunks.last() {
            None => true,
            Some(c) => self.used + size > c.len(),
        };
        if need_new {
            let cap = CHUNK_SIZE.max(size);
            self.chunks.push(vec![0u8; cap].into_boxed_slice());
            self.used = 0;
        }
        let chunk = self.chunks.last_mut().expect("chunk exists");
        let addr = chunk.as_ptr() as u64 + self.used as u64;
        self.used += size;
        self.total += size;
        addr
    }

    /// Copies `bytes` into the arena, returning their address.
    pub fn alloc_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.alloc(bytes.len());
        // SAFETY: `addr` points at freshly allocated arena memory of at
        // least `bytes.len()` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), addr as *mut u8, bytes.len());
        }
        addr
    }

    /// Total bytes allocated so far (after alignment).
    pub fn allocated(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_zeroed() {
        let mut a = Arena::new();
        let p1 = a.alloc(10);
        let p2 = a.alloc(1);
        assert_eq!(p1 % 16, 0);
        assert_eq!(p2 % 16, 0);
        assert_eq!(p2 - p1, 16);
        // SAFETY: both pointers reference live arena memory.
        unsafe {
            assert_eq!(std::ptr::read(p1 as *const u64), 0);
        }
    }

    #[test]
    fn addresses_stay_stable_across_chunk_growth() {
        let mut a = Arena::new();
        let first = a.alloc_bytes(b"hello");
        for _ in 0..100 {
            a.alloc(CHUNK_SIZE / 4);
        }
        // SAFETY: `first` is still valid arena memory.
        let back = unsafe { std::slice::from_raw_parts(first as *const u8, 5) };
        assert_eq!(back, b"hello");
        assert!(a.allocated() > CHUNK_SIZE);
    }

    #[test]
    fn oversized_allocations_get_their_own_chunk() {
        let mut a = Arena::new();
        let p = a.alloc(3 * CHUNK_SIZE);
        assert_ne!(p, 0);
        let q = a.alloc(8);
        assert_ne!(q, 0);
    }
}
