//! Chained hash table with arena-resident entries.

use crate::arena::Arena;

/// Entry header layout (all offsets in bytes from the entry base):
/// `[0..8) next` — address of the next entry in the same bucket (0 = end),
/// `[8..16) hash` — the full 64-bit hash,
/// `[16..) payload` — key and value columns, laid out by the code
/// generator.
pub const ENTRY_NEXT_OFFSET: i32 = 0;
/// Offset of the hash field within an entry.
pub const ENTRY_HASH_OFFSET: i32 = 8;
/// Offset of the payload within an entry.
pub const ENTRY_PAYLOAD_OFFSET: i32 = 16;

/// A chained hash table whose entries live in the runtime [`Arena`].
///
/// Generated code interacts with it through three runtime calls —
/// `rt_ht_insert`, `rt_ht_build`, `rt_ht_probe` — and then walks bucket
/// chains with plain loads (the `next` and `hash` header fields), exactly
/// like the engine described in the paper. The table grows by rehashing
/// the chain heads; entry payloads never move.
#[derive(Debug)]
pub struct HashTable {
    buckets: Vec<u64>,
    count: usize,
    mask: u64,
    /// Payload addresses in insertion order. Bucket chains are LIFO, so
    /// chain order alone cannot reconstruct the global insert sequence;
    /// the morsel-parallel merge replays a worker's inserts into the
    /// canonical table in exactly this order to keep downstream probe
    /// order byte-identical to single-threaded execution.
    insert_log: Vec<u64>,
}

fn read_u64(addr: u64) -> u64 {
    // SAFETY: addresses come from this table's own arena entries.
    unsafe { std::ptr::read_unaligned(addr as *const u64) }
}

/// Reads the stored 64-bit hash of the entry whose payload starts at
/// `payload` (the address form returned by [`HashTable::insert`]).
pub fn entry_hash(payload: u64) -> u64 {
    read_u64(payload - (ENTRY_PAYLOAD_OFFSET - ENTRY_HASH_OFFSET) as u64)
}

fn write_u64(addr: u64, v: u64) {
    // SAFETY: see `read_u64`.
    unsafe { std::ptr::write_unaligned(addr as *mut u64, v) }
}

impl HashTable {
    /// Creates a table sized for roughly `estimate` entries.
    pub fn new(estimate: usize) -> Self {
        let cap = estimate.next_power_of_two().max(16);
        HashTable {
            buckets: vec![0; cap],
            count: 0,
            mask: cap as u64 - 1,
            insert_log: Vec::new(),
        }
    }

    /// Clones the table structure for a morsel-parallel worker: bucket
    /// heads, count, and mask are copied (entries stay in the parent's
    /// arena and are only *read* through the clone), while the insert
    /// log restarts empty so it records exactly the worker's own
    /// inserts.
    pub fn fork(&self) -> HashTable {
        HashTable {
            buckets: self.buckets.clone(),
            count: self.count,
            mask: self.mask,
            insert_log: Vec::new(),
        }
    }

    /// Payload addresses inserted into this table instance, in order
    /// (excludes entries inherited through [`HashTable::fork`]).
    pub fn insert_log(&self) -> &[u64] {
        &self.insert_log
    }

    /// Number of inserted entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts a new entry with `hash` and a zeroed payload of
    /// `payload_size` bytes; returns the payload address.
    pub fn insert(&mut self, arena: &mut Arena, hash: u64, payload_size: usize) -> u64 {
        if self.count + 1 > self.buckets.len() * 2 {
            self.grow();
        }
        let entry = arena.alloc(ENTRY_PAYLOAD_OFFSET as usize + payload_size);
        let bucket = (hash & self.mask) as usize;
        write_u64(entry, self.buckets[bucket]); // next
        write_u64(entry + 8, hash);
        self.buckets[bucket] = entry;
        self.count += 1;
        let payload = entry + ENTRY_PAYLOAD_OFFSET as u64;
        self.insert_log.push(payload);
        payload
    }

    /// Finalizes the build side (chains are maintained incrementally, so
    /// this only exists to model the build step's cost envelope).
    pub fn build(&mut self) {}

    /// Returns the head of the bucket chain for `hash` (0 when empty).
    pub fn probe(&self, hash: u64) -> u64 {
        self.buckets[(hash & self.mask) as usize]
    }

    fn grow(&mut self) {
        let new_cap = self.buckets.len() * 4;
        let new_mask = new_cap as u64 - 1;
        let mut new_buckets = vec![0u64; new_cap];
        for &head in &self.buckets {
            let mut entry = head;
            while entry != 0 {
                let next = read_u64(entry);
                let hash = read_u64(entry + 8);
                let b = (hash & new_mask) as usize;
                write_u64(entry, new_buckets[b]);
                new_buckets[b] = entry;
                entry = next;
            }
        }
        self.buckets = new_buckets;
        self.mask = new_mask;
    }

    /// Walks the chain for `hash` and returns entries whose stored hash
    /// matches exactly (test helper; generated code does this inline).
    pub fn matching_entries(&self, hash: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut e = self.probe(hash);
        while e != 0 {
            if read_u64(e + 8) == hash {
                out.push(e + ENTRY_PAYLOAD_OFFSET as u64);
            }
            e = read_u64(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;

    #[test]
    fn insert_then_probe_finds_payload() {
        let mut arena = Arena::new();
        let mut ht = HashTable::new(4);
        let h = hash_u64(7);
        let payload = ht.insert(&mut arena, h, 16);
        write_u64(payload, 777);
        let found = ht.matching_entries(h);
        assert_eq!(found.len(), 1);
        assert_eq!(read_u64(found[0]), 777);
        assert!(ht.matching_entries(hash_u64(8)).is_empty());
    }

    #[test]
    fn fork_reads_parent_entries_and_logs_only_its_own() {
        let mut arena = Arena::new();
        let mut ht = HashTable::new(4);
        let h1 = hash_u64(1);
        let p1 = ht.insert(&mut arena, h1, 8);
        write_u64(p1, 11);
        assert_eq!(ht.insert_log(), &[p1]);
        assert_eq!(entry_hash(p1), h1);

        let mut child = ht.fork();
        assert_eq!(child.len(), 1);
        assert!(child.insert_log().is_empty());
        // Parent entries are visible through the fork...
        assert_eq!(child.matching_entries(h1), vec![p1]);
        // ...and new inserts land only in the fork's log.
        let h2 = hash_u64(2);
        let p2 = child.insert(&mut arena, h2, 8);
        assert_eq!(child.insert_log(), &[p2]);
        assert_eq!(ht.insert_log(), &[p1]);
        assert!(ht.matching_entries(h2).is_empty());
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut arena = Arena::new();
        let mut ht = HashTable::new(4);
        let n = 10_000u64;
        for i in 0..n {
            let p = ht.insert(&mut arena, hash_u64(i), 8);
            write_u64(p, i);
        }
        assert_eq!(ht.len(), n as usize);
        for i in 0..n {
            let found = ht.matching_entries(hash_u64(i));
            assert!(
                found.iter().any(|&p| read_u64(p) == i),
                "lost key {i} after growth"
            );
        }
    }

    #[test]
    fn duplicate_hashes_chain() {
        let mut arena = Arena::new();
        let mut ht = HashTable::new(16);
        let h = hash_u64(1);
        for v in 0..5u64 {
            let p = ht.insert(&mut arena, h, 8);
            write_u64(p, v);
        }
        let found = ht.matching_entries(h);
        assert_eq!(found.len(), 5);
        let mut values: Vec<u64> = found.iter().map(|&p| read_u64(p)).collect();
        values.sort_unstable();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn behaves_like_std_multimap() {
        use std::collections::HashMap;
        let mut arena = Arena::new();
        let mut ht = HashTable::new(4);
        let mut reference: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut x = 123456789u64;
        for i in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = x % 300;
            let p = ht.insert(&mut arena, hash_u64(key), 8);
            write_u64(p, i);
            reference.entry(key).or_default().push(i);
        }
        for (key, vals) in &reference {
            let mut got: Vec<u64> = ht
                .matching_entries(hash_u64(*key))
                .iter()
                .map(|&p| read_u64(p))
                .collect();
            got.sort_unstable();
            let mut want = vals.clone();
            want.sort_unstable();
            assert_eq!(got, want, "key {key}");
        }
    }
}
