//! The runtime function registry and dispatcher.

use crate::arena::Arena;
use crate::buffer::TupleBuffer;
use crate::hash::hash_string;
use crate::hashtable::HashTable;
use crate::strings::RtString;
use qc_target::{runtime_addr, Reentry, RuntimeDispatch, Trap};

/// Runtime function indices and metadata.
///
/// The index space is fixed: generated code reaches function `i` at the
/// virtual address [`qc_target::runtime_addr`]`(i)`. Argument counts are in
/// 64-bit slots (a by-value string or `i128` takes two).
pub mod rtfn {
    /// `rt_throw_overflow()` — reports arithmetic overflow; never returns.
    pub const THROW_OVERFLOW: usize = 0;
    /// `rt_ht_create(estimate) -> ht`.
    pub const HT_CREATE: usize = 1;
    /// `rt_ht_insert(ht, hash, payload_size) -> payload_ptr`.
    pub const HT_INSERT: usize = 2;
    /// `rt_ht_build(ht)`.
    pub const HT_BUILD: usize = 3;
    /// `rt_ht_probe(ht, hash) -> entry_ptr (0 = none)`.
    pub const HT_PROBE: usize = 4;
    /// `rt_buf_create(row_size) -> buf`.
    pub const BUF_CREATE: usize = 5;
    /// `rt_buf_alloc(buf) -> row_ptr`.
    pub const BUF_ALLOC: usize = 6;
    /// `rt_buf_len(buf) -> n`.
    pub const BUF_LEN: usize = 7;
    /// `rt_buf_row(buf, i) -> row_ptr`.
    pub const BUF_ROW: usize = 8;
    /// `rt_sort(buf, cmp_fn)` — sorts rows, calling back into generated
    /// code for comparisons.
    pub const SORT: usize = 9;
    /// `rt_str_eq(a, b) -> bool`.
    pub const STR_EQ: usize = 10;
    /// `rt_str_lt(a, b) -> bool`.
    pub const STR_LT: usize = 11;
    /// `rt_str_hash(s) -> h`.
    pub const STR_HASH: usize = 12;
    /// `rt_str_prefix(s, prefix) -> bool` (`LIKE 'x%'`).
    pub const STR_PREFIX: usize = 13;
    /// `rt_i128_div(a, b) -> a / b` (traps on zero/overflow).
    pub const I128_DIV: usize = 14;
    /// `rt_mul128_ovf(a, b) -> a * b` (traps on signed overflow) — the
    /// "hand-optimized 128-bit multiplication" helper of paper Sec. V-A1.
    pub const MUL128_OVF: usize = 15;
    /// `rt_alloc(size) -> ptr`.
    pub const ALLOC: usize = 16;
    /// `rt_str_contains(s, needle) -> bool` (`LIKE '%x%'`).
    pub const STR_CONTAINS: usize = 17;
    /// `rt_crc32(acc, data) -> crc` — helper used by back-ends without a
    /// native CRC-32 instruction (Table II ablation).
    pub const CRC32: usize = 18;
    /// `rt_sadd_ovf(a, b) -> a + b` (traps on signed 64-bit overflow).
    pub const SADD_OVF: usize = 19;
    /// `rt_ssub_ovf(a, b) -> a - b` (traps on overflow).
    pub const SSUB_OVF: usize = 20;
    /// `rt_smul_ovf(a, b) -> a * b` (traps on overflow).
    pub const SMUL_OVF: usize = 21;
    /// `rt_add128_ovf(a, b) -> a + b` at 128 bits (traps on overflow).
    pub const ADD128_OVF: usize = 22;
    /// `rt_sub128_ovf(a, b) -> a - b` at 128 bits (traps on overflow).
    pub const SUB128_OVF: usize = 23;

    /// Symbol names by index.
    pub const NAMES: [&str; 24] = [
        "rt_throw_overflow",
        "rt_ht_create",
        "rt_ht_insert",
        "rt_ht_build",
        "rt_ht_probe",
        "rt_buf_create",
        "rt_buf_alloc",
        "rt_buf_len",
        "rt_buf_row",
        "rt_sort",
        "rt_str_eq",
        "rt_str_lt",
        "rt_str_hash",
        "rt_str_prefix",
        "rt_i128_div",
        "rt_mul128_ovf",
        "rt_alloc",
        "rt_str_contains",
        "rt_crc32",
        "rt_sadd_ovf",
        "rt_ssub_ovf",
        "rt_smul_ovf",
        "rt_add128_ovf",
        "rt_sub128_ovf",
    ];

    /// Argument slot counts by index.
    pub const ARG_SLOTS: [usize; 24] = [
        0, 1, 3, 1, 2, 1, 1, 1, 2, 2, 4, 4, 2, 4, 4, 4, 1, 4, 2, 2, 2, 2, 4, 4,
    ];
}

/// Resolves a runtime symbol name to its virtual address, for linkers.
pub fn resolve_runtime(name: &str) -> Option<u64> {
    rt_index(name).map(runtime_addr)
}

/// Resolves a runtime symbol name to its function index.
pub fn rt_index(name: &str) -> Option<usize> {
    rtfn::NAMES.iter().position(|&n| n == name)
}

fn i128_from(lo: u64, hi: u64) -> i128 {
    ((hi as u128) << 64 | lo as u128) as i128
}

fn i128_parts(v: i128) -> [u64; 2] {
    [v as u64, ((v as u128) >> 64) as u64]
}

/// Callback used by runtime functions that re-enter generated code.
pub type CodeCallback<'a> = dyn FnMut(&mut RuntimeState, u64, &[u64]) -> Result<u64, Trap> + 'a;

/// All mutable runtime state of one query execution: the arena, hash
/// tables, tuple buffers, and interned constants.
#[derive(Debug, Default)]
pub struct RuntimeState {
    arena: Arena,
    tables: Vec<HashTable>,
    buffers: Vec<TupleBuffer>,
    /// Runtime calls performed, per function index (for tests/statistics).
    pub call_counts: [u64; rtfn::NAMES.len()],
}

impl RuntimeState {
    /// Creates an empty runtime state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a constant string (query literals).
    pub fn intern_string(&mut self, s: &str) -> RtString {
        RtString::new(s, &mut self.arena)
    }

    /// Direct arena access (used by storage loading and tests).
    pub fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    /// Access to a tuple buffer by handle (e.g. to decode query output).
    pub fn buffer(&self, id: u64) -> &TupleBuffer {
        &self.buffers[id as usize]
    }

    /// Number of live buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Access to a hash table by handle (used by the morsel-parallel
    /// merge and by tests).
    pub fn table(&self, id: u64) -> &HashTable {
        &self.tables[id as usize]
    }

    /// Number of live hash tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Forks a worker-local state for morsel-parallel execution.
    ///
    /// Hash tables and buffers are structurally cloned — their entries
    /// and rows stay in this state's arena and are only *read* through
    /// the fork — and the fork gets a fresh arena of its own, so handle
    /// numbering stays aligned: containers the worker creates receive
    /// the same indices canonical execution would assign next. The fork
    /// must never mutate an inherited container (workers only write
    /// through sink handles their own `setup` created); the parent must
    /// stay alive and unmutated while forks run, since forked containers
    /// hold raw addresses into its arena.
    pub fn fork_worker(&self) -> RuntimeState {
        RuntimeState {
            arena: Arena::new(),
            tables: self.tables.iter().map(HashTable::fork).collect(),
            buffers: self.buffers.iter().map(TupleBuffer::fork).collect(),
            call_counts: [0; rtfn::NAMES.len()],
        }
    }

    /// Adds another state's runtime-call counters into this one (used
    /// when folding worker states back into the canonical state).
    pub fn merge_counts_from(&mut self, other: &RuntimeState) {
        for (c, o) in self.call_counts.iter_mut().zip(&other.call_counts) {
            *c += o;
        }
    }

    /// Inserts an entry into hash table `id` and fills its payload by
    /// copying `size` bytes from the raw address `src` (a live payload
    /// in some worker state's arena). Replay primitive of the
    /// morsel-parallel merge; does not bump `call_counts` — the worker
    /// that produced the source entry already counted the insert.
    ///
    /// Returns the canonical payload address.
    pub fn ht_insert_from(&mut self, id: u64, hash: u64, src: u64, size: usize) -> u64 {
        let dst = self.tables[id as usize].insert(&mut self.arena, hash, size);
        // SAFETY: `src` points at a live `size`-byte payload in a worker
        // arena the caller keeps alive; `dst` is a fresh allocation of at
        // least `size` bytes in this state's arena.
        unsafe {
            std::ptr::copy_nonoverlapping(src as *const u8, dst as *mut u8, size);
        }
        dst
    }

    /// Appends one row to buffer `id`, copying the row bytes from the
    /// raw address `src`. Replay primitive of the morsel-parallel merge;
    /// does not bump `call_counts` (see [`RuntimeState::ht_insert_from`]).
    ///
    /// Returns the canonical row address.
    pub fn buf_append_from(&mut self, id: u64, src: u64) -> u64 {
        let (buffers, arena) = (&mut self.buffers, &mut self.arena);
        let buf = &mut buffers[id as usize];
        let size = buf.row_size();
        let dst = buf.alloc_row(arena);
        // SAFETY: `src` points at a live row of `size` bytes in a worker
        // arena the caller keeps alive; `dst` is freshly allocated.
        unsafe {
            std::ptr::copy_nonoverlapping(src as *const u8, dst as *mut u8, size);
        }
        dst
    }

    /// Model cost in cycles of runtime function `index` with `args`.
    pub fn cost(&self, index: usize, args: &[u64]) -> u64 {
        match index {
            rtfn::THROW_OVERFLOW => 5,
            rtfn::HT_CREATE => 50,
            rtfn::HT_INSERT => 20,
            rtfn::HT_BUILD => {
                let len = self.tables.get(args[0] as usize).map_or(0, HashTable::len);
                10 + len as u64 / 8
            }
            rtfn::HT_PROBE => 8,
            rtfn::BUF_CREATE => 30,
            rtfn::BUF_ALLOC => 10,
            rtfn::BUF_LEN => 3,
            rtfn::BUF_ROW => 4,
            rtfn::SORT => {
                let n = self
                    .buffers
                    .get(args[0] as usize)
                    .map_or(0, TupleBuffer::len) as u64;
                40 + n * (64 - n.leading_zeros() as u64).max(1) * 10
            }
            rtfn::STR_EQ | rtfn::STR_LT => {
                8 + (RtString::from_parts(args[0], args[1]).len() as u64) / 8
            }
            rtfn::STR_HASH => 10 + (RtString::from_parts(args[0], args[1]).len() as u64) / 8,
            rtfn::STR_PREFIX => 8,
            rtfn::STR_CONTAINS => 10 + RtString::from_parts(args[0], args[1]).len() as u64,
            rtfn::I128_DIV => 40,
            rtfn::MUL128_OVF => 12,
            rtfn::ALLOC => 15,
            rtfn::CRC32 => 8,
            rtfn::SADD_OVF | rtfn::SSUB_OVF => 7,
            rtfn::SMUL_OVF => 9,
            rtfn::ADD128_OVF | rtfn::SUB128_OVF => 10,
            _ => 10,
        }
    }

    /// Dispatches runtime function `index`.
    ///
    /// `callback` re-enters generated code (used by [`rtfn::SORT`]); both
    /// the emulator and the bytecode interpreter provide one.
    ///
    /// # Errors
    /// Returns a [`Trap`] for overflow/division traps, invalid handles, or
    /// errors propagated from re-entered code.
    pub fn invoke(
        &mut self,
        index: usize,
        args: &[u64],
        callback: &mut CodeCallback<'_>,
    ) -> Result<[u64; 2], Trap> {
        if let Some(c) = self.call_counts.get_mut(index) {
            *c += 1;
        }
        let arg = |i: usize| -> u64 { args.get(i).copied().unwrap_or(0) };
        match index {
            rtfn::THROW_OVERFLOW => Err(Trap::Overflow),
            rtfn::HT_CREATE => {
                self.tables.push(HashTable::new(arg(0) as usize));
                Ok([(self.tables.len() - 1) as u64, 0])
            }
            rtfn::HT_INSERT => {
                let id = arg(0) as usize;
                if id >= self.tables.len() {
                    return Err(Trap::Runtime(1));
                }
                let p = self.tables[id].insert(&mut self.arena, arg(1), arg(2) as usize);
                Ok([p, 0])
            }
            rtfn::HT_BUILD => {
                let id = arg(0) as usize;
                if id >= self.tables.len() {
                    return Err(Trap::Runtime(1));
                }
                self.tables[id].build();
                Ok([0, 0])
            }
            rtfn::HT_PROBE => {
                let id = arg(0) as usize;
                if id >= self.tables.len() {
                    return Err(Trap::Runtime(1));
                }
                Ok([self.tables[id].probe(arg(1)), 0])
            }
            rtfn::BUF_CREATE => {
                self.buffers.push(TupleBuffer::new(arg(0) as usize));
                Ok([(self.buffers.len() - 1) as u64, 0])
            }
            rtfn::BUF_ALLOC => {
                let id = arg(0) as usize;
                if id >= self.buffers.len() {
                    return Err(Trap::Runtime(2));
                }
                // Split borrow: buffer and arena are distinct fields.
                let (buffers, arena) = (&mut self.buffers, &mut self.arena);
                Ok([buffers[id].alloc_row(arena), 0])
            }
            rtfn::BUF_LEN => {
                let id = arg(0) as usize;
                if id >= self.buffers.len() {
                    return Err(Trap::Runtime(2));
                }
                Ok([self.buffers[id].len() as u64, 0])
            }
            rtfn::BUF_ROW => {
                let id = arg(0) as usize;
                if id >= self.buffers.len() {
                    return Err(Trap::Runtime(2));
                }
                Ok([self.buffers[id].row(arg(1) as usize), 0])
            }
            rtfn::SORT => {
                let id = arg(0) as usize;
                let cmp_fn = arg(1);
                if id >= self.buffers.len() {
                    return Err(Trap::Runtime(2));
                }
                let mut rows = self.buffers[id].take_rows();
                let mut error: Option<Trap> = None;
                rows.sort_by(|&a, &b| {
                    if error.is_some() {
                        return std::cmp::Ordering::Equal;
                    }
                    match callback(self, cmp_fn, &[a, b]) {
                        Ok(r) => (r as i64).cmp(&0),
                        Err(t) => {
                            error = Some(t);
                            std::cmp::Ordering::Equal
                        }
                    }
                });
                self.buffers[id].put_back(rows);
                match error {
                    Some(t) => Err(t),
                    None => Ok([0, 0]),
                }
            }
            rtfn::STR_EQ => {
                let a = RtString::from_parts(arg(0), arg(1));
                let b = RtString::from_parts(arg(2), arg(3));
                Ok([a.eq_content(&b) as u64, 0])
            }
            rtfn::STR_LT => {
                let a = RtString::from_parts(arg(0), arg(1));
                let b = RtString::from_parts(arg(2), arg(3));
                Ok([(a.cmp_content(&b) == std::cmp::Ordering::Less) as u64, 0])
            }
            rtfn::STR_HASH => {
                let s = RtString::from_parts(arg(0), arg(1));
                Ok([hash_string(&s), 0])
            }
            rtfn::STR_PREFIX => {
                let s = RtString::from_parts(arg(0), arg(1));
                let p = RtString::from_parts(arg(2), arg(3));
                Ok([s.starts_with(&p) as u64, 0])
            }
            rtfn::STR_CONTAINS => {
                let s = RtString::from_parts(arg(0), arg(1));
                let n = RtString::from_parts(arg(2), arg(3));
                let found = n.is_empty()
                    || s.as_slice()
                        .windows(n.len().max(1))
                        .any(|w| w == n.as_slice());
                Ok([found as u64, 0])
            }
            rtfn::I128_DIV => {
                let a = i128_from(arg(0), arg(1));
                let b = i128_from(arg(2), arg(3));
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                if a == i128::MIN && b == -1 {
                    return Err(Trap::Overflow);
                }
                Ok(i128_parts(a / b))
            }
            rtfn::MUL128_OVF => {
                let a = i128_from(arg(0), arg(1));
                let b = i128_from(arg(2), arg(3));
                match a.checked_mul(b) {
                    Some(p) => Ok(i128_parts(p)),
                    None => Err(Trap::Overflow),
                }
            }
            rtfn::ALLOC => Ok([self.arena.alloc(arg(0) as usize), 0]),
            rtfn::CRC32 => Ok([qc_target::crc32c_u64(arg(0), arg(1)), 0]),
            rtfn::SADD_OVF => match (arg(0) as i64).checked_add(arg(1) as i64) {
                Some(r) => Ok([r as u64, 0]),
                None => Err(Trap::Overflow),
            },
            rtfn::SSUB_OVF => match (arg(0) as i64).checked_sub(arg(1) as i64) {
                Some(r) => Ok([r as u64, 0]),
                None => Err(Trap::Overflow),
            },
            rtfn::SMUL_OVF => match (arg(0) as i64).checked_mul(arg(1) as i64) {
                Some(r) => Ok([r as u64, 0]),
                None => Err(Trap::Overflow),
            },
            rtfn::ADD128_OVF => {
                match i128_from(arg(0), arg(1)).checked_add(i128_from(arg(2), arg(3))) {
                    Some(r) => Ok(i128_parts(r)),
                    None => Err(Trap::Overflow),
                }
            }
            rtfn::SUB128_OVF => {
                match i128_from(arg(0), arg(1)).checked_sub(i128_from(arg(2), arg(3))) {
                    Some(r) => Ok(i128_parts(r)),
                    None => Err(Trap::Overflow),
                }
            }
            _ => Err(Trap::Runtime(0xFF)),
        }
    }
}

/// Adapter exposing a [`RuntimeState`] to the emulator.
#[derive(Debug)]
pub struct EmuHost<'s> {
    /// The wrapped runtime state.
    pub state: &'s mut RuntimeState,
}

impl RuntimeDispatch for EmuHost<'_> {
    fn arg_slots(&self, index: usize) -> usize {
        rtfn::ARG_SLOTS.get(index).copied().unwrap_or(0)
    }

    fn runtime_cost(&self, index: usize, args: &[u64]) -> u64 {
        self.state.cost(index, args)
    }

    fn call_runtime(
        &mut self,
        index: usize,
        args: &[u64],
        mut reentry: Reentry<'_>,
    ) -> Result<[u64; 2], Trap> {
        self.state.invoke(index, args, &mut |state, addr, cargs| {
            let mut host = EmuHost { state };
            reentry.call(&mut host, addr, cargs)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_callback() -> Box<CodeCallback<'static>> {
        Box::new(|_, _, _| Err(Trap::Runtime(9)))
    }

    #[test]
    fn hash_table_lifecycle_via_dispatch() {
        let mut st = RuntimeState::new();
        let cb = &mut *no_callback();
        let ht = st.invoke(rtfn::HT_CREATE, &[64], cb).unwrap()[0];
        let payload = st.invoke(rtfn::HT_INSERT, &[ht, 0xABCD, 8], cb).unwrap()[0];
        assert_ne!(payload, 0);
        let entry = st.invoke(rtfn::HT_PROBE, &[ht, 0xABCD], cb).unwrap()[0];
        assert_eq!(entry + 16, payload);
        assert_eq!(st.call_counts[rtfn::HT_INSERT], 1);
    }

    #[test]
    fn overflow_and_div_traps() {
        let mut st = RuntimeState::new();
        let cb = &mut *no_callback();
        assert_eq!(
            st.invoke(rtfn::THROW_OVERFLOW, &[], cb),
            Err(Trap::Overflow)
        );
        let max = i128_parts(i128::MAX);
        assert_eq!(
            st.invoke(rtfn::MUL128_OVF, &[max[0], max[1], 2, 0], cb),
            Err(Trap::Overflow)
        );
        assert_eq!(
            st.invoke(rtfn::I128_DIV, &[1, 0, 0, 0], cb),
            Err(Trap::DivByZero)
        );
        let r = st
            .invoke(
                rtfn::I128_DIV,
                &i128_parts(-100)
                    .iter()
                    .chain(&i128_parts(7))
                    .copied()
                    .collect::<Vec<_>>(),
                cb,
            )
            .unwrap();
        assert_eq!(i128_from(r[0], r[1]), -14);
    }

    #[test]
    fn string_functions_via_register_halves() {
        let mut st = RuntimeState::new();
        let a = st.intern_string("a long string beyond twelve");
        let b = st.intern_string("a long string beyond twelve");
        let p = st.intern_string("a long");
        let cb = &mut *no_callback();
        assert_eq!(
            st.invoke(rtfn::STR_EQ, &[a.lo, a.hi, b.lo, b.hi], cb)
                .unwrap()[0],
            1
        );
        assert_eq!(
            st.invoke(rtfn::STR_PREFIX, &[a.lo, a.hi, p.lo, p.hi], cb)
                .unwrap()[0],
            1
        );
        assert_eq!(
            st.invoke(rtfn::STR_LT, &[a.lo, a.hi, p.lo, p.hi], cb)
                .unwrap()[0],
            0
        );
        assert_eq!(
            st.invoke(rtfn::STR_CONTAINS, &[a.lo, a.hi, p.lo, p.hi], cb)
                .unwrap()[0],
            1
        );
        let h1 = st.invoke(rtfn::STR_HASH, &[a.lo, a.hi], cb).unwrap()[0];
        let h2 = st.invoke(rtfn::STR_HASH, &[b.lo, b.hi], cb).unwrap()[0];
        assert_eq!(h1, h2);
    }

    #[test]
    fn sort_reenters_comparator() {
        let mut st = RuntimeState::new();
        let cb0 = &mut *no_callback();
        let buf = st.invoke(rtfn::BUF_CREATE, &[8], cb0).unwrap()[0];
        for v in [5u64, 1, 3] {
            let row = st.invoke(rtfn::BUF_ALLOC, &[buf], cb0).unwrap()[0];
            // SAFETY: freshly allocated row.
            unsafe { std::ptr::write_unaligned(row as *mut u64, v) };
        }
        // "Generated" comparator: compare first u64 of each row.
        let mut cmp = |_: &mut RuntimeState, addr: u64, args: &[u64]| -> Result<u64, Trap> {
            assert_eq!(addr, 0x1234);
            // SAFETY: row pointers from the buffer above.
            let (a, b) = unsafe {
                (
                    std::ptr::read_unaligned(args[0] as *const u64),
                    std::ptr::read_unaligned(args[1] as *const u64),
                )
            };
            Ok((a as i64 - b as i64) as u64)
        };
        st.invoke(rtfn::SORT, &[buf, 0x1234], &mut cmp).unwrap();
        let keys: Vec<u64> = (0..3)
            .map(|i| u64::from_le_bytes(st.buffer(buf).row_bytes(i)[0..8].try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn names_resolve_to_stable_addresses() {
        assert_eq!(rt_index("rt_ht_probe"), Some(rtfn::HT_PROBE));
        assert_eq!(resolve_runtime("rt_sort"), Some(runtime_addr(rtfn::SORT)));
        assert_eq!(resolve_runtime("nope"), None);
        assert_eq!(rtfn::NAMES.len(), rtfn::ARG_SLOTS.len());
    }

    #[test]
    fn bad_handles_trap() {
        let mut st = RuntimeState::new();
        let cb = &mut *no_callback();
        assert!(st.invoke(rtfn::HT_PROBE, &[99, 0], cb).is_err());
        assert!(st.invoke(rtfn::BUF_ROW, &[99, 0], cb).is_err());
        assert!(st.invoke(999, &[], cb).is_err());
    }
}
