//! Tuple materialization buffers.

use crate::arena::Arena;

/// A buffer of fixed-size rows, used at pipeline ends: query output,
/// temporary materialization between pipelines, and sort input.
///
/// Rows live in the arena (stable addresses); the buffer itself only keeps
/// the row pointers, which makes sorting a pointer permutation — the row
/// bytes never move while generated code may hold references to them.
#[derive(Debug)]
pub struct TupleBuffer {
    row_size: usize,
    rows: Vec<u64>,
}

impl TupleBuffer {
    /// Creates an empty buffer for rows of `row_size` bytes.
    pub fn new(row_size: usize) -> Self {
        TupleBuffer {
            row_size,
            rows: Vec::new(),
        }
    }

    /// Row size in bytes.
    pub fn row_size(&self) -> usize {
        self.row_size
    }

    /// Clones the buffer for a morsel-parallel worker: row pointers are
    /// copied (rows stay in the parent's arena and are only read through
    /// the clone); rows the worker appends afterwards live in its own
    /// arena.
    pub fn fork(&self) -> TupleBuffer {
        TupleBuffer {
            row_size: self.row_size,
            rows: self.rows.clone(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the buffer has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Allocates one zeroed row and returns its address.
    pub fn alloc_row(&mut self, arena: &mut Arena) -> u64 {
        let addr = arena.alloc(self.row_size);
        self.rows.push(addr);
        addr
    }

    /// Address of row `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn row(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// Takes the row-pointer array out for sorting (see
    /// [`TupleBuffer::put_back`]).
    pub fn take_rows(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.rows)
    }

    /// Restores the (possibly permuted) row-pointer array.
    pub fn put_back(&mut self, rows: Vec<u64>) {
        self.rows = rows;
    }

    /// Copies row `i` out as bytes (for result decoding and tests).
    pub fn row_bytes(&self, i: usize) -> Vec<u8> {
        let addr = self.rows[i];
        // SAFETY: rows are live arena allocations of `row_size` bytes.
        unsafe { std::slice::from_raw_parts(addr as *const u8, self.row_size).to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_u64(addr: u64, v: u64) {
        // SAFETY: test-local arena row.
        unsafe { std::ptr::write_unaligned(addr as *mut u64, v) }
    }

    #[test]
    fn rows_are_stable_and_readable() {
        let mut arena = Arena::new();
        let mut buf = TupleBuffer::new(16);
        for i in 0..100u64 {
            let r = buf.alloc_row(&mut arena);
            write_u64(r, i);
            write_u64(r + 8, i * 2);
        }
        assert_eq!(buf.len(), 100);
        let bytes = buf.row_bytes(7);
        assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 14);
    }

    #[test]
    fn sorting_permutes_pointers_without_moving_rows() {
        let mut arena = Arena::new();
        let mut buf = TupleBuffer::new(8);
        for i in [3u64, 1, 2] {
            let r = buf.alloc_row(&mut arena);
            write_u64(r, i);
        }
        let before: Vec<u64> = (0..3).map(|i| buf.row(i)).collect();
        let mut rows = buf.take_rows();
        rows.sort_by_key(|&addr| {
            // SAFETY: live rows.
            unsafe { std::ptr::read_unaligned(addr as *const u64) }
        });
        buf.put_back(rows);
        let keys: Vec<u64> = (0..3)
            .map(|i| u64::from_le_bytes(buf.row_bytes(i)[0..8].try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
        // Same addresses, different order.
        let mut after: Vec<u64> = (0..3).map(|i| buf.row(i)).collect();
        after.sort_unstable();
        let mut before_sorted = before;
        before_sorted.sort_unstable();
        assert_eq!(after, before_sorted);
    }
}
