//! Property tests for runtime semantics: 128-bit checked arithmetic,
//! string layout, and hash agreement between runtime and generated-code
//! sequences.

use proptest::prelude::*;
use qc_runtime::{hash_u64, long_mul_fold, rtfn, RtString, RuntimeState};
use qc_target::{crc32c_u64, Trap};

fn no_cb() -> impl FnMut(&mut RuntimeState, u64, &[u64]) -> Result<u64, Trap> {
    |_, _, _| Err(Trap::Runtime(9))
}

fn parts(v: i128) -> [u64; 2] {
    [v as u64, ((v as u128) >> 64) as u64]
}

proptest! {
    #[test]
    fn mul128_matches_checked_semantics(a in any::<i128>(), b in any::<i128>()) {
        let mut st = RuntimeState::new();
        let (pa, pb) = (parts(a), parts(b));
        let r = st.invoke(rtfn::MUL128_OVF, &[pa[0], pa[1], pb[0], pb[1]], &mut no_cb());
        match a.checked_mul(b) {
            Some(p) => prop_assert_eq!(r, Ok(parts(p))),
            None => prop_assert_eq!(r, Err(Trap::Overflow)),
        }
    }

    #[test]
    fn div128_matches_checked_semantics(a in any::<i128>(), b in any::<i128>()) {
        let mut st = RuntimeState::new();
        let (pa, pb) = (parts(a), parts(b));
        let r = st.invoke(rtfn::I128_DIV, &[pa[0], pa[1], pb[0], pb[1]], &mut no_cb());
        if b == 0 {
            prop_assert_eq!(r, Err(Trap::DivByZero));
        } else if a == i128::MIN && b == -1 {
            prop_assert_eq!(r, Err(Trap::Overflow));
        } else {
            prop_assert_eq!(r, Ok(parts(a / b)));
        }
    }

    #[test]
    fn string_layout_roundtrips(s in "[ -~]{0,40}") {
        let mut st = RuntimeState::new();
        let r = st.intern_string(&s);
        prop_assert_eq!(r.len(), s.len());
        prop_assert_eq!(r.as_slice(), s.as_bytes());
        // Small-string boundary: ≤ 12 bytes inline.
        if s.len() <= RtString::INLINE_LEN {
            let copy = RtString::from_parts(r.lo, r.hi);
            prop_assert_eq!(copy.as_slice(), s.as_bytes());
        }
        // Equality through the runtime call interface.
        let r2 = st.intern_string(&s);
        let eq = st
            .invoke(rtfn::STR_EQ, &[r.lo, r.hi, r2.lo, r2.hi], &mut no_cb())
            .expect("eq");
        prop_assert_eq!(eq[0], 1);
    }

    #[test]
    fn hash_matches_generated_sequence(x in any::<u64>()) {
        // hash_u64 must equal the crc32-based sequence that codegen
        // inlines (Listing 2): two seeded crc32 steps combined.
        let a = crc32c_u64(qc_runtime::HASH_SEED1, x);
        let b = crc32c_u64(qc_runtime::HASH_SEED2, x);
        prop_assert_eq!(hash_u64(x), a | (b << 32));
    }

    #[test]
    fn long_mul_fold_is_symmetric_in_magnitude(a in any::<u64>(), b in any::<u64>()) {
        // lmf(a,b) == lmf(b,a): multiplication commutes.
        prop_assert_eq!(long_mul_fold(a, b), long_mul_fold(b, a));
    }

    #[test]
    fn helper_arith_matches_native(a in any::<i64>(), b in any::<i64>()) {
        // The Table II helper calls must trap exactly when the native
        // instructions trap.
        let mut st = RuntimeState::new();
        let add = st.invoke(rtfn::SADD_OVF, &[a as u64, b as u64], &mut no_cb());
        match a.checked_add(b) {
            Some(r) => prop_assert_eq!(add, Ok([r as u64, 0])),
            None => prop_assert_eq!(add, Err(Trap::Overflow)),
        }
        let mul = st.invoke(rtfn::SMUL_OVF, &[a as u64, b as u64], &mut no_cb());
        match a.checked_mul(b) {
            Some(r) => prop_assert_eq!(mul, Ok([r as u64, 0])),
            None => prop_assert_eq!(mul, Err(Trap::Overflow)),
        }
    }
}
