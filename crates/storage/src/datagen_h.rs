//! TPC-H-shaped synthetic data generator.
//!
//! Not TPC-H (the specification and dbgen are licensed); a synthetic
//! workload with the same structural properties: a large fact table
//! (`lineitem`) with decimals, dates and flag strings; `orders` →
//! `customer` and `part`/`supplier` dimension chains; foreign keys
//! distributed so joins have realistic hit rates. Scale factor `sf=1`
//! produces 6000 lineitem rows (scaled 1:1000 versus real TPC-H so the
//! emulated execution stays tractable; the compile-time side is unaffected
//! by data size).

use crate::schema::{ColumnType, Schema};
use crate::table::{Column, Database, Table};
use qc_runtime::RtString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names of the generated TPC-H-like tables.
pub const H_TABLES: [&str; 7] = [
    "lineitem", "orders", "customer", "part", "supplier", "nation", "region",
];

const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const LINE_STATUS: [&str; 2] = ["O", "F"];
const SHIP_MODES: [&str; 7] = ["AIR", "SHIP", "TRUCK", "MAIL", "RAIL", "REG AIR", "FOB"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 6] = [
    "STANDARD BRASS",
    "SMALL PLATED",
    "MEDIUM ANODIZED",
    "LARGE BURNISHED",
    "ECONOMY POLISHED",
    "PROMO BRUSHED",
];
const CONTAINERS: [&str; 4] = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG"];
const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn strs(db: &mut Database, values: Vec<String>) -> Column {
    Column::Str(
        values
            .iter()
            .map(|s| RtString::new(s, &mut db.string_arena))
            .collect(),
    )
}

/// Generates all TPC-H-like tables at scale factor `sf` into a fresh
/// [`Database`]. Deterministic for a given `sf`.
pub fn gen_hlike(sf: f64) -> Database {
    let mut db = Database::new();
    let n_lineitem = (6000.0 * sf).max(60.0) as usize;
    let n_orders = (n_lineitem / 4).max(16);
    let n_customer = (n_orders / 10).max(8);
    let n_part = (n_lineitem / 30).max(8);
    let n_supplier = (n_part / 10).max(4);

    // region / nation
    let __strcol1 = strs(&mut db, REGIONS.iter().map(|s| s.to_string()).collect());
    db.add_table(Table::new(
        "region",
        Schema::new(vec![
            ("r_regionkey", ColumnType::I64),
            ("r_name", ColumnType::Str),
        ]),
        vec![Column::I64((0..5).collect()), __strcol1],
    ));
    let mut rng = StdRng::seed_from_u64(0x4e41_5449);
    let n_region: Vec<i64> = (0..25).map(|_| rng.gen_range(0..5)).collect();
    let __strcol2 = strs(&mut db, NATIONS.iter().map(|s| s.to_string()).collect());
    db.add_table(Table::new(
        "nation",
        Schema::new(vec![
            ("n_nationkey", ColumnType::I64),
            ("n_regionkey", ColumnType::I64),
            ("n_name", ColumnType::Str),
        ]),
        vec![
            Column::I64((0..25).collect()),
            Column::I64(n_region),
            __strcol2,
        ],
    ));

    // supplier
    let mut rng = StdRng::seed_from_u64(0x5355_5050);
    let s_nation: Vec<i64> = (0..n_supplier).map(|_| rng.gen_range(0..25)).collect();
    let s_bal: Vec<i128> = (0..n_supplier)
        .map(|_| rng.gen_range(-99_999..999_999))
        .collect();
    let s_names: Vec<String> = (0..n_supplier)
        .map(|i| format!("Supplier#{i:09}"))
        .collect();
    let __strcol3 = strs(&mut db, s_names);
    db.add_table(Table::new(
        "supplier",
        Schema::new(vec![
            ("s_suppkey", ColumnType::I64),
            ("s_nationkey", ColumnType::I64),
            ("s_acctbal", ColumnType::Decimal(2)),
            ("s_name", ColumnType::Str),
        ]),
        vec![
            Column::I64((0..n_supplier as i64).collect()),
            Column::I64(s_nation),
            Column::Decimal(s_bal),
            __strcol3,
        ],
    ));

    // part
    let mut rng = StdRng::seed_from_u64(0x5041_5254);
    let p_size: Vec<i32> = (0..n_part).map(|_| rng.gen_range(1..=50)).collect();
    let p_retail: Vec<i128> = (0..n_part)
        .map(|_| rng.gen_range(90_000..200_000))
        .collect();
    let p_brand: Vec<String> = (0..n_part)
        .map(|_| pick(&mut rng, &BRANDS).to_string())
        .collect();
    let p_type: Vec<String> = (0..n_part)
        .map(|_| pick(&mut rng, &TYPES).to_string())
        .collect();
    let p_container: Vec<String> = (0..n_part)
        .map(|_| pick(&mut rng, &CONTAINERS).to_string())
        .collect();
    let p_name: Vec<String> = (0..n_part)
        .map(|i| {
            format!(
                "part {} {}",
                i,
                pick(&mut rng, &["olive", "misty", "navy", "hot"])
            )
        })
        .collect();
    let __strcol4 = strs(&mut db, p_brand);
    let __strcol5 = strs(&mut db, p_type);
    let __strcol6 = strs(&mut db, p_container);
    let __strcol7 = strs(&mut db, p_name);
    db.add_table(Table::new(
        "part",
        Schema::new(vec![
            ("p_partkey", ColumnType::I64),
            ("p_size", ColumnType::I32),
            ("p_retailprice", ColumnType::Decimal(2)),
            ("p_brand", ColumnType::Str),
            ("p_type", ColumnType::Str),
            ("p_container", ColumnType::Str),
            ("p_name", ColumnType::Str),
        ]),
        vec![
            Column::I64((0..n_part as i64).collect()),
            Column::I32(p_size),
            Column::Decimal(p_retail),
            __strcol4,
            __strcol5,
            __strcol6,
            __strcol7,
        ],
    ));

    // customer
    let mut rng = StdRng::seed_from_u64(0x4355_5354);
    let c_nation: Vec<i64> = (0..n_customer).map(|_| rng.gen_range(0..25)).collect();
    let c_bal: Vec<i128> = (0..n_customer)
        .map(|_| rng.gen_range(-99_999..999_999))
        .collect();
    let c_seg: Vec<String> = (0..n_customer)
        .map(|_| pick(&mut rng, &SEGMENTS).to_string())
        .collect();
    let c_name: Vec<String> = (0..n_customer)
        .map(|i| format!("Customer#{i:09}"))
        .collect();
    let __strcol8 = strs(&mut db, c_seg);
    let __strcol9 = strs(&mut db, c_name);
    db.add_table(Table::new(
        "customer",
        Schema::new(vec![
            ("c_custkey", ColumnType::I64),
            ("c_nationkey", ColumnType::I64),
            ("c_acctbal", ColumnType::Decimal(2)),
            ("c_mktsegment", ColumnType::Str),
            ("c_name", ColumnType::Str),
        ]),
        vec![
            Column::I64((0..n_customer as i64).collect()),
            Column::I64(c_nation),
            Column::Decimal(c_bal),
            __strcol8,
            __strcol9,
        ],
    ));

    // orders
    let mut rng = StdRng::seed_from_u64(0x4f52_4445);
    let o_cust: Vec<i64> = (0..n_orders)
        .map(|_| rng.gen_range(0..n_customer as i64))
        .collect();
    let o_total: Vec<i128> = (0..n_orders)
        .map(|_| rng.gen_range(100_000..40_000_000))
        .collect();
    let o_date: Vec<i32> = (0..n_orders).map(|_| rng.gen_range(8000..10400)).collect();
    let o_status: Vec<String> = (0..n_orders)
        .map(|_| pick(&mut rng, &["O", "F", "P"]).to_string())
        .collect();
    let o_prio: Vec<String> = (0..n_orders)
        .map(|_| pick(&mut rng, &PRIORITIES).to_string())
        .collect();
    let o_ship: Vec<i32> = (0..n_orders).map(|_| rng.gen_range(0..2)).collect();
    let __strcol10 = strs(&mut db, o_status);
    let __strcol11 = strs(&mut db, o_prio);
    db.add_table(Table::new(
        "orders",
        Schema::new(vec![
            ("o_orderkey", ColumnType::I64),
            ("o_custkey", ColumnType::I64),
            ("o_totalprice", ColumnType::Decimal(2)),
            ("o_orderdate", ColumnType::Date),
            ("o_orderstatus", ColumnType::Str),
            ("o_orderpriority", ColumnType::Str),
            ("o_shippriority", ColumnType::I32),
        ]),
        vec![
            Column::I64((0..n_orders as i64).collect()),
            Column::I64(o_cust),
            Column::Decimal(o_total),
            Column::Date(o_date),
            __strcol10,
            __strcol11,
            Column::I32(o_ship),
        ],
    ));

    // lineitem
    let mut rng = StdRng::seed_from_u64(0x4c49_4e45);
    let mut l_order = Vec::with_capacity(n_lineitem);
    let mut l_part = Vec::with_capacity(n_lineitem);
    let mut l_supp = Vec::with_capacity(n_lineitem);
    let mut l_qty = Vec::with_capacity(n_lineitem);
    let mut l_price = Vec::with_capacity(n_lineitem);
    let mut l_disc = Vec::with_capacity(n_lineitem);
    let mut l_tax = Vec::with_capacity(n_lineitem);
    let mut l_ship = Vec::with_capacity(n_lineitem);
    let mut l_commit = Vec::with_capacity(n_lineitem);
    let mut l_receipt = Vec::with_capacity(n_lineitem);
    let mut l_rflag = Vec::with_capacity(n_lineitem);
    let mut l_status = Vec::with_capacity(n_lineitem);
    let mut l_mode = Vec::with_capacity(n_lineitem);
    for _ in 0..n_lineitem {
        l_order.push(rng.gen_range(0..n_orders as i64));
        l_part.push(rng.gen_range(0..n_part as i64));
        l_supp.push(rng.gen_range(0..n_supplier as i64));
        l_qty.push(rng.gen_range(100i128..5000)); // 1.00 .. 50.00
        l_price.push(rng.gen_range(90_000i128..10_500_000));
        l_disc.push(rng.gen_range(0i128..=10)); // 0.00 .. 0.10
        l_tax.push(rng.gen_range(0i128..=8));
        let ship = rng.gen_range(8000..10500);
        l_ship.push(ship);
        l_commit.push(ship + rng.gen_range(-30..60));
        l_receipt.push(ship + rng.gen_range(1..30));
        l_rflag.push(pick(&mut rng, &RETURN_FLAGS).to_string());
        l_status.push(pick(&mut rng, &LINE_STATUS).to_string());
        l_mode.push(pick(&mut rng, &SHIP_MODES).to_string());
    }
    let __strcol12 = strs(&mut db, l_rflag);
    let __strcol13 = strs(&mut db, l_status);
    let __strcol14 = strs(&mut db, l_mode);
    db.add_table(Table::new(
        "lineitem",
        Schema::new(vec![
            ("l_orderkey", ColumnType::I64),
            ("l_partkey", ColumnType::I64),
            ("l_suppkey", ColumnType::I64),
            ("l_quantity", ColumnType::Decimal(2)),
            ("l_extendedprice", ColumnType::Decimal(2)),
            ("l_discount", ColumnType::Decimal(2)),
            ("l_tax", ColumnType::Decimal(2)),
            ("l_shipdate", ColumnType::Date),
            ("l_commitdate", ColumnType::Date),
            ("l_receiptdate", ColumnType::Date),
            ("l_returnflag", ColumnType::Str),
            ("l_linestatus", ColumnType::Str),
            ("l_shipmode", ColumnType::Str),
        ]),
        vec![
            Column::I64(l_order),
            Column::I64(l_part),
            Column::I64(l_supp),
            Column::Decimal(l_qty),
            Column::Decimal(l_price),
            Column::Decimal(l_disc),
            Column::Decimal(l_tax),
            Column::Date(l_ship),
            Column::Date(l_commit),
            Column::Date(l_receipt),
            __strcol12,
            __strcol13,
            __strcol14,
        ],
    ));

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_tables_with_consistent_keys() {
        let db = gen_hlike(0.1);
        for t in H_TABLES {
            assert!(db.table(t).is_some(), "missing {t}");
        }
        let li = db.table("lineitem").unwrap();
        let orders = db.table("orders").unwrap();
        assert!(li.row_count() >= 60);
        // Foreign keys land inside the referenced table.
        if let Column::I64(keys) = li.column_by_name("l_orderkey") {
            assert!(keys.iter().all(|&k| (k as usize) < orders.row_count()));
        } else {
            panic!("wrong column type");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_hlike(0.05);
        let b = gen_hlike(0.05);
        let (ta, tb) = (a.table("lineitem").unwrap(), b.table("lineitem").unwrap());
        assert_eq!(ta.row_count(), tb.row_count());
        if let (Column::Decimal(x), Column::Decimal(y)) = (
            ta.column_by_name("l_extendedprice"),
            tb.column_by_name("l_extendedprice"),
        ) {
            assert_eq!(x, y);
        } else {
            panic!("wrong column type");
        }
    }

    #[test]
    fn scale_factor_scales_fact_table() {
        let small = gen_hlike(0.05);
        let large = gen_hlike(0.5);
        assert!(
            large.table("lineitem").unwrap().row_count()
                > 5 * small.table("lineitem").unwrap().row_count()
        );
    }
}
