//! Columnar tables.

use crate::schema::{ColumnType, Schema};
use qc_runtime::{Arena, RtString, SqlValue};
use std::collections::HashMap;

/// One columnar array.
///
/// The enum variant must match the schema's [`ColumnType`]. Data is stored
/// in plain vectors whose base addresses are handed to generated code, so
/// a table must not be mutated while compiled queries run.
#[derive(Debug)]
pub enum Column {
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 128-bit decimals.
    Decimal(Vec<i128>),
    /// Floats.
    F64(Vec<f64>),
    /// Dates (days since epoch).
    Date(Vec<i32>),
    /// Strings.
    Str(Vec<RtString>),
    /// Booleans (0/1 bytes).
    Bool(Vec<u8>),
}

impl Column {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Column::I32(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Decimal(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base address of the columnar array.
    pub fn base_addr(&self) -> u64 {
        match self {
            Column::I32(v) => v.as_ptr() as u64,
            Column::I64(v) => v.as_ptr() as u64,
            Column::Decimal(v) => v.as_ptr() as u64,
            Column::F64(v) => v.as_ptr() as u64,
            Column::Date(v) => v.as_ptr() as u64,
            Column::Str(v) => v.as_ptr() as u64,
            Column::Bool(v) => v.as_ptr() as u64,
        }
    }

    /// Decodes element `i` (for tests and result checking).
    pub fn value(&self, i: usize, ty: ColumnType) -> SqlValue {
        match (self, ty) {
            (Column::I32(v), _) => SqlValue::I32(v[i]),
            (Column::I64(v), _) => SqlValue::I64(v[i]),
            (Column::Decimal(v), ColumnType::Decimal(s)) => SqlValue::Decimal(v[i], s),
            (Column::Decimal(v), _) => SqlValue::Decimal(v[i], 0),
            (Column::F64(v), _) => SqlValue::F64(v[i]),
            (Column::Date(v), _) => SqlValue::I32(v[i]),
            (Column::Str(v), _) => {
                SqlValue::Str(String::from_utf8_lossy(v[i].as_slice()).into_owned())
            }
            (Column::Bool(v), _) => SqlValue::Bool(v[i] != 0),
        }
    }
}

/// A morsel: a contiguous row range processed as one unit
/// ("morsel-driven parallelism", paper Sec. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row index.
    pub start: u64,
    /// Number of rows.
    pub count: u64,
}

/// A columnar table.
#[derive(Debug)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates a table from a schema and matching columns.
    ///
    /// # Panics
    /// Panics if column count or lengths are inconsistent with the schema.
    pub fn new(name: &str, schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(schema.len(), columns.len(), "column count mismatch");
        let rows = columns.first().map_or(0, Column::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), rows, "column {i} length mismatch");
        }
        Table {
            name: name.to_string(),
            schema,
            columns,
            rows,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    ///
    /// # Panics
    /// Panics when the column does not exist.
    pub fn column_by_name(&self, name: &str) -> &Column {
        self.try_column_by_name(name)
            .unwrap_or_else(|| panic!("no column `{name}` in `{}`", self.name))
    }

    /// Non-panicking [`Table::column_by_name`], for execution paths
    /// that must degrade gracefully when the schema changed under a
    /// prepared query.
    pub fn try_column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Splits the table into morsels of at most `size` rows.
    ///
    /// An empty table yields an empty vector — consumers that drive a
    /// per-morsel loop simply run zero iterations, which matches the
    /// engine's `while start < total` scan loop. Use
    /// [`Table::morsels_covering`] when at least one morsel is required.
    ///
    /// # Panics
    /// Panics when `size` is zero.
    pub fn morsels(&self, size: usize) -> Vec<Morsel> {
        assert!(size > 0, "morsel size must be positive");
        let mut out = Vec::with_capacity(self.rows.div_ceil(size));
        let mut start = 0usize;
        while start < self.rows {
            let count = size.min(self.rows - start);
            out.push(Morsel {
                start: start as u64,
                count: count as u64,
            });
            start += count;
        }
        out
    }

    /// Like [`Table::morsels`], but guarantees at least one morsel: an
    /// empty table yields the degenerate `Morsel { start: 0, count: 0 }`.
    /// For pipelines whose generated `main` must run at least once even
    /// over zero rows (e.g. to observe a trap deterministically).
    pub fn morsels_covering(&self, size: usize) -> Vec<Morsel> {
        let mut out = self.morsels(size);
        if out.is_empty() {
            out.push(Morsel { start: 0, count: 0 });
        }
        out
    }
}

/// A set of named tables plus the arena owning long string data.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    /// Arena owning long string payloads referenced by string columns.
    pub string_arena: Arena,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, replacing any previous one with the same name.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            ("k", ColumnType::I64),
            ("v", ColumnType::Decimal(2)),
            ("f", ColumnType::Bool),
        ]);
        Table::new(
            "t",
            schema,
            vec![
                Column::I64(vec![1, 2, 3]),
                Column::Decimal(vec![100, 200, 300]),
                Column::Bool(vec![1, 0, 1]),
            ],
        )
    }

    #[test]
    fn base_addresses_point_at_data() {
        let t = small_table();
        let addr = t.column_by_name("k").base_addr();
        // SAFETY: reading the live column data.
        let first = unsafe { std::ptr::read(addr as *const i64) };
        assert_eq!(first, 1);
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn morsel_decomposition_covers_all_rows() {
        let t = small_table();
        let ms = t.morsels(2);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0], Morsel { start: 0, count: 2 });
        assert_eq!(ms[1], Morsel { start: 2, count: 1 });
        let total: u64 = ms.iter().map(|m| m.count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_table_yields_no_morsels_unless_covering() {
        let schema = Schema::new(vec![("k", ColumnType::I64)]);
        let t = Table::new("empty", schema, vec![Column::I64(vec![])]);
        assert!(t.morsels(1024).is_empty());
        assert_eq!(
            t.morsels_covering(1024),
            vec![Morsel { start: 0, count: 0 }]
        );
    }

    #[test]
    fn value_decoding() {
        let t = small_table();
        assert_eq!(
            t.column(1).value(1, ColumnType::Decimal(2)),
            SqlValue::Decimal(200, 2)
        );
        assert_eq!(t.column(2).value(0, ColumnType::Bool), SqlValue::Bool(true));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn inconsistent_columns_panic() {
        let schema = Schema::new(vec![("a", ColumnType::I64), ("b", ColumnType::I64)]);
        Table::new(
            "bad",
            schema,
            vec![Column::I64(vec![1]), Column::I64(vec![1, 2])],
        );
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new();
        db.add_table(small_table());
        assert!(db.table("t").is_some());
        assert!(db.table("missing").is_none());
        assert_eq!(db.table_names(), vec!["t"]);
    }
}
