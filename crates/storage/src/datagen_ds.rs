//! TPC-DS-shaped synthetic data generator.
//!
//! Same substitution rationale as [`crate::gen_hlike`]: three sales fact
//! tables (store/catalog/web) sharing dimension tables (`date_dim`,
//! `item`, `customer_ds`, `store`, `promotion`), decimals for money
//! columns, and low-cardinality category strings — the column mix that
//! drives the 103-query DS-like suite.

use crate::schema::{ColumnType, Schema};
use crate::table::{Column, Database, Table};
use qc_runtime::RtString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names of the generated TPC-DS-like tables.
pub const DS_TABLES: [&str; 8] = [
    "store_sales",
    "catalog_sales",
    "web_sales",
    "date_dim",
    "item",
    "customer_ds",
    "store",
    "promotion",
];

const CATEGORIES: [&str; 10] = [
    "Books",
    "Electronics",
    "Home",
    "Jewelry",
    "Men",
    "Music",
    "Shoes",
    "Sports",
    "Children",
    "Women",
];
const CLASSES: [&str; 6] = [
    "accent",
    "classical",
    "portable",
    "fragrance",
    "athletic",
    "reference",
];
const STATES: [&str; 8] = ["TN", "CA", "TX", "NY", "WA", "GA", "OH", "IL"];
const CHANNELS: [&str; 2] = ["Y", "N"];

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn strs(db: &mut Database, values: Vec<String>) -> Column {
    Column::Str(
        values
            .iter()
            .map(|s| RtString::new(s, &mut db.string_arena))
            .collect(),
    )
}

fn sales_table(db: &mut Database, name: &str, prefix: &str, rows: usize, seed: u64, dims: &Dims) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut item = Vec::with_capacity(rows);
    let mut cust = Vec::with_capacity(rows);
    let mut store = Vec::with_capacity(rows);
    let mut date = Vec::with_capacity(rows);
    let mut promo = Vec::with_capacity(rows);
    let mut qty = Vec::with_capacity(rows);
    let mut price = Vec::with_capacity(rows);
    let mut ext = Vec::with_capacity(rows);
    let mut cost = Vec::with_capacity(rows);
    let mut profit = Vec::with_capacity(rows);
    for _ in 0..rows {
        item.push(rng.gen_range(0..dims.items as i64));
        cust.push(rng.gen_range(0..dims.customers as i64));
        store.push(rng.gen_range(0..dims.stores as i64));
        date.push(rng.gen_range(0..dims.dates as i64));
        promo.push(rng.gen_range(0..dims.promos as i64));
        let q = rng.gen_range(1..100i32);
        qty.push(q);
        let p: i128 = rng.gen_range(100..30_000);
        price.push(p);
        ext.push(p * q as i128);
        let c: i128 = rng.gen_range(50..(p).max(51));
        cost.push(c);
        profit.push((p - c) * q as i128);
    }
    let col = |n: &str| format!("{prefix}_{n}");
    db.add_table(Table::new(
        name,
        Schema::new(vec![
            (&col("item_sk"), ColumnType::I64),
            (&col("customer_sk"), ColumnType::I64),
            (&col("store_sk"), ColumnType::I64),
            (&col("sold_date_sk"), ColumnType::I64),
            (&col("promo_sk"), ColumnType::I64),
            (&col("quantity"), ColumnType::I32),
            (&col("sales_price"), ColumnType::Decimal(2)),
            (&col("ext_sales_price"), ColumnType::Decimal(2)),
            (&col("wholesale_cost"), ColumnType::Decimal(2)),
            (&col("net_profit"), ColumnType::Decimal(2)),
        ]),
        vec![
            Column::I64(item),
            Column::I64(cust),
            Column::I64(store),
            Column::I64(date),
            Column::I64(promo),
            Column::I32(qty),
            Column::Decimal(price),
            Column::Decimal(ext),
            Column::Decimal(cost),
            Column::Decimal(profit),
        ],
    ));
}

struct Dims {
    items: usize,
    customers: usize,
    stores: usize,
    dates: usize,
    promos: usize,
}

/// Generates all TPC-DS-like tables at scale factor `sf` (deterministic).
/// `sf=1` produces 6000 `store_sales` rows (scaled 1:480 versus real
/// TPC-DS sf=1, keeping emulated execution tractable).
pub fn gen_dslike(sf: f64) -> Database {
    let mut db = Database::new();
    let n_ss = (6000.0 * sf).max(60.0) as usize;
    let dims = Dims {
        items: (n_ss / 20).clamp(16, 4000),
        customers: (n_ss / 10).clamp(16, 8000),
        stores: 20,
        dates: 2192, // six years of days
        promos: 50,
    };

    // date_dim: consecutive days starting at day 7300 (year 0 = "1998").
    let d_sk: Vec<i64> = (0..dims.dates as i64).collect();
    let d_date: Vec<i32> = (0..dims.dates as i32).map(|i| 7300 + i).collect();
    let d_year: Vec<i32> = (0..dims.dates as i32).map(|i| 1998 + i / 365).collect();
    let d_moy: Vec<i32> = (0..dims.dates as i32).map(|i| (i % 365) / 31 + 1).collect();
    db.add_table(Table::new(
        "date_dim",
        Schema::new(vec![
            ("d_date_sk", ColumnType::I64),
            ("d_date", ColumnType::Date),
            ("d_year", ColumnType::I32),
            ("d_moy", ColumnType::I32),
        ]),
        vec![
            Column::I64(d_sk),
            Column::Date(d_date),
            Column::I32(d_year),
            Column::I32(d_moy),
        ],
    ));

    // item
    let mut rng = StdRng::seed_from_u64(0x4954_454d);
    let i_cat: Vec<String> = (0..dims.items)
        .map(|_| pick(&mut rng, &CATEGORIES).to_string())
        .collect();
    let i_class: Vec<String> = (0..dims.items)
        .map(|_| pick(&mut rng, &CLASSES).to_string())
        .collect();
    let i_brand: Vec<String> = (0..dims.items)
        .map(|_| format!("corpbrand #{}", rng.gen_range(1..20)))
        .collect();
    let i_price: Vec<i128> = (0..dims.items).map(|_| rng.gen_range(99..9_999)).collect();
    let __strcol1 = strs(&mut db, i_cat);
    let __strcol2 = strs(&mut db, i_class);
    let __strcol3 = strs(&mut db, i_brand);
    db.add_table(Table::new(
        "item",
        Schema::new(vec![
            ("i_item_sk", ColumnType::I64),
            ("i_current_price", ColumnType::Decimal(2)),
            ("i_category", ColumnType::Str),
            ("i_class", ColumnType::Str),
            ("i_brand", ColumnType::Str),
        ]),
        vec![
            Column::I64((0..dims.items as i64).collect()),
            Column::Decimal(i_price),
            __strcol1,
            __strcol2,
            __strcol3,
        ],
    ));

    // customer_ds
    let mut rng = StdRng::seed_from_u64(0x4344_5343);
    let c_birth: Vec<i32> = (0..dims.customers)
        .map(|_| rng.gen_range(1930..2000))
        .collect();
    let c_pref: Vec<u8> = (0..dims.customers).map(|_| rng.gen_range(0..2)).collect();
    db.add_table(Table::new(
        "customer_ds",
        Schema::new(vec![
            ("c_customer_sk", ColumnType::I64),
            ("c_birth_year", ColumnType::I32),
            ("c_preferred", ColumnType::Bool),
        ]),
        vec![
            Column::I64((0..dims.customers as i64).collect()),
            Column::I32(c_birth),
            Column::Bool(c_pref),
        ],
    ));

    // store
    let mut rng = StdRng::seed_from_u64(0x5354_4f52);
    let s_state: Vec<String> = (0..dims.stores)
        .map(|_| pick(&mut rng, &STATES).to_string())
        .collect();
    let __strcol4 = strs(&mut db, s_state);
    db.add_table(Table::new(
        "store",
        Schema::new(vec![
            ("s_store_sk", ColumnType::I64),
            ("s_state", ColumnType::Str),
        ]),
        vec![Column::I64((0..dims.stores as i64).collect()), __strcol4],
    ));

    // promotion
    let mut rng = StdRng::seed_from_u64(0x5052_4f4d);
    let p_email: Vec<String> = (0..dims.promos)
        .map(|_| pick(&mut rng, &CHANNELS).to_string())
        .collect();
    let __strcol5 = strs(&mut db, p_email);
    db.add_table(Table::new(
        "promotion",
        Schema::new(vec![
            ("p_promo_sk", ColumnType::I64),
            ("p_channel_email", ColumnType::Str),
        ]),
        vec![Column::I64((0..dims.promos as i64).collect()), __strcol5],
    ));

    sales_table(&mut db, "store_sales", "ss", n_ss, 0x5353_0001, &dims);
    sales_table(&mut db, "catalog_sales", "cs", n_ss / 2, 0x4353_0002, &dims);
    sales_table(&mut db, "web_sales", "ws", n_ss / 4, 0x5753_0003, &dims);

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_tables() {
        let db = gen_dslike(0.1);
        for t in DS_TABLES {
            assert!(db.table(t).is_some(), "missing {t}");
        }
        assert_eq!(
            db.table("catalog_sales").unwrap().row_count(),
            db.table("store_sales").unwrap().row_count() / 2
        );
    }

    #[test]
    fn foreign_keys_stay_in_range() {
        let db = gen_dslike(0.1);
        let ss = db.table("store_sales").unwrap();
        let items = db.table("item").unwrap().row_count() as i64;
        if let Column::I64(keys) = ss.column_by_name("ss_item_sk") {
            assert!(keys.iter().all(|&k| k < items && k >= 0));
        } else {
            panic!("wrong column type");
        }
    }

    #[test]
    fn ext_price_is_quantity_times_price() {
        let db = gen_dslike(0.05);
        let ss = db.table("store_sales").unwrap();
        let (Column::I32(q), Column::Decimal(p), Column::Decimal(e)) = (
            ss.column_by_name("ss_quantity"),
            ss.column_by_name("ss_sales_price"),
            ss.column_by_name("ss_ext_sales_price"),
        ) else {
            panic!("wrong column types");
        };
        for i in 0..ss.row_count() {
            assert_eq!(e[i], p[i] * q[i] as i128);
        }
    }
}
