//! Columnar storage and synthetic benchmark data.
//!
//! The paper evaluates on TPC-H and TPC-DS. Those generators and query
//! sets are license-encumbered, so this crate provides synthetic
//! *shape-compatible* substitutes (see DESIGN.md): schemas with the same
//! column-type mix (64-bit keys, 128-bit decimals, dates, low-cardinality
//! flag strings, free-form strings), seeded deterministic generation, and
//! scale factors that control row counts the same way.
//!
//! Tables are plain columnar arrays. Generated query code receives raw
//! column base addresses and operates on them directly; rows are
//! identified by index ("morsel-driven" ranges, paper Sec. II).

mod datagen_ds;
mod datagen_h;
mod schema;
mod table;

pub use datagen_ds::{gen_dslike, DS_TABLES};
pub use datagen_h::{gen_hlike, H_TABLES};
pub use schema::{ColumnType, Schema};
pub use table::{Column, Database, Morsel, Table};
