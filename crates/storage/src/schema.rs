//! Table schemas.

use std::fmt;

/// The storage type of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer (keys).
    I64,
    /// 128-bit decimal with the given scale (fractional digits).
    Decimal(u8),
    /// Double-precision float.
    F64,
    /// Date as days since epoch (stored as `i32`).
    Date,
    /// 16-byte string descriptor.
    Str,
    /// Boolean (one byte).
    Bool,
}

impl ColumnType {
    /// Size of one element in the columnar array, in bytes.
    pub fn elem_size(self) -> usize {
        match self {
            ColumnType::I32 | ColumnType::Date => 4,
            ColumnType::I64 | ColumnType::F64 => 8,
            ColumnType::Decimal(_) => 16,
            ColumnType::Str => 16,
            ColumnType::Bool => 1,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::I32 => write!(f, "i32"),
            ColumnType::I64 => write!(f, "i64"),
            ColumnType::Decimal(s) => write!(f, "decimal({s})"),
            ColumnType::F64 => write!(f, "f64"),
            ColumnType::Date => write!(f, "date"),
            ColumnType::Str => write!(f, "str"),
            ColumnType::Bool => write!(f, "bool"),
        }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        Schema {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column name and type by position.
    pub fn column(&self, i: usize) -> (&str, ColumnType) {
        let (n, t) = &self.columns[i];
        (n, *t)
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Iterator over `(name, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ColumnType)> {
        self.columns.iter().map(|(n, t)| (n.as_str(), *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(ColumnType::I32.elem_size(), 4);
        assert_eq!(ColumnType::Decimal(2).elem_size(), 16);
        assert_eq!(ColumnType::Str.elem_size(), 16);
        assert_eq!(ColumnType::Bool.elem_size(), 1);
        assert_eq!(ColumnType::Date.elem_size(), 4);
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![("a", ColumnType::I64), ("b", ColumnType::Str)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("c"), None);
        assert_eq!(s.column(0).0, "a");
    }
}
