//! CIR: the Cranelift-analog intermediate representation.
//!
//! Mirrors the paper's description (Sec. VI): a small type set (scalar
//! ints up to 128 bits, f64), **no pointer or aggregate types** (the
//! front-end lowers `getelementptr` to integer arithmetic and strings to
//! pairs of `i64`), block parameters instead of Φ-nodes, fixed-size
//! instruction records in one contiguous array with an array-backed linked
//! list for instruction order, and hard-wired addresses for external
//! (runtime) calls.

use qc_backend::BackendError;
use qc_ir as qir;
use qc_ir::{CastOp, CmpOp, InstData, Opcode};
use qc_runtime::resolve_runtime;
use std::collections::HashMap;

/// CIR value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CTy {
    /// 8-bit integer (also used for booleans).
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer (also addresses).
    I64,
    /// 128-bit integer.
    I128,
    /// 64-bit float.
    F64,
}

/// A CIR value id.
pub type CVal = u32;
/// A CIR block id.
pub type CBlock = u32;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CBinOp {
    /// Wrapping add.
    Iadd,
    /// Wrapping subtract.
    Isub,
    /// Wrapping multiply.
    Imul,
    /// High half of unsigned 64×64 multiply.
    UMulHi,
    /// Signed division (traps).
    Sdiv,
    /// Unsigned division (traps).
    Udiv,
    /// Signed remainder.
    Srem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise and/or/xor.
    Band,
    /// Bitwise or.
    Bor,
    /// Bitwise xor.
    Bxor,
    /// Shift left.
    Ishl,
    /// Logical shift right.
    Ushr,
    /// Arithmetic shift right.
    Sshr,
    /// Rotate right.
    Rotr,
    /// Trapping signed add (extension instruction, Table II).
    SaddTrap,
    /// Trapping signed subtract (extension instruction).
    SsubTrap,
    /// Trapping signed multiply (extension instruction).
    SmulTrap,
    /// Float add/sub/mul/div.
    Fadd,
    /// Float subtract.
    Fsub,
    /// Float multiply.
    Fmul,
    /// Float divide.
    Fdiv,
}

/// One CIR instruction (fixed-size record).
#[derive(Debug, Clone)]
pub enum CInst {
    /// Integer constant.
    Iconst {
        /// Value bits.
        imm: i128,
    },
    /// Float constant.
    Fconst {
        /// Value.
        imm: f64,
    },
    /// Binary operation (typed by its result value).
    Bin {
        /// Operator.
        op: CBinOp,
        /// Operands.
        args: [CVal; 2],
    },
    /// Integer comparison (result `i8`).
    Icmp {
        /// Predicate.
        cond: CmpOp,
        /// Operands.
        args: [CVal; 2],
    },
    /// Float comparison (result `i8`).
    Fcmp {
        /// Predicate.
        cond: CmpOp,
        /// Operands.
        args: [CVal; 2],
    },
    /// Conditional select.
    Select {
        /// Condition (`i8`).
        cond: CVal,
        /// Operands.
        args: [CVal; 2],
    },
    /// Memory load (typed by result); addresses are plain `i64`.
    Load {
        /// Address.
        addr: CVal,
        /// Displacement.
        off: i32,
    },
    /// Memory store.
    Store {
        /// Stored type.
        ty: CTy,
        /// Address.
        addr: CVal,
        /// Value.
        val: CVal,
        /// Displacement.
        off: i32,
    },
    /// Sign-extension (typed by result).
    Sext {
        /// Source.
        arg: CVal,
    },
    /// Zero-extension (typed by result).
    Uext {
        /// Source.
        arg: CVal,
    },
    /// Truncation (typed by result).
    Ireduce {
        /// Source.
        arg: CVal,
    },
    /// Signed int to float.
    SiToF {
        /// Source.
        arg: CVal,
    },
    /// Float to signed int (typed by result).
    FToSi {
        /// Source.
        arg: CVal,
    },
    /// CRC-32 step (extension instruction).
    Crc32 {
        /// Accumulator and data.
        args: [CVal; 2],
    },
    /// Call to a hard-wired external address.
    Call {
        /// Absolute callee address (runtime function).
        addr: u64,
        /// Arguments.
        args: Vec<CVal>,
        /// Whether the result is an `i128` pair (vs. one `i64`/none).
        ret: Option<CTy>,
    },
    /// Address of another function in the module (fixup at finish).
    FuncAddr {
        /// Module function index.
        func: usize,
    },
    /// Unconditional jump with block arguments.
    Jump {
        /// Destination.
        dest: CBlock,
        /// Arguments matched to the destination's block params.
        args: Vec<CVal>,
    },
    /// Conditional branch (edges carry no arguments: the translator splits
    /// critical edges with argument-carrying trampoline blocks).
    Brif {
        /// Condition (`i8`).
        cond: CVal,
        /// Destination when non-zero.
        then_dest: CBlock,
        /// Destination when zero.
        else_dest: CBlock,
    },
    /// Return (0–2 values; an `i128` counts as one value).
    Ret {
        /// Returned values.
        vals: Vec<CVal>,
    },
    /// Trap.
    Trap {
        /// Code (0 unreachable, 1 overflow).
        code: u8,
    },
}

impl CInst {
    /// Whether the instruction has side effects (the ISel-prepare
    /// partitioning criterion).
    pub fn is_effectful(&self) -> bool {
        matches!(
            self,
            CInst::Store { .. }
                | CInst::Call { .. }
                | CInst::Trap { .. }
                | CInst::Jump { .. }
                | CInst::Brif { .. }
                | CInst::Ret { .. }
        ) || matches!(
            self,
            CInst::Bin {
                op: CBinOp::SaddTrap
                    | CBinOp::SsubTrap
                    | CBinOp::SmulTrap
                    | CBinOp::Sdiv
                    | CBinOp::Udiv
                    | CBinOp::Srem
                    | CBinOp::Urem,
                ..
            }
        )
    }

    /// Whether this terminates a block.
    #[allow(dead_code)]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            CInst::Jump { .. } | CInst::Brif { .. } | CInst::Ret { .. } | CInst::Trap { .. }
        )
    }

    /// Visits value operands.
    pub fn for_each_arg(&self, mut f: impl FnMut(CVal)) {
        match self {
            CInst::Iconst { .. }
            | CInst::Fconst { .. }
            | CInst::FuncAddr { .. }
            | CInst::Trap { .. } => {}
            CInst::Bin { args, .. }
            | CInst::Icmp { args, .. }
            | CInst::Fcmp { args, .. }
            | CInst::Crc32 { args } => {
                f(args[0]);
                f(args[1]);
            }
            CInst::Select { cond, args } => {
                f(*cond);
                f(args[0]);
                f(args[1]);
            }
            CInst::Load { addr, .. } => f(*addr),
            CInst::Store { addr, val, .. } => {
                f(*addr);
                f(*val);
            }
            CInst::Sext { arg }
            | CInst::Uext { arg }
            | CInst::Ireduce { arg }
            | CInst::SiToF { arg }
            | CInst::FToSi { arg } => f(*arg),
            CInst::Call { args, .. } => args.iter().copied().for_each(f),
            CInst::Jump { args, .. } => args.iter().copied().for_each(f),
            CInst::Brif { cond, .. } => f(*cond),
            CInst::Ret { vals } => vals.iter().copied().for_each(f),
        }
    }
}

/// One CIR function.
///
/// Instruction records live in `insts` (one contiguous array); each
/// block's instruction order is an array-backed linked list through
/// `next`, exactly the layout mix the paper describes.
#[derive(Debug, Default)]
pub struct CirFunc {
    /// Function name.
    pub name: String,
    /// Parameter values (already flattened: strings are two `i64`s).
    pub params: Vec<CVal>,
    /// Value types (index = value id). Instruction results are values;
    /// `inst_result[i]` maps instructions to them.
    pub val_ty: Vec<CTy>,
    /// Instruction records.
    pub insts: Vec<CInst>,
    /// Result value per instruction (`u32::MAX` = none).
    pub inst_result: Vec<CVal>,
    /// Array-backed linked list: next instruction within the block.
    pub next: Vec<u32>,
    /// Per block: (head, tail) into `insts`, `u32::MAX` when empty.
    pub block_insts: Vec<(u32, u32)>,
    /// Per block: parameter values.
    pub block_params: Vec<Vec<CVal>>,
}

const NONE: u32 = u32::MAX;

impl CirFunc {
    /// Creates an empty function with one block.
    pub fn new(name: &str) -> Self {
        CirFunc {
            name: name.to_string(),
            block_insts: vec![(NONE, NONE)],
            block_params: vec![Vec::new()],
            ..Default::default()
        }
    }

    /// Adds a value of type `ty`.
    pub fn new_val(&mut self, ty: CTy) -> CVal {
        self.val_ty.push(ty);
        (self.val_ty.len() - 1) as CVal
    }

    /// Adds a block.
    pub fn new_block(&mut self) -> CBlock {
        self.block_insts.push((NONE, NONE));
        self.block_params.push(Vec::new());
        (self.block_insts.len() - 1) as CBlock
    }

    /// Appends an instruction to `block`, optionally producing a value of
    /// `ty`.
    pub fn push(&mut self, block: CBlock, inst: CInst, ty: Option<CTy>) -> Option<CVal> {
        let idx = self.insts.len() as u32;
        self.insts.push(inst);
        self.next.push(NONE);
        let result = ty.map(|t| self.new_val(t));
        self.inst_result.push(result.unwrap_or(NONE));
        let (head, tail) = self.block_insts[block as usize];
        if head == NONE {
            self.block_insts[block as usize] = (idx, idx);
        } else {
            self.next[tail as usize] = idx;
            self.block_insts[block as usize] = (head, idx);
        }
        result
    }

    /// Iterates the instruction indices of `block` in order.
    pub fn block_iter(&self, block: CBlock) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.block_insts[block as usize].0;
        std::iter::from_fn(move || {
            if cur == NONE {
                return None;
            }
            let r = cur;
            cur = self.next[cur as usize];
            Some(r)
        })
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_insts.len()
    }

    /// Successor blocks of `block`.
    pub fn succs(&self, block: CBlock) -> Vec<CBlock> {
        match self
            .block_iter(block)
            .last()
            .map(|i| &self.insts[i as usize])
        {
            Some(CInst::Jump { dest, .. }) => vec![*dest],
            Some(CInst::Brif {
                then_dest,
                else_dest,
                ..
            }) => vec![*then_dest, *else_dest],
            _ => Vec::new(),
        }
    }
}

/// Mapping of one QIR value into CIR values.
#[derive(Debug, Clone, Copy)]
enum Mapped {
    One(CVal),
    /// Strings: (lo, hi) halves.
    Pair(CVal, CVal),
}

/// Extension-instruction configuration (see `CliftExtensions`).
#[derive(Debug, Clone, Copy)]
pub struct ExtFlags {
    /// Native crc32.
    pub crc32: bool,
    /// Native trapping arithmetic.
    pub overflow_arith: bool,
    /// Combined full multiplication.
    pub mulfull: bool,
}

fn cty(ty: qir::Type) -> CTy {
    match ty {
        qir::Type::Bool | qir::Type::I8 => CTy::I8,
        qir::Type::I16 => CTy::I16,
        qir::Type::I32 => CTy::I32,
        qir::Type::I64 | qir::Type::Ptr => CTy::I64,
        qir::Type::I128 => CTy::I128,
        qir::Type::F64 => CTy::F64,
        qir::Type::String | qir::Type::Void => unreachable!("flattened earlier"),
    }
}

fn rt_addr(name: &str) -> Result<u64, BackendError> {
    resolve_runtime(name)
        .ok_or_else(|| BackendError::new(format!("unknown runtime function `{name}`")))
}

/// Translates one QIR function to CIR ("IRGen", paper Fig. 4).
///
/// Pass 1 sets up metadata (blocks, block params); pass 2 translates
/// instruction bodies, mapping QIR values through a hash map (the lookup
/// cost the paper calls out explicitly).
///
/// # Errors
/// Returns [`BackendError`] for unsupported constructs.
pub fn translate(func: &qir::Function, ext: ExtFlags) -> Result<CirFunc, BackendError> {
    let mut cir = CirFunc::new(&func.name);
    let mut map: HashMap<qir::Value, Mapped> = HashMap::new();

    // Pass 1: metadata — blocks, block params (from Φs), function params.
    for b in func.blocks().skip(1) {
        let _ = b;
        cir.new_block();
    }
    for &p in func.params() {
        match func.value_type(p) {
            qir::Type::String => {
                let lo = cir.new_val(CTy::I64);
                let hi = cir.new_val(CTy::I64);
                cir.params.push(lo);
                cir.params.push(hi);
                map.insert(p, Mapped::Pair(lo, hi));
            }
            t => {
                let v = cir.new_val(cty(t));
                cir.params.push(v);
                map.insert(p, Mapped::One(v));
            }
        }
    }
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            if let InstData::Phi { ty, .. } = func.inst(inst) {
                let res = func.inst_result(inst).expect("phi result");
                let m = match ty {
                    qir::Type::String => {
                        let lo = cir.new_val(CTy::I64);
                        let hi = cir.new_val(CTy::I64);
                        cir.block_params[block.index()].push(lo);
                        cir.block_params[block.index()].push(hi);
                        Mapped::Pair(lo, hi)
                    }
                    t => {
                        let v = cir.new_val(cty(*t));
                        cir.block_params[block.index()].push(v);
                        Mapped::One(v)
                    }
                };
                map.insert(res, m);
            } else {
                break;
            }
        }
    }

    // Pass 2: translate bodies.
    let mut tr = Translator {
        cir,
        map,
        ext,
        func,
    };
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            tr.translate_inst(block.index() as CBlock, inst)?;
        }
    }
    Ok(tr.cir)
}

struct Translator<'f> {
    cir: CirFunc,
    map: HashMap<qir::Value, Mapped>,
    ext: ExtFlags,
    func: &'f qir::Function,
}

impl Translator<'_> {
    fn one(&self, v: qir::Value) -> CVal {
        match self.map[&v] {
            Mapped::One(c) => c,
            Mapped::Pair(..) => panic!("expected scalar mapping for {v}"),
        }
    }

    fn pair(&self, v: qir::Value) -> (CVal, CVal) {
        match self.map[&v] {
            Mapped::Pair(lo, hi) => (lo, hi),
            Mapped::One(_) => panic!("expected pair mapping for {v}"),
        }
    }

    /// Flattened CIR args for the edge into `dest` (Φ operands).
    fn edge_args(&self, pred: qir::Block, dest: qir::Block) -> Vec<CVal> {
        let mut out = Vec::new();
        for &inst in self.func.block_insts(dest) {
            if let InstData::Phi { pairs, ty } = self.func.inst(inst) {
                let &(_, src) = pairs
                    .iter()
                    .find(|&&(b, _)| b == pred)
                    .expect("verified phi");
                match ty {
                    qir::Type::String => {
                        let (lo, hi) = self.pair(src);
                        out.push(lo);
                        out.push(hi);
                    }
                    _ => out.push(self.one(src)),
                }
            } else {
                break;
            }
        }
        out
    }

    /// Emits a jump edge, splitting through a trampoline when needed for
    /// conditional branches.
    fn branch_target(&mut self, pred: qir::Block, dest: qir::Block) -> CBlock {
        let args = self.edge_args(pred, dest);
        if args.is_empty() {
            return dest.index() as CBlock;
        }
        // Critical-edge split: trampoline block carrying the args.
        let t = self.cir.new_block();
        self.cir.push(
            t,
            CInst::Jump {
                dest: dest.index() as CBlock,
                args,
            },
            None,
        );
        t
    }

    #[allow(clippy::too_many_lines)]
    fn translate_inst(&mut self, cb: CBlock, inst: qir::Inst) -> Result<(), BackendError> {
        let data = self.func.inst(inst).clone();
        let result = self.func.inst_result(inst);
        match data {
            InstData::Phi { .. } => {} // block params
            InstData::IConst { ty, imm } => {
                let v = self
                    .cir
                    .push(cb, CInst::Iconst { imm }, Some(cty(ty)))
                    .expect("value");
                self.map.insert(result.expect("result"), Mapped::One(v));
            }
            InstData::FConst { imm } => {
                let v = self
                    .cir
                    .push(cb, CInst::Fconst { imm }, Some(CTy::F64))
                    .expect("value");
                self.map.insert(result.expect("result"), Mapped::One(v));
            }
            InstData::Binary { op, ty, args } => {
                let r = result.expect("result");
                let (a, b) = (self.one(args[0]), self.one(args[1]));
                let t = cty(ty);
                let v = match op {
                    Opcode::Add => self.bin(cb, CBinOp::Iadd, a, b, t),
                    Opcode::Sub => self.bin(cb, CBinOp::Isub, a, b, t),
                    Opcode::Mul => self.bin(cb, CBinOp::Imul, a, b, t),
                    Opcode::And => self.bin(cb, CBinOp::Band, a, b, t),
                    Opcode::Or => self.bin(cb, CBinOp::Bor, a, b, t),
                    Opcode::Xor => self.bin(cb, CBinOp::Bxor, a, b, t),
                    Opcode::Shl => self.bin(cb, CBinOp::Ishl, a, b, t),
                    Opcode::LShr => self.bin(cb, CBinOp::Ushr, a, b, t),
                    Opcode::AShr => self.bin(cb, CBinOp::Sshr, a, b, t),
                    Opcode::RotR => self.bin(cb, CBinOp::Rotr, a, b, t),
                    Opcode::UDiv => self.bin(cb, CBinOp::Udiv, a, b, t),
                    Opcode::URem => self.bin(cb, CBinOp::Urem, a, b, t),
                    Opcode::SRem if t != CTy::I128 => self.bin(cb, CBinOp::Srem, a, b, t),
                    Opcode::SRem => {
                        return Err(BackendError::new("clift: srem at i128 unsupported"));
                    }
                    Opcode::SDiv if t != CTy::I128 => self.bin(cb, CBinOp::Sdiv, a, b, t),
                    Opcode::SDiv => self.call_rt(cb, "rt_i128_div", vec![a, b], Some(t))?,
                    Opcode::FAdd => self.bin(cb, CBinOp::Fadd, a, b, t),
                    Opcode::FSub => self.bin(cb, CBinOp::Fsub, a, b, t),
                    Opcode::FMul => self.bin(cb, CBinOp::Fmul, a, b, t),
                    Opcode::FDiv => self.bin(cb, CBinOp::Fdiv, a, b, t),
                    Opcode::SAddTrap | Opcode::SSubTrap | Opcode::SMulTrap => {
                        self.trapping(cb, op, a, b, t)?
                    }
                    Opcode::SAddOvf | Opcode::SSubOvf | Opcode::SMulOvf => {
                        return Err(BackendError::new(
                            "clift: overflow-flag variants are not used by the query compiler",
                        ));
                    }
                };
                self.map.insert(r, Mapped::One(v));
            }
            InstData::Cmp { op, ty, args } => {
                let v = self
                    .cir
                    .push(
                        cb,
                        CInst::Icmp {
                            cond: op,
                            args: [self.one(args[0]), self.one(args[1])],
                        },
                        Some(CTy::I8),
                    )
                    .expect("value");
                let _ = ty;
                self.map.insert(result.expect("result"), Mapped::One(v));
            }
            InstData::FCmp { op, args } => {
                let v = self
                    .cir
                    .push(
                        cb,
                        CInst::Fcmp {
                            cond: op,
                            args: [self.one(args[0]), self.one(args[1])],
                        },
                        Some(CTy::I8),
                    )
                    .expect("value");
                self.map.insert(result.expect("result"), Mapped::One(v));
            }
            InstData::Cast { op, to, arg } => {
                let r = result.expect("result");
                let from = self.func.value_type(arg);
                let v = match (op, from) {
                    (_, qir::Type::String) => {
                        return Err(BackendError::new("cast on string"));
                    }
                    (CastOp::Zext, _) => {
                        let a = self.one(arg);
                        self.cir
                            .push(cb, CInst::Uext { arg: a }, Some(cty(to)))
                            .expect("v")
                    }
                    (CastOp::Sext, _) => {
                        let a = self.one(arg);
                        self.cir
                            .push(cb, CInst::Sext { arg: a }, Some(cty(to)))
                            .expect("v")
                    }
                    (CastOp::Trunc, _) => {
                        let a = self.one(arg);
                        self.cir
                            .push(cb, CInst::Ireduce { arg: a }, Some(cty(to)))
                            .expect("v")
                    }
                    (CastOp::SiToF, _) => {
                        let a = self.one(arg);
                        self.cir
                            .push(cb, CInst::SiToF { arg: a }, Some(CTy::F64))
                            .expect("v")
                    }
                    (CastOp::FToSi, _) => {
                        let a = self.one(arg);
                        self.cir
                            .push(cb, CInst::FToSi { arg: a }, Some(cty(to)))
                            .expect("v")
                    }
                };
                self.map.insert(r, Mapped::One(v));
            }
            InstData::Crc32 { args } => {
                let r = result.expect("result");
                let (a, b) = (self.one(args[0]), self.one(args[1]));
                let v = if self.ext.crc32 {
                    self.cir
                        .push(cb, CInst::Crc32 { args: [a, b] }, Some(CTy::I64))
                        .expect("v")
                } else {
                    self.call_rt(cb, "rt_crc32", vec![a, b], Some(CTy::I64))?
                };
                self.map.insert(r, Mapped::One(v));
            }
            InstData::LongMulFold { args } => {
                let r = result.expect("result");
                let (a, b) = (self.one(args[0]), self.one(args[1]));
                let v = if self.ext.mulfull {
                    // Single combined multiplication: lo/hi in one go,
                    // modelled as UMulHi fused at lowering via a marker.
                    let lo = self.bin(cb, CBinOp::Imul, a, b, CTy::I64);
                    let hi = self.bin(cb, CBinOp::UMulHi, a, b, CTy::I64);
                    // The lowering pattern-matches Imul+UMulHi with the
                    // same operands into one MulFull when enabled.
                    self.bin(cb, CBinOp::Bxor, lo, hi, CTy::I64)
                } else {
                    let lo = self.bin(cb, CBinOp::Imul, a, b, CTy::I64);
                    let hi = self.bin(cb, CBinOp::UMulHi, a, b, CTy::I64);
                    self.bin(cb, CBinOp::Bxor, lo, hi, CTy::I64)
                };
                self.map.insert(r, Mapped::One(v));
            }
            InstData::Select {
                ty,
                cond,
                if_true,
                if_false,
            } => {
                let r = result.expect("result");
                let c = self.one(cond);
                match ty {
                    qir::Type::String => {
                        let (tl, th) = self.pair(if_true);
                        let (fl, fh) = self.pair(if_false);
                        let lo = self
                            .cir
                            .push(
                                cb,
                                CInst::Select {
                                    cond: c,
                                    args: [tl, fl],
                                },
                                Some(CTy::I64),
                            )
                            .expect("v");
                        let hi = self
                            .cir
                            .push(
                                cb,
                                CInst::Select {
                                    cond: c,
                                    args: [th, fh],
                                },
                                Some(CTy::I64),
                            )
                            .expect("v");
                        self.map.insert(r, Mapped::Pair(lo, hi));
                    }
                    t => {
                        let (a, b) = (self.one(if_true), self.one(if_false));
                        let v = self
                            .cir
                            .push(
                                cb,
                                CInst::Select {
                                    cond: c,
                                    args: [a, b],
                                },
                                Some(cty(t)),
                            )
                            .expect("v");
                        self.map.insert(r, Mapped::One(v));
                    }
                }
            }
            InstData::Load { ty, ptr, offset } => {
                let r = result.expect("result");
                let a = self.one(ptr);
                match ty {
                    qir::Type::String => {
                        let lo = self
                            .cir
                            .push(
                                cb,
                                CInst::Load {
                                    addr: a,
                                    off: offset,
                                },
                                Some(CTy::I64),
                            )
                            .expect("v");
                        let hi = self
                            .cir
                            .push(
                                cb,
                                CInst::Load {
                                    addr: a,
                                    off: offset + 8,
                                },
                                Some(CTy::I64),
                            )
                            .expect("v");
                        self.map.insert(r, Mapped::Pair(lo, hi));
                    }
                    t => {
                        let v = self
                            .cir
                            .push(
                                cb,
                                CInst::Load {
                                    addr: a,
                                    off: offset,
                                },
                                Some(cty(t)),
                            )
                            .expect("v");
                        self.map.insert(r, Mapped::One(v));
                    }
                }
            }
            InstData::Store {
                ty,
                ptr,
                value,
                offset,
            } => {
                let a = self.one(ptr);
                match ty {
                    qir::Type::String => {
                        let (lo, hi) = self.pair(value);
                        self.cir.push(
                            cb,
                            CInst::Store {
                                ty: CTy::I64,
                                addr: a,
                                val: lo,
                                off: offset,
                            },
                            None,
                        );
                        self.cir.push(
                            cb,
                            CInst::Store {
                                ty: CTy::I64,
                                addr: a,
                                val: hi,
                                off: offset + 8,
                            },
                            None,
                        );
                    }
                    t => {
                        let v = self.one(value);
                        self.cir.push(
                            cb,
                            CInst::Store {
                                ty: cty(t),
                                addr: a,
                                val: v,
                                off: offset,
                            },
                            None,
                        );
                    }
                }
            }
            InstData::Gep {
                base,
                offset,
                index,
                scale,
            } => {
                // No pointers in CIR: plain integer arithmetic.
                let r = result.expect("result");
                let mut cur = self.one(base);
                if let Some(i) = index {
                    let iv = self.one(i);
                    let sc = self
                        .cir
                        .push(cb, CInst::Iconst { imm: scale as i128 }, Some(CTy::I64))
                        .expect("v");
                    let scaled = self.bin(cb, CBinOp::Imul, iv, sc, CTy::I64);
                    cur = self.bin(cb, CBinOp::Iadd, cur, scaled, CTy::I64);
                }
                if offset != 0 {
                    let oc = self
                        .cir
                        .push(
                            cb,
                            CInst::Iconst {
                                imm: offset as i128,
                            },
                            Some(CTy::I64),
                        )
                        .expect("v");
                    cur = self.bin(cb, CBinOp::Iadd, cur, oc, CTy::I64);
                }
                self.map.insert(r, Mapped::One(cur));
            }
            InstData::StackAddr { .. } => {
                return Err(BackendError::new(
                    "clift: stack slots are unsupported (query code does not use them)",
                ));
            }
            InstData::Call { callee, args } => {
                let decl = self.func.ext_func(callee).clone();
                let addr = rt_addr(&decl.name)?;
                let mut flat = Vec::new();
                for &a in &args {
                    match self.func.value_type(a) {
                        qir::Type::String => {
                            let (lo, hi) = self.pair(a);
                            flat.push(lo);
                            flat.push(hi);
                        }
                        _ => flat.push(self.one(a)),
                    }
                }
                match decl.sig.ret {
                    qir::Type::Void => {
                        self.cir.push(
                            cb,
                            CInst::Call {
                                addr,
                                args: flat,
                                ret: None,
                            },
                            None,
                        );
                    }
                    qir::Type::String => {
                        return Err(BackendError::new("clift: string-returning runtime call"));
                    }
                    t => {
                        let ct = cty(t);
                        let v = self
                            .cir
                            .push(
                                cb,
                                CInst::Call {
                                    addr,
                                    args: flat,
                                    ret: Some(ct),
                                },
                                Some(ct),
                            )
                            .expect("v");
                        self.map.insert(result.expect("result"), Mapped::One(v));
                    }
                }
            }
            InstData::FuncAddr { func } => {
                let v = self
                    .cir
                    .push(cb, CInst::FuncAddr { func: func.index() }, Some(CTy::I64))
                    .expect("v");
                self.map.insert(result.expect("result"), Mapped::One(v));
            }
            InstData::Jump { dest } => {
                let args = self.edge_args(qir::Block::new(cb as usize), dest);
                self.cir.push(
                    cb,
                    CInst::Jump {
                        dest: dest.index() as CBlock,
                        args,
                    },
                    None,
                );
            }
            InstData::Branch {
                cond,
                then_dest,
                else_dest,
            } => {
                let c = self.one(cond);
                let pred = qir::Block::new(cb as usize);
                let t = self.branch_target(pred, then_dest);
                let f = self.branch_target(pred, else_dest);
                self.cir.push(
                    cb,
                    CInst::Brif {
                        cond: c,
                        then_dest: t,
                        else_dest: f,
                    },
                    None,
                );
            }
            InstData::Return { value } => {
                let vals = match value {
                    None => Vec::new(),
                    Some(v) => match self.func.value_type(v) {
                        qir::Type::String => {
                            let (lo, hi) = self.pair(v);
                            vec![lo, hi]
                        }
                        _ => vec![self.one(v)],
                    },
                };
                self.cir.push(cb, CInst::Ret { vals }, None);
            }
            InstData::Unreachable => {
                self.cir.push(cb, CInst::Trap { code: 0 }, None);
            }
        }
        Ok(())
    }

    fn bin(&mut self, cb: CBlock, op: CBinOp, a: CVal, b: CVal, ty: CTy) -> CVal {
        self.cir
            .push(cb, CInst::Bin { op, args: [a, b] }, Some(ty))
            .expect("value")
    }

    fn call_rt(
        &mut self,
        cb: CBlock,
        name: &str,
        args: Vec<CVal>,
        ret: Option<CTy>,
    ) -> Result<CVal, BackendError> {
        let addr = rt_addr(name)?;
        Ok(self
            .cir
            .push(cb, CInst::Call { addr, args, ret }, ret)
            .expect("call result"))
    }

    fn trapping(
        &mut self,
        cb: CBlock,
        op: Opcode,
        a: CVal,
        b: CVal,
        t: CTy,
    ) -> Result<CVal, BackendError> {
        if t == CTy::I128 {
            // 128-bit trapping arithmetic: native add/sub when the
            // extension instructions exist, helper calls otherwise;
            // multiplication always goes through the hand-optimized helper.
            return match op {
                Opcode::SMulTrap => self.call_rt(cb, "rt_mul128_ovf", vec![a, b], Some(t)),
                Opcode::SAddTrap if self.ext.overflow_arith => {
                    Ok(self.bin(cb, CBinOp::SaddTrap, a, b, t))
                }
                Opcode::SSubTrap if self.ext.overflow_arith => {
                    Ok(self.bin(cb, CBinOp::SsubTrap, a, b, t))
                }
                Opcode::SAddTrap => self.call_rt(cb, "rt_add128_ovf", vec![a, b], Some(t)),
                Opcode::SSubTrap => self.call_rt(cb, "rt_sub128_ovf", vec![a, b], Some(t)),
                _ => unreachable!(),
            };
        }
        if self.ext.overflow_arith {
            let cop = match op {
                Opcode::SAddTrap => CBinOp::SaddTrap,
                Opcode::SSubTrap => CBinOp::SsubTrap,
                Opcode::SMulTrap => CBinOp::SmulTrap,
                _ => unreachable!(),
            };
            Ok(self.bin(cb, cop, a, b, t))
        } else {
            // Helper calls operate at 64 bits; narrower types widen first.
            // (Query code only uses 64/128-bit trapping arithmetic.)
            let helper = match op {
                Opcode::SAddTrap => "rt_sadd_ovf",
                Opcode::SSubTrap => "rt_ssub_ovf",
                Opcode::SMulTrap => "rt_smul_ovf",
                _ => unreachable!(),
            };
            if t != CTy::I64 {
                return Err(BackendError::new(
                    "clift: narrow trapping arithmetic without extension instructions",
                ));
            }
            self.call_rt(cb, helper, vec![a, b], Some(t))
        }
    }
}
