//! Register allocation: linear scan over live-range bundles with per-
//! physical-register B-trees (paper Sec. VI-C3).
//!
//! The paper measures this as the largest part of Cranelift's compile time:
//! ~37% of it computing and merging live ranges (several IR iterations),
//! and a measurable share spent in the per-register B-trees. The structure
//! below reproduces those costs: block liveness by fixpoint, one interval
//! per vreg, move-coalescing bundle merging via union-find, and a
//! `BTreeMap` per physical register tracking its allocations.

use qc_backend::mir::{Allocation, Loc, MInst, RegClass, VCode, VReg};
use qc_target::{FReg, Isa, Reg};
use std::collections::BTreeMap;

/// Registers clift may allocate, per ISA (the emission scratches are
/// excluded on top of the ABI's permanently reserved scratch).
pub fn int_pool(isa: Isa) -> Vec<Reg> {
    let abi = isa.abi();
    let excluded = emission_scratches(isa);
    abi.allocatable
        .iter()
        .copied()
        .filter(|r| *r != excluded.0 && *r != excluded.1)
        .collect()
}

/// The two emission scratch registers.
pub fn emission_scratches(isa: Isa) -> (Reg, Reg) {
    match isa {
        Isa::Tx64 => (Reg(9), Reg(10)),
        Isa::Ta64 => (Reg(15), Reg(16)),
    }
}

/// Allocatable float registers (one reserved as emission scratch besides
/// the ABI float scratch).
pub fn float_pool(isa: Isa) -> Vec<FReg> {
    isa.abi()
        .fallocatable
        .iter()
        .copied()
        .filter(|f| f.num() < 13)
        .collect()
}

struct Uf {
    parent: Vec<u32>,
}

impl Uf {
    fn find(&mut self, x: u32) -> u32 {
        if self.parent[x as usize] != x {
            let r = self.find(self.parent[x as usize]);
            self.parent[x as usize] = r;
            r
        } else {
            x
        }
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Runs register allocation on one function's VCode.
pub fn allocate(vcode: &VCode, isa: Isa) -> Allocation {
    let nv = vcode.classes.len();
    let nb = vcode.blocks.len();

    // --- Program points & per-block ranges (one pass). ---
    let mut point = 0u32;
    let mut block_range = Vec::with_capacity(nb);
    for b in &vcode.blocks {
        let start = point;
        point += 2 * b.len().max(1) as u32 + 2;
        block_range.push((start, point));
    }

    // --- Block liveness (backward fixpoint; "iterating over the IR
    // several times"). ---
    let words = nv.div_ceil(64);
    let mut live_in = vec![vec![0u64; words]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut live = vec![0u64; words];
            for &s in &vcode.succs[b] {
                for (w, &x) in live.iter_mut().zip(&live_in[s]) {
                    *w |= x;
                }
            }
            for inst in vcode.blocks[b].iter().rev() {
                inst.for_each_def(|v| live[v as usize / 64] &= !(1 << (v % 64)));
                inst.for_each_use(|v| live[v as usize / 64] |= 1 << (v % 64));
            }
            if b == 0 {
                // Params are defined at entry.
                for &p in &vcode.params {
                    live[p as usize / 64] &= !(1 << (p % 64));
                }
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }

    // --- Live intervals (second pass over the IR). ---
    let mut start = vec![u32::MAX; nv];
    let mut end = vec![0u32; nv];
    let mut call_points = Vec::new();
    for &p in &vcode.params {
        start[p as usize] = 0;
        end[p as usize] = end[p as usize].max(1);
    }
    for (b, insts) in vcode.blocks.iter().enumerate() {
        let (bstart, bend) = block_range[b];
        // live-in values extend across the block start.
        for v in 0..nv {
            if live_in[b][v / 64] & (1 << (v % 64)) != 0 {
                start[v] = start[v].min(bstart);
                end[v] = end[v].max(bstart);
            }
        }
        // live-out: union of successor live-ins.
        for &s in &vcode.succs[b] {
            for v in 0..nv {
                if live_in[s][v / 64] & (1 << (v % 64)) != 0 {
                    start[v] = start[v].min(bstart);
                    end[v] = end[v].max(bend);
                }
            }
        }
        let mut p = bstart + 1;
        for inst in insts {
            inst.for_each_use(|v| {
                end[v as usize] = end[v as usize].max(p);
                start[v as usize] = start[v as usize].min(p);
            });
            inst.for_each_def(|v| {
                start[v as usize] = start[v as usize].min(p + 1);
                end[v as usize] = end[v as usize].max(p + 1);
            });
            if inst.is_call() {
                call_points.push(p);
            }
            p += 2;
        }
    }

    // --- Bundle merging: coalesce moves with disjoint intervals. ---
    let mut uf = Uf {
        parent: (0..nv as u32).collect(),
    };
    let overlap = |s1: u32, e1: u32, s2: u32, e2: u32| s1 < e2 && s2 < e1;
    let try_merge = |uf: &mut Uf, start: &mut [u32], end: &mut [u32], a: VReg, b: VReg| {
        let (ra, rb) = (uf.find(a), uf.find(b));
        if ra == rb || vcode.classes[a as usize] != vcode.classes[b as usize] {
            return;
        }
        let (sa, ea) = (start[ra as usize], end[ra as usize]);
        let (sb, eb) = (start[rb as usize], end[rb as usize]);
        if sa == u32::MAX || sb == u32::MAX || overlap(sa, ea, sb, eb) {
            return;
        }
        uf.union(ra, rb);
        let r = uf.find(ra);
        start[r as usize] = sa.min(sb);
        end[r as usize] = ea.max(eb);
    };
    for insts in &vcode.blocks {
        for inst in insts {
            match inst {
                MInst::MovRR { d, s } | MInst::FMovM { d, s } => {
                    try_merge(&mut uf, &mut start, &mut end, *d, *s);
                }
                MInst::ParMove { moves } => {
                    for &(s, d) in moves {
                        try_merge(&mut uf, &mut start, &mut end, d, s);
                    }
                }
                _ => {}
            }
        }
    }

    // --- Assignment over sorted bundles, one B-tree per preg. ---
    let ipool = int_pool(isa);
    let fpool = float_pool(isa);
    let callee_saved: Vec<Reg> = isa
        .abi()
        .callee_saved
        .iter()
        .copied()
        .filter(|r| ipool.contains(r))
        .collect();
    let mut reps: Vec<u32> = (0..nv as u32)
        .filter(|&v| uf.find(v) == v && start[v as usize] != u32::MAX)
        .collect();
    reps.sort_by_key(|&v| start[v as usize]);

    let mut itrees: BTreeMap<Reg, BTreeMap<u32, u32>> =
        ipool.iter().map(|&r| (r, BTreeMap::new())).collect();
    let mut ftrees: BTreeMap<FReg, BTreeMap<u32, u32>> =
        fpool.iter().map(|&f| (f, BTreeMap::new())).collect();

    let fits = |tree: &BTreeMap<u32, u32>, s: u32, e: u32| -> bool {
        if let Some((_, &pe)) = tree.range(..e).next_back() {
            if pe > s {
                return false;
            }
        }
        true
    };

    let mut rep_loc: Vec<Option<Loc>> = vec![None; nv];
    let mut spill_slots = 0u32;
    let mut spills = 0u64;
    for &rep in &reps {
        let (s, e) = (
            start[rep as usize],
            end[rep as usize].max(start[rep as usize] + 1),
        );
        let crosses_call = call_points.iter().any(|&c| c > s && c < e);
        let loc = match vcode.classes[rep as usize] {
            RegClass::Int => {
                let candidates: Vec<Reg> = if crosses_call {
                    callee_saved.clone()
                } else {
                    ipool.clone()
                };
                let mut found = None;
                for r in candidates {
                    let tree = itrees.get_mut(&r).expect("pool reg");
                    if fits(tree, s, e) {
                        tree.insert(s, e);
                        found = Some(Loc::R(r));
                        break;
                    }
                }
                found
            }
            RegClass::Float => {
                if crosses_call {
                    None // all float registers are caller-saved
                } else {
                    let mut found = None;
                    for &f in &fpool {
                        let tree = ftrees.get_mut(&f).expect("pool reg");
                        if fits(tree, s, e) {
                            tree.insert(s, e);
                            found = Some(Loc::F(f));
                            break;
                        }
                    }
                    found
                }
            }
        };
        rep_loc[rep as usize] = Some(loc.unwrap_or_else(|| {
            spills += 1;
            spill_slots += 1;
            Loc::Spill(spill_slots - 1)
        }));
    }

    let mut locs = Vec::with_capacity(nv);
    for v in 0..nv as u32 {
        let rep = uf.find(v);
        locs.push(rep_loc[rep as usize].unwrap_or(Loc::Spill(u32::MAX)));
    }
    // Dead vregs (never live) get a harmless placeholder register.
    for (v, loc) in locs.iter_mut().enumerate() {
        if *loc == Loc::Spill(u32::MAX) {
            *loc = match vcode.classes[v] {
                RegClass::Int => Loc::R(ipool[0]),
                RegClass::Float => Loc::F(fpool[0]),
            };
        }
    }
    Allocation {
        locs,
        spill_slots,
        spills,
    }
}
