//! Lowering: CIR → VCode (ISel preparation passes + tree-matching
//! instruction selection, paper Sec. VI-C2).

use crate::cir::{CBinOp, CInst, CTy, CirFunc};
use qc_backend::mir::{CallTarget, MInst, RegClass, VCode, VReg, VNONE};
use qc_backend::BackendError;
use qc_ir::CmpOp;
use qc_target::{AluOp, Cond, FaluOp, Width};

/// Results of the three ISel preparation passes.
pub struct PrepInfo {
    /// Vreg pair per CIR value (`hi == VNONE` for one-register values).
    pub val_regs: Vec<(VReg, VReg)>,
    /// Register class per vreg.
    pub classes: Vec<RegClass>,
    /// Side-effect group per instruction (kept for ISel boundary checks).
    #[allow(dead_code)]
    pub groups: Vec<u32>,
    /// Use count per value.
    pub use_counts: Vec<u32>,
    /// Defining instruction per value (`u32::MAX` for params/block params).
    pub val_def: Vec<u32>,
}

/// The three preparation passes over the complete IR (paper Sec. VI-C2:
/// vreg allocation, side-effect partitioning, use-count computation).
pub fn prepare(cir: &CirFunc) -> PrepInfo {
    // Pass 1: vregs + register classes.
    let mut val_regs = Vec::with_capacity(cir.val_ty.len());
    let mut classes = Vec::new();
    for &ty in &cir.val_ty {
        match ty {
            CTy::F64 => {
                classes.push(RegClass::Float);
                val_regs.push(((classes.len() - 1) as VReg, VNONE));
            }
            CTy::I128 => {
                classes.push(RegClass::Int);
                classes.push(RegClass::Int);
                val_regs.push(((classes.len() - 2) as VReg, (classes.len() - 1) as VReg));
            }
            _ => {
                classes.push(RegClass::Int);
                val_regs.push(((classes.len() - 1) as VReg, VNONE));
            }
        }
    }
    // Pass 2: partition by side-effecting instructions.
    let mut groups = vec![0u32; cir.insts.len()];
    let mut g = 0u32;
    for b in 0..cir.num_blocks() {
        for i in cir.block_iter(b as u32) {
            groups[i as usize] = g;
            if cir.insts[i as usize].is_effectful() {
                g += 1;
            }
        }
    }
    // Pass 3: use counts via a depth-first walk from the roots.
    let mut use_counts = vec![0u32; cir.val_ty.len()];
    for inst in &cir.insts {
        inst.for_each_arg(|v| use_counts[v as usize] += 1);
    }
    let mut val_def = vec![u32::MAX; cir.val_ty.len()];
    for (i, &r) in cir.inst_result.iter().enumerate() {
        if r != u32::MAX {
            val_def[r as usize] = i as u32;
        }
    }
    PrepInfo {
        val_regs,
        classes,
        groups,
        use_counts,
        val_def,
    }
}

struct Lowerer<'c> {
    cir: &'c CirFunc,
    prep: PrepInfo,
    vcode: VCode,
    cur: Vec<MInst>,
    /// Fusion marks: instruction indices folded into their consumer.
    fused: Vec<bool>,
    mulfull_ext: bool,
}

/// Lowers CIR to VCode.
///
/// # Errors
/// Returns [`BackendError`] for unsupported constructs.
pub fn lower(cir: &CirFunc, mulfull_ext: bool) -> Result<VCode, BackendError> {
    let prep = prepare(cir);
    let nblocks = cir.num_blocks();
    let mut l = Lowerer {
        cir,
        vcode: VCode {
            name: cir.name.clone(),
            blocks: Vec::with_capacity(nblocks),
            succs: (0..nblocks)
                .map(|b| cir.succs(b as u32).iter().map(|&s| s as usize).collect())
                .collect(),
            classes: Vec::new(),
            params: Vec::new(),
            fusions: (0, 0),
        },
        cur: Vec::new(),
        fused: vec![false; cir.insts.len()],
        mulfull_ext,
        prep,
    };
    l.vcode.classes = l.prep.classes.clone();
    for &p in &cir.params {
        let (lo, hi) = l.prep.val_regs[p as usize];
        l.vcode.params.push(lo);
        debug_assert_eq!(hi, VNONE, "params are pre-flattened");
    }
    l.mark_fusions();
    for b in 0..nblocks {
        l.cur = Vec::new();
        for i in cir.block_iter(b as u32) {
            l.lower_inst(i)?;
        }
        let insts = std::mem::take(&mut l.cur);
        l.vcode.blocks.push(insts);
    }
    Ok(l.vcode)
}

impl Lowerer<'_> {
    fn ty_of(&self, v: u32) -> CTy {
        self.cir.val_ty[v as usize]
    }

    fn lo(&self, v: u32) -> VReg {
        self.prep.val_regs[v as usize].0
    }

    fn hi(&self, v: u32) -> VReg {
        self.prep.val_regs[v as usize].1
    }

    fn width(&self, v: u32) -> Width {
        match self.ty_of(v) {
            CTy::I8 => Width::W8,
            CTy::I16 => Width::W16,
            CTy::I32 => Width::W32,
            _ => Width::W64,
        }
    }

    /// Tree-matching preparation: mark single-use constants foldable into
    /// immediates and single-use compares fusable into branches, within
    /// the same side-effect group.
    fn mark_fusions(&mut self) {
        for (idx, inst) in self.cir.insts.iter().enumerate() {
            match inst {
                CInst::Bin { op, args } => {
                    if matches!(
                        op,
                        CBinOp::Iadd
                            | CBinOp::Isub
                            | CBinOp::Band
                            | CBinOp::Bor
                            | CBinOp::Bxor
                            | CBinOp::Ishl
                            | CBinOp::Ushr
                            | CBinOp::Sshr
                            | CBinOp::Rotr
                    ) {
                        self.try_fold_const(args[1]);
                    }
                }
                CInst::Icmp { args, .. } => {
                    self.try_fold_const(args[1]);
                    let _ = idx;
                }
                CInst::Brif { cond, .. } => {
                    // Fuse a single-use same-block icmp producer.
                    if let Some(def) = self.def_of(*cond) {
                        if self.prep.use_counts[*cond as usize] == 1
                            && matches!(self.cir.insts[def as usize], CInst::Icmp { .. })
                            && self.ty_of(self.icmp_arg_ty(def)) != CTy::I128
                        {
                            self.fused[def as usize] = true;
                            self.vcode.fusions.0 += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn icmp_arg_ty(&self, inst: u32) -> u32 {
        match &self.cir.insts[inst as usize] {
            CInst::Icmp { args, .. } => args[0],
            _ => unreachable!(),
        }
    }

    fn def_of(&self, v: u32) -> Option<u32> {
        let d = self.prep.val_def[v as usize];
        (d != u32::MAX).then_some(d)
    }

    fn try_fold_const(&mut self, v: u32) {
        if self.prep.use_counts[v as usize] != 1 {
            return;
        }
        if let Some(def) = self.def_of(v) {
            if let CInst::Iconst { imm } = self.cir.insts[def as usize] {
                if i32::try_from(imm).is_ok() && self.ty_of(v) != CTy::I128 {
                    self.fused[def as usize] = true;
                    self.vcode.fusions.1 += 1;
                }
            }
        }
    }

    /// Returns the folded constant if the operand's producer was fused.
    fn as_folded_imm(&self, v: u32) -> Option<i64> {
        let def = self.def_of(v)?;
        if !self.fused[def as usize] {
            return None;
        }
        match self.cir.insts[def as usize] {
            CInst::Iconst { imm } => Some(imm as i64),
            _ => None,
        }
    }

    fn cond_of(op: CmpOp) -> Cond {
        match op {
            CmpOp::Eq => Cond::Eq,
            CmpOp::Ne => Cond::Ne,
            CmpOp::SLt => Cond::Lt,
            CmpOp::SLe => Cond::Le,
            CmpOp::SGt => Cond::Gt,
            CmpOp::SGe => Cond::Ge,
            CmpOp::ULt => Cond::B,
            CmpOp::ULe => Cond::Be,
            CmpOp::UGt => Cond::A,
            CmpOp::UGe => Cond::Ae,
        }
    }

    fn fcond_of(op: CmpOp) -> Cond {
        match op {
            CmpOp::Eq => Cond::Eq,
            CmpOp::Ne => Cond::Ne,
            CmpOp::SLt | CmpOp::ULt => Cond::B,
            CmpOp::SLe | CmpOp::ULe => Cond::Be,
            CmpOp::SGt | CmpOp::UGt => Cond::A,
            CmpOp::SGe | CmpOp::UGe => Cond::Ae,
        }
    }

    fn emit_icmp_flags(&mut self, inst_idx: u32) -> Cond {
        let CInst::Icmp { cond, args } = self.cir.insts[inst_idx as usize].clone() else {
            unreachable!()
        };
        let w = self.width(args[0]);
        if let Some(imm) = self.as_folded_imm(args[1]) {
            self.cur.push(MInst::CmpImm {
                w,
                a: self.lo(args[0]),
                imm,
            });
        } else {
            self.cur.push(MInst::Cmp {
                w,
                a: self.lo(args[0]),
                b: self.lo(args[1]),
            });
        }
        Self::cond_of(cond)
    }

    fn emit_cmp128(&mut self, cond: CmpOp, args: [u32; 2], dst: VReg) {
        let (alo, ahi) = (self.lo(args[0]), self.hi(args[0]));
        let (blo, bhi) = (self.lo(args[1]), self.hi(args[1]));
        let t1 = self.new_vreg(RegClass::Int);
        let t2 = self.new_vreg(RegClass::Int);
        match cond {
            CmpOp::Eq | CmpOp::Ne => {
                self.cur.push(MInst::Alu {
                    op: AluOp::Xor,
                    w: Width::W64,
                    sf: false,
                    d: t1,
                    s1: alo,
                    s2: blo,
                });
                self.cur.push(MInst::Alu {
                    op: AluOp::Xor,
                    w: Width::W64,
                    sf: false,
                    d: t2,
                    s1: ahi,
                    s2: bhi,
                });
                self.cur.push(MInst::Alu {
                    op: AluOp::Or,
                    w: Width::W64,
                    sf: true,
                    d: t1,
                    s1: t1,
                    s2: t2,
                });
                self.cur.push(MInst::SetCc {
                    cond: Self::cond_of(cond),
                    d: dst,
                });
            }
            _ => {
                let (x, y, c) = match cond {
                    CmpOp::SLt => ((alo, ahi), (blo, bhi), Cond::Lt),
                    CmpOp::SGe => ((alo, ahi), (blo, bhi), Cond::Ge),
                    CmpOp::SGt => ((blo, bhi), (alo, ahi), Cond::Lt),
                    CmpOp::SLe => ((blo, bhi), (alo, ahi), Cond::Ge),
                    CmpOp::ULt => ((alo, ahi), (blo, bhi), Cond::B),
                    CmpOp::UGe => ((alo, ahi), (blo, bhi), Cond::Ae),
                    CmpOp::UGt => ((blo, bhi), (alo, ahi), Cond::B),
                    CmpOp::ULe => ((blo, bhi), (alo, ahi), Cond::Ae),
                    _ => unreachable!(),
                };
                self.cur.push(MInst::Alu {
                    op: AluOp::Sub,
                    w: Width::W64,
                    sf: true,
                    d: t1,
                    s1: x.0,
                    s2: y.0,
                });
                self.cur.push(MInst::Alu {
                    op: AluOp::Sbb,
                    w: Width::W64,
                    sf: true,
                    d: t2,
                    s1: x.1,
                    s2: y.1,
                });
                self.cur.push(MInst::SetCc { cond: c, d: dst });
            }
        }
    }

    fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.vcode.classes.push(class);
        (self.vcode.classes.len() - 1) as VReg
    }

    #[allow(clippy::too_many_lines)]
    fn lower_inst(&mut self, idx: u32) -> Result<(), BackendError> {
        if self.fused[idx as usize] {
            return Ok(()); // matched into its consumer
        }
        let inst = self.cir.insts[idx as usize].clone();
        let res = self.cir.inst_result[idx as usize];
        match inst {
            CInst::Iconst { imm } => {
                if self.ty_of(res) == CTy::I128 {
                    self.cur.push(MInst::MovRI {
                        d: self.lo(res),
                        imm: imm as i64,
                    });
                    self.cur.push(MInst::MovRI {
                        d: self.hi(res),
                        imm: (imm >> 64) as i64,
                    });
                } else {
                    // Canonical (zero-extended-at-width) materialization.
                    let canon = match self.ty_of(res) {
                        CTy::I8 => (imm as u64) & 0xFF,
                        CTy::I16 => (imm as u64) & 0xFFFF,
                        CTy::I32 => (imm as u64) & 0xFFFF_FFFF,
                        _ => imm as u64,
                    };
                    self.cur.push(MInst::MovRI {
                        d: self.lo(res),
                        imm: canon as i64,
                    });
                }
            }
            CInst::Fconst { imm } => {
                let bits = self.new_vreg(RegClass::Int);
                self.cur.push(MInst::MovRI {
                    d: bits,
                    imm: imm.to_bits() as i64,
                });
                self.cur.push(MInst::FMovFromGpr {
                    d: self.lo(res),
                    s: bits,
                });
            }
            CInst::Bin { op, args } => self.lower_bin(idx, op, args, res)?,
            CInst::Icmp { args, .. } => {
                if self.ty_of(args[0]) == CTy::I128 {
                    let CInst::Icmp { cond, .. } = self.cir.insts[idx as usize] else {
                        unreachable!()
                    };
                    self.emit_cmp128(cond, args, self.lo(res));
                } else {
                    let c = self.emit_icmp_flags(idx);
                    self.cur.push(MInst::SetCc {
                        cond: c,
                        d: self.lo(res),
                    });
                }
            }
            CInst::Fcmp { cond, args } => {
                self.cur.push(MInst::FCmpM {
                    a: self.lo(args[0]),
                    b: self.lo(args[1]),
                });
                self.cur.push(MInst::SetCc {
                    cond: Self::fcond_of(cond),
                    d: self.lo(res),
                });
            }
            CInst::Select { cond, args } => {
                let c = self.lo(cond);
                if self.ty_of(res) == CTy::F64 {
                    self.cur.push(MInst::FSelect {
                        cond: c,
                        d: self.lo(res),
                        t: self.lo(args[0]),
                        f: self.lo(args[1]),
                    });
                } else if self.ty_of(res) == CTy::I128 {
                    self.cur.push(MInst::Select {
                        cond: c,
                        d: self.lo(res),
                        t: self.lo(args[0]),
                        f: self.lo(args[1]),
                    });
                    self.cur.push(MInst::Select {
                        cond: c,
                        d: self.hi(res),
                        t: self.hi(args[0]),
                        f: self.hi(args[1]),
                    });
                } else {
                    self.cur.push(MInst::Select {
                        cond: c,
                        d: self.lo(res),
                        t: self.lo(args[0]),
                        f: self.lo(args[1]),
                    });
                }
            }
            CInst::Load { addr, off } => match self.ty_of(res) {
                CTy::F64 => self.cur.push(MInst::FLoad {
                    d: self.lo(res),
                    base: self.lo(addr),
                    disp: off,
                }),
                CTy::I128 => {
                    self.cur.push(MInst::Load {
                        w: Width::W64,
                        d: self.lo(res),
                        base: self.lo(addr),
                        disp: off,
                    });
                    self.cur.push(MInst::Load {
                        w: Width::W64,
                        d: self.hi(res),
                        base: self.lo(addr),
                        disp: off + 8,
                    });
                }
                _ => self.cur.push(MInst::Load {
                    w: self.width(res),
                    d: self.lo(res),
                    base: self.lo(addr),
                    disp: off,
                }),
            },
            CInst::Store { ty, addr, val, off } => match ty {
                CTy::F64 => self.cur.push(MInst::FStore {
                    s: self.lo(val),
                    base: self.lo(addr),
                    disp: off,
                }),
                CTy::I128 => {
                    self.cur.push(MInst::Store {
                        w: Width::W64,
                        s: self.lo(val),
                        base: self.lo(addr),
                        disp: off,
                    });
                    self.cur.push(MInst::Store {
                        w: Width::W64,
                        s: self.hi(val),
                        base: self.lo(addr),
                        disp: off + 8,
                    });
                }
                _ => {
                    let w = match ty {
                        CTy::I8 => Width::W8,
                        CTy::I16 => Width::W16,
                        CTy::I32 => Width::W32,
                        _ => Width::W64,
                    };
                    self.cur.push(MInst::Store {
                        w,
                        s: self.lo(val),
                        base: self.lo(addr),
                        disp: off,
                    });
                }
            },
            CInst::Sext { arg } => {
                let from = self.ty_of(arg);
                let to = self.ty_of(res);
                let fw = match from {
                    CTy::I8 => Width::W8,
                    CTy::I16 => Width::W16,
                    CTy::I32 => Width::W32,
                    _ => Width::W64,
                };
                if to == CTy::I128 {
                    if from == CTy::I64 {
                        self.cur.push(MInst::MovRR {
                            d: self.lo(res),
                            s: self.lo(arg),
                        });
                    } else {
                        self.cur.push(MInst::Sext {
                            from: fw,
                            d: self.lo(res),
                            s: self.lo(arg),
                        });
                    }
                    self.cur.push(MInst::MovRR {
                        d: self.hi(res),
                        s: self.lo(res),
                    });
                    self.cur.push(MInst::AluImm {
                        op: AluOp::Sar,
                        w: Width::W64,
                        sf: false,
                        d: self.hi(res),
                        s1: self.hi(res),
                        imm: 63,
                    });
                } else if from == CTy::I64 {
                    self.cur.push(MInst::MovRR {
                        d: self.lo(res),
                        s: self.lo(arg),
                    });
                } else {
                    self.cur.push(MInst::Sext {
                        from: fw,
                        d: self.lo(res),
                        s: self.lo(arg),
                    });
                }
            }
            CInst::Uext { arg } => {
                self.cur.push(MInst::MovRR {
                    d: self.lo(res),
                    s: self.lo(arg),
                });
                if self.ty_of(res) == CTy::I128 {
                    self.cur.push(MInst::MovRI {
                        d: self.hi(res),
                        imm: 0,
                    });
                }
            }
            CInst::Ireduce { arg } => {
                self.cur.push(MInst::MovRR {
                    d: self.lo(res),
                    s: self.lo(arg),
                });
                let mask: i64 = match self.ty_of(res) {
                    CTy::I8 => 0xFF,
                    CTy::I16 => 0xFFFF,
                    CTy::I32 => 0xFFFF_FFFF,
                    _ => -1,
                };
                if mask != -1 {
                    self.cur.push(MInst::AluImm {
                        op: AluOp::And,
                        w: Width::W64,
                        sf: false,
                        d: self.lo(res),
                        s1: self.lo(res),
                        imm: mask,
                    });
                }
            }
            CInst::SiToF { arg } => {
                if self.ty_of(arg) == CTy::I128 {
                    return Err(BackendError::new("clift: sitof from i128"));
                }
                let src = if self.ty_of(arg) == CTy::I64 {
                    self.lo(arg)
                } else {
                    let t = self.new_vreg(RegClass::Int);
                    let fw = self.width(arg);
                    self.cur.push(MInst::Sext {
                        from: fw,
                        d: t,
                        s: self.lo(arg),
                    });
                    t
                };
                self.cur.push(MInst::CvtSiToF {
                    d: self.lo(res),
                    s: src,
                });
            }
            CInst::FToSi { arg } => {
                self.cur.push(MInst::CvtFToSi {
                    d: self.lo(res),
                    s: self.lo(arg),
                });
            }
            CInst::Crc32 { args } => {
                self.cur.push(MInst::Crc32 {
                    d: self.lo(res),
                    acc: self.lo(args[0]),
                    data: self.lo(args[1]),
                });
            }
            CInst::Call { addr, args, ret } => {
                let mut flat = Vec::new();
                for &a in &args {
                    flat.push(self.lo(a));
                    if self.ty_of(a) == CTy::I128 {
                        flat.push(self.hi(a));
                    }
                }
                let ret_regs = match ret {
                    None => Vec::new(),
                    Some(CTy::I128) => vec![self.lo(res), self.hi(res)],
                    Some(_) => vec![self.lo(res)],
                };
                self.cur.push(MInst::CallRt {
                    target: CallTarget::Abs(addr),
                    args: flat,
                    ret: ret_regs,
                });
            }
            CInst::FuncAddr { func } => {
                self.cur.push(MInst::FuncAddr {
                    d: self.lo(res),
                    func,
                });
            }
            CInst::Jump { dest, args } => {
                if !args.is_empty() {
                    let mut moves = Vec::new();
                    let params = self.cir.block_params[dest as usize].clone();
                    let mut flat_params = Vec::new();
                    for &p in &params {
                        flat_params.push(self.lo(p));
                        if self.ty_of(p) == CTy::I128 {
                            flat_params.push(self.hi(p));
                        }
                    }
                    let mut flat_args = Vec::new();
                    for &a in &args {
                        flat_args.push(self.lo(a));
                        if self.ty_of(a) == CTy::I128 {
                            flat_args.push(self.hi(a));
                        }
                    }
                    debug_assert_eq!(flat_params.len(), flat_args.len());
                    for (s, d) in flat_args.into_iter().zip(flat_params) {
                        moves.push((s, d));
                    }
                    self.cur.push(MInst::ParMove { moves });
                }
                self.cur.push(MInst::Jmp {
                    target: dest as usize,
                });
            }
            CInst::Brif {
                cond,
                then_dest,
                else_dest,
            } => {
                // Fused compare?
                let c = if let Some(def) = self.def_of(cond) {
                    if self.fused[def as usize] {
                        self.emit_icmp_flags(def)
                    } else {
                        self.cur.push(MInst::CmpImm {
                            w: Width::W8,
                            a: self.lo(cond),
                            imm: 0,
                        });
                        Cond::Ne
                    }
                } else {
                    self.cur.push(MInst::CmpImm {
                        w: Width::W8,
                        a: self.lo(cond),
                        imm: 0,
                    });
                    Cond::Ne
                };
                self.cur.push(MInst::Jcc {
                    cond: c,
                    target: then_dest as usize,
                });
                self.cur.push(MInst::Jmp {
                    target: else_dest as usize,
                });
            }
            CInst::Ret { vals } => {
                let mut flat = Vec::new();
                for &v in &vals {
                    flat.push(self.lo(v));
                    if self.ty_of(v) == CTy::I128 {
                        flat.push(self.hi(v));
                    }
                }
                self.cur.push(MInst::Ret { vals: flat });
            }
            CInst::Trap { code } => self.cur.push(MInst::Trap { code }),
        }
        Ok(())
    }

    fn lower_bin(
        &mut self,
        idx: u32,
        op: CBinOp,
        args: [u32; 2],
        res: u32,
    ) -> Result<(), BackendError> {
        let ty = self.ty_of(res);
        if ty == CTy::F64 {
            let fop = match op {
                CBinOp::Fadd => FaluOp::Add,
                CBinOp::Fsub => FaluOp::Sub,
                CBinOp::Fmul => FaluOp::Mul,
                CBinOp::Fdiv => FaluOp::Div,
                _ => return Err(BackendError::new("int op typed f64")),
            };
            self.cur.push(MInst::Falu {
                op: fop,
                d: self.lo(res),
                a: self.lo(args[0]),
                b: self.lo(args[1]),
            });
            return Ok(());
        }
        if ty == CTy::I128 {
            let (lo_op, hi_op, trap) = match op {
                CBinOp::Iadd => (AluOp::Add, AluOp::Adc, false),
                CBinOp::Isub => (AluOp::Sub, AluOp::Sbb, false),
                CBinOp::SaddTrap => (AluOp::Add, AluOp::Adc, true),
                CBinOp::SsubTrap => (AluOp::Sub, AluOp::Sbb, true),
                other => {
                    return Err(BackendError::new(format!("clift: {other:?} at i128")));
                }
            };
            self.cur.push(MInst::Alu {
                op: lo_op,
                w: Width::W64,
                sf: true,
                d: self.lo(res),
                s1: self.lo(args[0]),
                s2: self.lo(args[1]),
            });
            self.cur.push(MInst::Alu {
                op: hi_op,
                w: Width::W64,
                sf: true,
                d: self.hi(res),
                s1: self.hi(args[0]),
                s2: self.hi(args[1]),
            });
            if trap {
                self.cur.push(MInst::TrapIf {
                    cond: Cond::O,
                    code: 1,
                });
            }
            return Ok(());
        }
        let w = self.width(res);
        match op {
            CBinOp::Sdiv | CBinOp::Udiv | CBinOp::Srem | CBinOp::Urem => {
                self.cur.push(MInst::Div {
                    signed: matches!(op, CBinOp::Sdiv | CBinOp::Srem),
                    rem: matches!(op, CBinOp::Srem | CBinOp::Urem),
                    w,
                    d: self.lo(res),
                    a: self.lo(args[0]),
                    b: self.lo(args[1]),
                });
            }
            CBinOp::UMulHi => {
                // Pattern: fuse an adjacent same-operand Imul into MulFull
                // when the combined-multiplication extension is enabled.
                let partner = self.find_mul_partner(idx, args);
                match partner {
                    Some(lo_res) if self.mulfull_ext => {
                        // Partner already emitted a MulFull for both halves.
                        let _ = lo_res;
                    }
                    _ => {
                        let dead = self.new_vreg(RegClass::Int);
                        self.cur.push(MInst::MulFull {
                            dlo: dead,
                            dhi: self.lo(res),
                            a: self.lo(args[0]),
                            b: self.lo(args[1]),
                        });
                    }
                }
                // Without the extension this is a second, separate multiply
                // — the cost difference Table II measures.
            }
            CBinOp::Imul if self.mulfull_ext && self.has_mulhi_consumer(idx, args) => {
                // Combined multiplication: produce both halves at once.
                let hi_res = self.mulhi_result(idx, args).expect("partner");
                self.cur.push(MInst::MulFull {
                    dlo: self.lo(res),
                    dhi: self.lo(hi_res),
                    a: self.lo(args[0]),
                    b: self.lo(args[1]),
                });
            }
            CBinOp::SaddTrap | CBinOp::SsubTrap | CBinOp::SmulTrap => {
                let aop = match op {
                    CBinOp::SaddTrap => AluOp::Add,
                    CBinOp::SsubTrap => AluOp::Sub,
                    _ => AluOp::Mul,
                };
                self.cur.push(MInst::Alu {
                    op: aop,
                    w,
                    sf: true,
                    d: self.lo(res),
                    s1: self.lo(args[0]),
                    s2: self.lo(args[1]),
                });
                self.cur.push(MInst::TrapIf {
                    cond: Cond::O,
                    code: 1,
                });
            }
            _ => {
                let aop = match op {
                    CBinOp::Iadd => AluOp::Add,
                    CBinOp::Isub => AluOp::Sub,
                    CBinOp::Imul => AluOp::Mul,
                    CBinOp::Band => AluOp::And,
                    CBinOp::Bor => AluOp::Or,
                    CBinOp::Bxor => AluOp::Xor,
                    CBinOp::Ishl => AluOp::Shl,
                    CBinOp::Ushr => AluOp::Shr,
                    CBinOp::Sshr => AluOp::Sar,
                    CBinOp::Rotr => AluOp::Rotr,
                    _ => unreachable!(),
                };
                if let Some(imm) = self.as_folded_imm(args[1]) {
                    self.cur.push(MInst::AluImm {
                        op: aop,
                        w,
                        sf: false,
                        d: self.lo(res),
                        s1: self.lo(args[0]),
                        imm,
                    });
                } else {
                    self.cur.push(MInst::Alu {
                        op: aop,
                        w,
                        sf: false,
                        d: self.lo(res),
                        s1: self.lo(args[0]),
                        s2: self.lo(args[1]),
                    });
                }
            }
        }
        Ok(())
    }

    /// For a UMulHi at `idx`: the result of an earlier adjacent Imul with
    /// the same operands, if any (combined-multiplication pattern).
    fn find_mul_partner(&self, idx: u32, args: [u32; 2]) -> Option<u32> {
        if idx == 0 {
            return None;
        }
        match &self.cir.insts[idx as usize - 1] {
            CInst::Bin {
                op: CBinOp::Imul,
                args: pargs,
            } if *pargs == args => Some(self.cir.inst_result[idx as usize - 1]),
            _ => None,
        }
    }

    /// For an Imul at `idx`: whether the next instruction is a UMulHi with
    /// the same operands.
    fn has_mulhi_consumer(&self, idx: u32, args: [u32; 2]) -> bool {
        self.mulhi_result(idx, args).is_some()
    }

    fn mulhi_result(&self, idx: u32, args: [u32; 2]) -> Option<u32> {
        match self.cir.insts.get(idx as usize + 1) {
            Some(CInst::Bin {
                op: CBinOp::UMulHi,
                args: nargs,
            }) if *nargs == args => Some(self.cir.inst_result[idx as usize + 1]),
            _ => None,
        }
    }
}
