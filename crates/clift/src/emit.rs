//! Machine-code emission from allocated VCode (paper Sec. VI-C4).
//!
//! Before encoding, two preparation passes run over all instructions, as
//! the paper describes: one computing the function's clobbered registers
//! from the register allocations, and one estimating block sizes with the
//! over-approximated maximum instruction length (15 bytes) plus the moves
//! the register allocator inserted, to decide about veneers.

use qc_backend::memit::MirEmitter;
use qc_backend::mir::{Allocation, Loc, MInst, VCode};
use qc_backend::{BackendError, CompileStats};
use qc_target::Isa;

/// Emits one function, returning its code, relocations, and frame size.
pub fn emit(
    vcode: &VCode,
    alloc: &Allocation,
    isa: Isa,
    func_names: &[String],
    stats: &mut CompileStats,
) -> Result<(Vec<u8>, Vec<qc_target::Reloc>, u32), BackendError> {
    // --- Pre-pass 1: clobbered registers. ---
    let mut clobbered = 0u64;
    for insts in &vcode.blocks {
        for inst in insts {
            inst.for_each_def(|v| match alloc.locs[v as usize] {
                Loc::R(r) => clobbered |= 1 << r.num(),
                Loc::F(f) => clobbered |= 1 << (32 + f.num()),
                Loc::Spill(_) => {}
            });
        }
    }
    stats.bump("clobber_bits", clobbered.count_ones() as u64);

    // --- Pre-pass 2: veneer size estimation (15-byte over-approximation
    // plus allocator-inserted moves). ---
    let mut est = 0u64;
    for insts in &vcode.blocks {
        for inst in insts {
            est += 15;
            if let MInst::ParMove { moves } = inst {
                est += 15 * moves.len() as u64;
            }
        }
    }
    stats.bump("estimated_bytes", est);

    let mut e = MirEmitter::new(isa, alloc, func_names, vcode.blocks.len(), 0);
    e.prologue(&vcode.params);
    for (b, insts) in vcode.blocks.iter().enumerate() {
        e.bind_block(b);
        for inst in insts {
            e.emit_inst(inst)?;
        }
    }
    Ok(e.finish())
}
