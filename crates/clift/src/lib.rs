//! Clift: the Cranelift-analog fast compiler back-end (paper Sec. VI).
//!
//! Compilation pipeline, matching Fig. 4's phase structure:
//!
//! 1. **IRGen** — Umbra-IR → CIR, two passes, hash-map value mapping,
//!    `getelementptr` lowered to integer arithmetic, strings to `i64`
//!    pairs, runtime addresses hard-wired into the IR.
//! 2. **IRPasses** — CFG/dominator analysis over CIR.
//! 3. **ISelPrepare** — three passes: vreg/regclass assignment, side-effect
//!    partitioning, use counts.
//! 4. **ISel** — tree-matching selection into linear VCode.
//! 5. **RegAlloc** — linear scan over live-range bundles with per-register
//!    B-trees (the largest phase, as in the paper).
//! 6. **Emit** — clobber and veneer-estimation pre-passes, then encoding.
//! 7. **Finish** — relocations applied after all functions are compiled.
//!
//! Functions are compiled one at a time (Cranelift can only compile one
//! function at a time). The optional extension instructions of Table II
//! (`crc32`, overflow arithmetic, combined full multiplication) are
//! controlled by [`CliftExtensions`]; without them the translator emits
//! helper calls into the runtime.

mod cir;
mod emit;
mod lower;
mod regalloc;

/// Compiles one IR function to machine code parts (bytes, relocations,
/// frame size). Used by the C back-end, whose middle end shares this
/// code-generation infrastructure before the assembler round trip.
pub fn compile_function_parts(
    func: &qc_ir::Function,
    func_names: &[String],
    isa: Isa,
) -> Result<(Vec<u8>, Vec<qc_target::Reloc>, u32), BackendError> {
    let flags = ExtFlags {
        crc32: true,
        overflow_arith: true,
        mulfull: true,
    };
    let cir = cir::translate(func, flags)?;
    let vcode = lower::lower(&cir, true)?;
    let alloc = regalloc::allocate(&vcode, isa);
    let mut stats = CompileStats::default();
    emit::emit(&vcode, &alloc, isa, func_names, &mut stats)
}

pub use cir::ExtFlags;
pub use regalloc::allocate;

use qc_backend::{
    Backend, BackendError, CodeArtifact, CompileStats, Executable, NativeArtifact, NativeExecutable,
};
use qc_ir::Module;
use qc_runtime::resolve_runtime;
use qc_target::{ImageBuilder, Isa, UnwindEntry};
use qc_timing::TimeTrace;

/// Optional CIR extension instructions (Table II ablation).
#[derive(Debug, Clone, Copy)]
pub struct CliftExtensions {
    /// Native `crc32` instruction instead of a helper call.
    pub crc32: bool,
    /// Native overflow-checked arithmetic instead of helper calls.
    pub overflow_arith: bool,
    /// Combined full-multiplication instruction.
    pub mulfull: bool,
}

impl Default for CliftExtensions {
    fn default() -> Self {
        CliftExtensions {
            crc32: true,
            overflow_arith: true,
            mulfull: true,
        }
    }
}

/// The Cranelift-analog back-end.
#[derive(Debug)]
pub struct CliftBackend {
    isa: Isa,
    ext: CliftExtensions,
}

impl CliftBackend {
    /// Creates the back-end with all extension instructions enabled.
    pub fn new(isa: Isa) -> Self {
        Self::with_extensions(isa, CliftExtensions::default())
    }

    /// Creates the back-end with explicit extension instructions.
    pub fn with_extensions(isa: Isa, ext: CliftExtensions) -> Self {
        CliftBackend { isa, ext }
    }
}

impl Backend for CliftBackend {
    fn name(&self) -> &'static str {
        "Clift"
    }

    fn isa(&self) -> Isa {
        self.isa
    }

    fn config_fingerprint(&self) -> u64 {
        u64::from(self.ext.crc32)
            | u64::from(self.ext.overflow_arith) << 1
            | u64::from(self.ext.mulfull) << 2
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        let (image, mut stats) = self
            .build_parts(module, trace)
            .map_err(|e| e.in_backend(self.name()))?;
        // 7. Finish: relocations applied after all functions are compiled.
        let linked = {
            let _t = trace.scope("finish");
            image
                .link(&|name| resolve_runtime(name))
                .map_err(|e| BackendError::new(e.to_string()).in_backend(self.name()))?
        };
        stats.code_bytes = linked.len();
        Ok(Box::new(NativeExecutable::new(linked, stats)))
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        let (image, stats) = self
            .build_parts(module, trace)
            .map_err(|e| e.in_backend(self.name()))?;
        Ok(Some(Box::new(NativeArtifact::new(image, stats))))
    }
}

impl CliftBackend {
    /// Phases 1–6 of the pipeline (everything but the final link),
    /// producing the unlinked image; `compile` links it immediately,
    /// `compile_artifact` defers linking to instantiation.
    fn build_parts(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<(ImageBuilder, CompileStats), BackendError> {
        let mut image = ImageBuilder::new(self.isa);
        let mut stats = CompileStats::default();
        let func_names: Vec<String> = module.functions().iter().map(|f| f.name.clone()).collect();
        let flags = ExtFlags {
            crc32: self.ext.crc32,
            overflow_arith: self.ext.overflow_arith,
            mulfull: self.ext.mulfull,
        };
        for func in module.functions() {
            // 1. IRGen.
            let cir = {
                let _t = trace.scope("irgen");
                cir::translate(func, flags)?
            };
            // 2. IR analyses (domtree/CFG over CIR).
            {
                let _t = trace.scope("irpasses");
                let n = cir.num_blocks();
                let succs: Vec<Vec<u32>> = (0..n).map(|b| cir.succs(b as u32)).collect();
                let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
                for (b, ss) in succs.iter().enumerate() {
                    for &s in ss {
                        preds[s as usize].push(b as u32);
                    }
                }
                // Iterative dominator computation (block index order
                // approximates RPO in this layout).
                let mut idom = vec![u32::MAX; n];
                idom[0] = 0;
                let mut changed = true;
                while changed {
                    changed = false;
                    for b in 1..n {
                        let mut new = u32::MAX;
                        for &p in &preds[b] {
                            if idom[p as usize] == u32::MAX {
                                continue;
                            }
                            new = if new == u32::MAX {
                                p
                            } else {
                                let (mut x, mut y) = (new, p);
                                while x != y {
                                    while x > y {
                                        x = idom[x as usize];
                                    }
                                    while y > x {
                                        y = idom[y as usize];
                                    }
                                }
                                x
                            };
                        }
                        if new != u32::MAX && idom[b] != new {
                            idom[b] = new;
                            changed = true;
                        }
                    }
                }
                stats.bump("cir_blocks", n as u64);
            }
            // 3 + 4. ISel preparation and tree-matching selection.
            let vcode = {
                let _t = trace.scope("iselprep_isel");
                lower::lower(&cir, flags.mulfull)?
            };
            stats.bump("brif_fusions", vcode.fusions.0);
            stats.bump("const_folds", vcode.fusions.1);
            // 5. Register allocation.
            let alloc = {
                let _t = trace.scope("regalloc");
                regalloc::allocate(&vcode, self.isa)
            };
            stats.bump("spilled_bundles", alloc.spills);
            // 6. Emission.
            let (code, relocs, frame) = {
                let _t = trace.scope("emit");
                emit::emit(&vcode, &alloc, self.isa, &func_names, &mut stats)?
            };
            let len = code.len();
            let off = image.add_function(&func.name, code, relocs);
            // Unwind info is generated manually (paper Sec. VI-B: the JIT
            // wrapper does not produce it).
            image.add_unwind(
                off,
                UnwindEntry {
                    start: 0,
                    end: len,
                    frame_size: frame,
                    synchronous_only: false,
                },
            );
        }
        stats.functions = module.len();
        Ok((image, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{CmpOp, FunctionBuilder, Opcode, Signature, Type};
    use qc_runtime::RuntimeState;
    use qc_target::Trap;

    fn run_on(
        isa: Isa,
        ext: CliftExtensions,
        build: impl FnOnce(&mut FunctionBuilder),
        sig: Signature,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let mut b = FunctionBuilder::new("f", sig);
        build(&mut b);
        let f = b.finish();
        qc_ir::verify_function(&f).unwrap();
        let mut m = Module::new("m");
        m.push_function(f);
        let backend = CliftBackend::with_extensions(isa, ext);
        let mut exe = match backend.compile(&m, &TimeTrace::disabled()) {
            Ok(e) => e,
            Err(e) => panic!("{e}"),
        };
        let mut state = RuntimeState::new();
        exe.call(&mut state, "f", args)
    }

    fn run_both(
        build: impl Fn(&mut FunctionBuilder) + Copy,
        sig: Signature,
        args: &[u64],
    ) -> [u64; 2] {
        let mut out = None;
        for isa in [Isa::Tx64, Isa::Ta64] {
            let r = run_on(isa, CliftExtensions::default(), build, sig.clone(), args)
                .unwrap_or_else(|t| panic!("{isa}: {t}"));
            if let Some(prev) = out {
                assert_eq!(prev, r, "ISA mismatch");
            }
            out = Some(r);
        }
        out.unwrap()
    }

    #[test]
    fn arithmetic_on_both_isas() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_both(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let s = b.add(Type::I64, x, y);
                let c = b.iconst(Type::I64, 7);
                let m = b.mul(Type::I64, s, c);
                b.ret(Some(m));
            },
            sig,
            &[5, 6],
        );
        assert_eq!(r[0], 77);
    }

    #[test]
    fn loops_with_phis_on_both_isas() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_both(
            |b| {
                let entry = b.entry_block();
                let header = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                b.switch_to(entry);
                let zero = b.iconst(Type::I64, 0);
                b.jump(header);
                b.switch_to(header);
                let i = b.phi(Type::I64, vec![(entry, zero)]);
                let s = b.phi(Type::I64, vec![(entry, zero)]);
                let n = b.param(0);
                let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
                b.branch(c, body, exit);
                b.switch_to(body);
                let s2 = b.add(Type::I64, s, i);
                let one = b.iconst(Type::I64, 1);
                let i2 = b.add(Type::I64, i, one);
                b.phi_add_incoming(i, body, i2);
                b.phi_add_incoming(s, body, s2);
                b.jump(header);
                b.switch_to(exit);
                b.ret(Some(s));
            },
            sig,
            &[100],
        );
        assert_eq!(r[0], 4950);
    }

    #[test]
    fn crc32_with_and_without_extension() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let build = |b: &mut FunctionBuilder| {
            let e = b.entry_block();
            b.switch_to(e);
            let (x, y) = (b.param(0), b.param(1));
            let c = b.crc32(x, y);
            b.ret(Some(c));
        };
        let expected = qc_target::crc32c_u64(3, 12345);
        for crc32 in [true, false] {
            let ext = CliftExtensions {
                crc32,
                ..Default::default()
            };
            let r = run_on(Isa::Tx64, ext, build, sig.clone(), &[3, 12345]).unwrap();
            assert_eq!(r[0], expected, "crc32 ext={crc32}");
        }
    }

    #[test]
    fn overflow_arith_with_and_without_extension() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let build = |b: &mut FunctionBuilder| {
            let e = b.entry_block();
            b.switch_to(e);
            let (x, y) = (b.param(0), b.param(1));
            let s = b.binary(Opcode::SAddTrap, Type::I64, x, y);
            b.ret(Some(s));
        };
        for ovf in [true, false] {
            let ext = CliftExtensions {
                overflow_arith: ovf,
                ..Default::default()
            };
            let ok = run_on(Isa::Tx64, ext, build, sig.clone(), &[40, 2]).unwrap();
            assert_eq!(ok[0], 42);
            let trap = run_on(Isa::Tx64, ext, build, sig.clone(), &[i64::MAX as u64, 1]);
            assert_eq!(trap.unwrap_err(), Trap::Overflow, "ext={ovf}");
        }
    }

    #[test]
    fn lmulfold_with_and_without_mulfull() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let build = |b: &mut FunctionBuilder| {
            let e = b.entry_block();
            b.switch_to(e);
            let (x, y) = (b.param(0), b.param(1));
            let m = b.long_mul_fold(x, y);
            b.ret(Some(m));
        };
        let expected = qc_runtime::long_mul_fold(0xDEADBEEF, 0x12345678);
        for mf in [true, false] {
            let ext = CliftExtensions {
                mulfull: mf,
                ..Default::default()
            };
            let r = run_on(
                Isa::Tx64,
                ext,
                build,
                sig.clone(),
                &[0xDEADBEEF, 0x12345678],
            )
            .unwrap();
            assert_eq!(r[0], expected, "mulfull={mf}");
        }
    }

    #[test]
    fn i128_arithmetic_and_calls() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I128);
        let r = run_both(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let wx = b.sext(Type::I128, x);
                let wy = b.sext(Type::I128, y);
                let s = b.binary(Opcode::SAddTrap, Type::I128, wx, wy);
                let p = b.binary(Opcode::SMulTrap, Type::I128, s, wy);
                b.ret(Some(p));
            },
            sig,
            &[100, 200],
        );
        assert_eq!(r[0], 60_000);
        assert_eq!(r[1], 0);
    }

    #[test]
    fn string_params_and_runtime_calls() {
        let mut state = RuntimeState::new();
        let a = state.intern_string("clift string beyond inline");
        let b2 = state.intern_string("clift string beyond inline");
        let sig = Signature::new(vec![Type::String, Type::String], Type::Bool);
        let mut bld = FunctionBuilder::new("f", sig);
        let ext = bld.declare_ext_func(qc_ir::ExtFuncDecl {
            name: "rt_str_eq".into(),
            sig: Signature::new(vec![Type::String, Type::String], Type::Bool),
        });
        let e = bld.entry_block();
        bld.switch_to(e);
        let (x, y) = (bld.param(0), bld.param(1));
        let r = bld.call(ext, vec![x, y]).unwrap();
        bld.ret(Some(r));
        let mut m = Module::new("m");
        m.push_function(bld.finish());
        for isa in [Isa::Tx64, Isa::Ta64] {
            let mut exe = CliftBackend::new(isa)
                .compile(&m, &TimeTrace::disabled())
                .unwrap();
            let r = exe
                .call(&mut state, "f", &[a.lo, a.hi, b2.lo, b2.hi])
                .unwrap();
            assert_eq!(r[0], 1, "{isa}");
        }
    }

    #[test]
    fn register_pressure_spills() {
        // More live values than registers forces bundle spilling.
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_both(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let x = b.param(0);
                let mut vals = vec![x];
                for i in 0..40 {
                    let c = b.iconst(Type::I64, i + 1);
                    let last = vals[vals.len() - 1];
                    let v = b.add(Type::I64, last, c);
                    vals.push(v);
                }
                let mut acc = vals[0];
                for &v in &vals[1..] {
                    acc = b.add(Type::I64, acc, v);
                }
                b.ret(Some(acc));
            },
            sig,
            &[0],
        );
        let expected: i64 = (0..=40).map(|i| (1..=i).sum::<i64>()).sum();
        assert_eq!(r[0] as i64, expected);
    }

    #[test]
    fn phase_trace_covers_pipeline() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("f", sig);
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let y = b.add(Type::I64, x, x);
        b.ret(Some(y));
        let mut m = Module::new("m");
        m.push_function(b.finish());
        let trace = TimeTrace::new();
        let _ = CliftBackend::new(Isa::Tx64).compile(&m, &trace).unwrap();
        let report = trace.report();
        for phase in [
            "irgen",
            "irpasses",
            "iselprep_isel",
            "regalloc",
            "emit",
            "finish",
        ] {
            assert!(report.total(phase).is_some(), "missing phase {phase}");
        }
    }
}
