//! Property tests on the linear-scan register allocator: on straight-line
//! code without move coalescing, two values that are simultaneously live
//! must never share a physical register, and every spill location must be
//! inside the reported frame.

use proptest::prelude::*;
use qc_backend::mir::{Loc, MInst, VCode, VReg};
use qc_clift::allocate;
use qc_target::{AluOp, Isa, Width};

/// Builds straight-line three-address code: two params, then `n` ALU
/// instructions each defining a fresh vreg from two earlier ones (no
/// register-register moves, so no bundles are merged), ending in a
/// return of the last value.
fn straightline(picks: &[(usize, usize)]) -> VCode {
    let mut insts = Vec::new();
    let mut next: VReg = 2;
    for &(a, b) in picks {
        let s1 = (a % next as usize) as VReg;
        let s2 = (b % next as usize) as VReg;
        insts.push(MInst::Alu {
            op: AluOp::Add,
            w: Width::W64,
            sf: false,
            d: next,
            s1,
            s2,
        });
        next += 1;
    }
    insts.push(MInst::Ret {
        vals: vec![next - 1],
    });
    VCode {
        name: "f".to_string(),
        blocks: vec![insts],
        succs: vec![vec![]],
        classes: vec![qc_backend::mir::RegClass::Int; next as usize],
        params: vec![0, 1],
        fusions: (0, 0),
    }
}

/// Def index and last-use index of every vreg, by linear scan over the
/// single block (params are defined before the first instruction).
fn ranges(vcode: &VCode) -> Vec<(usize, usize)> {
    let n = vcode.classes.len();
    let mut def = vec![0usize; n];
    let mut last = vec![0usize; n];
    for (i, inst) in vcode.blocks[0].iter().enumerate() {
        inst.for_each_def(|v| def[v as usize] = i + 1);
        inst.for_each_use(|v| last[v as usize] = last[v as usize].max(i + 1));
    }
    def.into_iter().zip(last).collect()
}

fn check_no_overlap(vcode: &VCode, isa: Isa) -> Result<(), String> {
    let alloc = allocate(vcode, isa);
    let rs = ranges(vcode);
    for a in 0..rs.len() {
        for b in (a + 1)..rs.len() {
            let (Loc::R(ra), Loc::R(rb)) = (alloc.locs[a], alloc.locs[b]) else {
                continue;
            };
            if ra != rb {
                continue;
            }
            // Straight-line interference: b is defined while a is live.
            let ((da, la), (db, lb)) = (rs[a], rs[b]);
            let interfere = da < db && db < la || db < da && da < lb;
            if interfere {
                return Err(format!(
                    "{isa:?}: v{a} (def {da}, last {la}) and v{b} (def {db}, last {lb}) \
                     both in {ra:?}"
                ));
            }
        }
    }
    for loc in &alloc.locs {
        if let Loc::Spill(s) = loc {
            if *s >= alloc.spill_slots {
                return Err(format!("{isa:?}: spill slot {s} >= {}", alloc.spill_slots));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn no_two_live_values_share_a_register(
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..80),
    ) {
        let vcode = straightline(&picks);
        for isa in [Isa::Tx64, Isa::Ta64] {
            if let Err(e) = check_no_overlap(&vcode, isa) {
                prop_assert!(false, "{e}");
            }
        }
    }
}

#[test]
fn high_pressure_forces_spills() {
    // 64 values defined up front, all used at the end: far beyond both
    // register files, so the allocator must report spills.
    let picks: Vec<(usize, usize)> = (0..64).map(|_| (0, 1)).collect();
    let mut all: Vec<(usize, usize)> = picks;
    // Chain the earlier values back in so their ranges extend to the end.
    for i in 0..60 {
        all.push((2 + i, 3 + i));
    }
    let vcode = straightline(&all);
    for isa in [Isa::Tx64, Isa::Ta64] {
        let alloc = allocate(&vcode, isa);
        assert!(alloc.spills > 0, "{isa:?}: expected spills under pressure");
        check_no_overlap(&vcode, isa).unwrap();
    }
}
