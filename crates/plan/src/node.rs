//! Logical plan operators with schema inference.

use crate::expr::Expr;
use qc_storage::ColumnType;
use std::error::Error;
use std::fmt;

/// A table schema: ordered (column name, type) pairs.
pub type TableSchema = Vec<(String, ColumnType)>;

/// Catalog lookup used during planning: table name → schema, or `None`
/// for an unknown table.
pub type CatalogFn<'a> = dyn Fn(&str) -> Option<TableSchema> + 'a;

/// Aggregate functions for [`PlanNode::GroupBy`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)` — result `i64`.
    CountStar,
    /// `SUM(expr)` — decimals sum at their scale, integers at `i64`.
    Sum(Expr),
    /// `MIN(expr)`.
    Min(Expr),
    /// `MAX(expr)`.
    Max(Expr),
    /// `AVG(expr)` — result `f64`.
    Avg(Expr),
}

/// Error produced by plan validation/schema inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Problem description.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl Error for PlanError {}

fn err<T>(message: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError {
        message: message.into(),
    })
}

/// A logical query plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Base-table scan with projected columns and an optional pushed-down
    /// filter.
    Scan {
        /// Table name.
        table: String,
        /// Projected column names.
        columns: Vec<String>,
        /// Pushed-down predicate.
        filter: Option<Expr>,
    },
    /// Tuple filter.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate (`bool`).
        predicate: Expr,
    },
    /// Appends computed columns to the tuple.
    Map {
        /// Input.
        input: Box<PlanNode>,
        /// `(name, expression)` pairs appended to the schema.
        exprs: Vec<(String, Expr)>,
    },
    /// Inner hash join. The build side is materialized into a hash table;
    /// the probe side streams.
    HashJoin {
        /// Build (materialized) input.
        build: Box<PlanNode>,
        /// Probe (streaming) input.
        probe: Box<PlanNode>,
        /// Equi-join key columns on the build side.
        build_keys: Vec<String>,
        /// Equi-join key columns on the probe side (same count/types).
        probe_keys: Vec<String>,
        /// Build-side columns carried into the output (key columns are
        /// carried automatically).
        payload: Vec<String>,
    },
    /// Hash aggregation.
    GroupBy {
        /// Input.
        input: Box<PlanNode>,
        /// Grouping key columns.
        keys: Vec<String>,
        /// `(output name, aggregate)` pairs.
        aggs: Vec<(String, AggFunc)>,
    },
    /// Sort (with optional limit), a full pipeline breaker.
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// `(column, ascending)` sort keys.
        keys: Vec<(String, bool)>,
        /// Optional row limit applied after sorting.
        limit: Option<usize>,
    },
}

impl PlanNode {
    /// Convenience constructor for a scan.
    pub fn scan(table: &str, columns: &[&str]) -> PlanNode {
        PlanNode::Scan {
            table: table.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            filter: None,
        }
    }

    /// Convenience constructor for a filtered scan.
    pub fn scan_filtered(table: &str, columns: &[&str], filter: Expr) -> PlanNode {
        PlanNode::Scan {
            table: table.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            filter: Some(filter),
        }
    }

    /// Wraps `self` in a filter.
    pub fn filter(self, predicate: Expr) -> PlanNode {
        PlanNode::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps `self` in a map.
    pub fn map(self, exprs: Vec<(&str, Expr)>) -> PlanNode {
        PlanNode::Map {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
        }
    }

    /// Joins `build` into `self` (probe side).
    pub fn hash_join(
        self,
        build: PlanNode,
        probe_keys: &[&str],
        build_keys: &[&str],
        payload: &[&str],
    ) -> PlanNode {
        PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(self),
            build_keys: build_keys.iter().map(|s| s.to_string()).collect(),
            probe_keys: probe_keys.iter().map(|s| s.to_string()).collect(),
            payload: payload.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Groups `self`.
    pub fn group_by(self, keys: &[&str], aggs: Vec<(&str, AggFunc)>) -> PlanNode {
        PlanNode::GroupBy {
            input: Box::new(self),
            keys: keys.iter().map(|s| s.to_string()).collect(),
            aggs: aggs.into_iter().map(|(n, a)| (n.to_string(), a)).collect(),
        }
    }

    /// Sorts `self`.
    pub fn sort(self, keys: &[(&str, bool)], limit: Option<usize>) -> PlanNode {
        PlanNode::Sort {
            input: Box::new(self),
            keys: keys.iter().map(|&(n, asc)| (n.to_string(), asc)).collect(),
            limit,
        }
    }

    /// Infers the output schema against a database catalog lookup.
    ///
    /// # Errors
    /// Returns a [`PlanError`] for unknown tables/columns or type errors.
    pub fn schema(&self, catalog: &CatalogFn<'_>) -> Result<Vec<(String, ColumnType)>, PlanError> {
        match self {
            PlanNode::Scan {
                table,
                columns,
                filter,
            } => {
                let Some(table_schema) = catalog(table) else {
                    return err(format!("unknown table `{table}`"));
                };
                let mut out = Vec::new();
                for c in columns {
                    match table_schema.iter().find(|(n, _)| n == c) {
                        Some(entry) => out.push(entry.clone()),
                        None => return err(format!("unknown column `{c}` in `{table}`")),
                    }
                }
                if let Some(f) = filter {
                    // The filter may reference any table column, not just
                    // the projected ones.
                    match f.infer_type(&table_schema) {
                        Ok(ColumnType::Bool) => {}
                        Ok(t) => return err(format!("scan filter has type {t}")),
                        Err(m) => return err(m),
                    }
                }
                Ok(out)
            }
            PlanNode::Filter { input, predicate } => {
                let schema = input.schema(catalog)?;
                match predicate.infer_type(&schema) {
                    Ok(ColumnType::Bool) => Ok(schema),
                    Ok(t) => err(format!("filter has type {t}")),
                    Err(m) => err(m),
                }
            }
            PlanNode::Map { input, exprs } => {
                let mut schema = input.schema(catalog)?;
                for (name, e) in exprs {
                    let ty = e
                        .infer_type(&schema)
                        .map_err(|m| PlanError { message: m })?;
                    schema.push((name.clone(), ty));
                }
                Ok(schema)
            }
            PlanNode::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                payload,
            } => {
                let bs = build.schema(catalog)?;
                let ps = probe.schema(catalog)?;
                if build_keys.len() != probe_keys.len() || build_keys.is_empty() {
                    return err("join key count mismatch");
                }
                for (bk, pk) in build_keys.iter().zip(probe_keys) {
                    let bt = bs.iter().find(|(n, _)| n == bk);
                    let pt = ps.iter().find(|(n, _)| n == pk);
                    match (bt, pt) {
                        (Some((_, bt)), Some((_, pt))) if bt == pt => {}
                        (Some(_), Some(_)) => {
                            return err(format!("join key type mismatch {bk}/{pk}"))
                        }
                        _ => return err(format!("unknown join key {bk}/{pk}")),
                    }
                }
                let mut out = ps;
                for p in payload {
                    match bs.iter().find(|(n, _)| n == p) {
                        Some(entry) => {
                            if out.iter().any(|(n, _)| n == p) {
                                return err(format!("duplicate output column `{p}`"));
                            }
                            out.push(entry.clone());
                        }
                        None => return err(format!("unknown payload column `{p}`")),
                    }
                }
                Ok(out)
            }
            PlanNode::GroupBy { input, keys, aggs } => {
                let schema = input.schema(catalog)?;
                let mut out = Vec::new();
                for k in keys {
                    match schema.iter().find(|(n, _)| n == k) {
                        Some(e) => out.push(e.clone()),
                        None => return err(format!("unknown group key `{k}`")),
                    }
                }
                for (name, agg) in aggs {
                    let ty = match agg {
                        AggFunc::CountStar => ColumnType::I64,
                        AggFunc::Avg(e) => {
                            e.infer_type(&schema)
                                .map_err(|m| PlanError { message: m })?;
                            ColumnType::F64
                        }
                        AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                            let t = e
                                .infer_type(&schema)
                                .map_err(|m| PlanError { message: m })?;
                            match t {
                                ColumnType::Decimal(s) => ColumnType::Decimal(s),
                                ColumnType::I64 | ColumnType::I32 | ColumnType::Date => {
                                    ColumnType::I64
                                }
                                ColumnType::F64 => ColumnType::F64,
                                other => return err(format!("cannot aggregate type {other}")),
                            }
                        }
                    };
                    out.push((name.clone(), ty));
                }
                Ok(out)
            }
            PlanNode::Sort { input, keys, .. } => {
                let schema = input.schema(catalog)?;
                for (k, _) in keys {
                    if !schema.iter().any(|(n, _)| n == k) {
                        return err(format!("unknown sort key `{k}`"));
                    }
                }
                Ok(schema)
            }
        }
    }

    /// Renders the plan as canonical, deterministic text — the engine's
    /// stand-in for SQL query text, used as the prepared-statement cache
    /// key. Two plans render identically exactly when they are equal:
    /// every operator, column list, expression, and option is spelled
    /// out in a fixed order with unambiguous delimiters.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write;
        fn agg_text(out: &mut String, agg: &AggFunc) {
            let _ = match agg {
                AggFunc::CountStar => write!(out, "count(*)"),
                AggFunc::Sum(e) => write!(out, "sum({e})"),
                AggFunc::Min(e) => write!(out, "min({e})"),
                AggFunc::Max(e) => write!(out, "max({e})"),
                AggFunc::Avg(e) => write!(out, "avg({e})"),
            };
        }
        fn node_text(out: &mut String, node: &PlanNode) {
            match node {
                PlanNode::Scan {
                    table,
                    columns,
                    filter,
                } => {
                    let _ = write!(out, "scan({table};{}", columns.join(","));
                    if let Some(f) = filter {
                        let _ = write!(out, ";where {f}");
                    }
                    out.push(')');
                }
                PlanNode::Filter { input, predicate } => {
                    let _ = write!(out, "filter({predicate};");
                    node_text(out, input);
                    out.push(')');
                }
                PlanNode::Map { input, exprs } => {
                    out.push_str("map(");
                    for (i, (name, e)) in exprs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{name}={e}");
                    }
                    out.push(';');
                    node_text(out, input);
                    out.push(')');
                }
                PlanNode::HashJoin {
                    build,
                    probe,
                    build_keys,
                    probe_keys,
                    payload,
                } => {
                    let _ = write!(
                        out,
                        "join({}={};payload {};build ",
                        probe_keys.join(","),
                        build_keys.join(","),
                        payload.join(","),
                    );
                    node_text(out, build);
                    out.push_str(";probe ");
                    node_text(out, probe);
                    out.push(')');
                }
                PlanNode::GroupBy { input, keys, aggs } => {
                    let _ = write!(out, "groupby({};", keys.join(","));
                    for (i, (name, agg)) in aggs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{name}=");
                        agg_text(out, agg);
                    }
                    out.push(';');
                    node_text(out, input);
                    out.push(')');
                }
                PlanNode::Sort { input, keys, limit } => {
                    out.push_str("sort(");
                    for (i, (name, asc)) in keys.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{name} {}", if *asc { "asc" } else { "desc" });
                    }
                    if let Some(l) = limit {
                        let _ = write!(out, ";limit {l}");
                    }
                    out.push(';');
                    node_text(out, input);
                    out.push(')');
                }
            }
        }
        let mut out = String::new();
        node_text(&mut out, self);
        out
    }

    /// Counts the pipeline breakers below (and including) this node —
    /// a quick complexity metric used by the workload generators.
    pub fn breaker_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Filter { input, .. } | PlanNode::Map { input, .. } => input.breaker_count(),
            PlanNode::HashJoin { build, probe, .. } => {
                1 + build.breaker_count() + probe.breaker_count()
            }
            PlanNode::GroupBy { input, .. } | PlanNode::Sort { input, .. } => {
                1 + input.breaker_count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_date};

    fn catalog(name: &str) -> Option<Vec<(String, ColumnType)>> {
        match name {
            "t" => Some(vec![
                ("k".into(), ColumnType::I64),
                ("d".into(), ColumnType::Date),
                ("v".into(), ColumnType::Decimal(2)),
            ]),
            "dim" => Some(vec![
                ("k".into(), ColumnType::I64),
                ("label".into(), ColumnType::Str),
            ]),
            _ => None,
        }
    }

    #[test]
    fn scan_schema_projects_columns() {
        let p = PlanNode::scan_filtered("t", &["k", "v"], col("d").lt(lit_date(10)));
        let s = p.schema(&catalog).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], ("v".into(), ColumnType::Decimal(2)));
    }

    #[test]
    fn join_appends_payload() {
        let p = PlanNode::scan("t", &["k", "v"]).hash_join(
            PlanNode::scan("dim", &["k", "label"]),
            &["k"],
            &["k"],
            &["label"],
        );
        let s = p.schema(&catalog).unwrap();
        assert_eq!(
            s.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["k", "v", "label"]
        );
        assert_eq!(p.breaker_count(), 1);
    }

    #[test]
    fn group_by_schema() {
        let p = PlanNode::scan("t", &["k", "v"]).group_by(
            &["k"],
            vec![
                ("total", AggFunc::Sum(col("v"))),
                ("n", AggFunc::CountStar),
                ("avg_v", AggFunc::Avg(col("v"))),
            ],
        );
        let s = p.schema(&catalog).unwrap();
        assert_eq!(s[1], ("total".into(), ColumnType::Decimal(2)));
        assert_eq!(s[2], ("n".into(), ColumnType::I64));
        assert_eq!(s[3], ("avg_v".into(), ColumnType::F64));
    }

    #[test]
    fn errors_on_unknown_entities() {
        assert!(PlanNode::scan("missing", &["x"]).schema(&catalog).is_err());
        assert!(PlanNode::scan("t", &["x"]).schema(&catalog).is_err());
        let bad_sort = PlanNode::scan("t", &["k"]).sort(&[("nope", true)], None);
        assert!(bad_sort.schema(&catalog).is_err());
        let bad_join = PlanNode::scan("t", &["k"]).hash_join(
            PlanNode::scan("dim", &["label"]),
            &["k"],
            &["label"],
            &[],
        );
        assert!(bad_join.schema(&catalog).is_err());
    }

    #[test]
    fn filter_must_be_bool() {
        let p = PlanNode::scan("t", &["k"]).filter(col("k"));
        assert!(p.schema(&catalog).is_err());
    }
}
