//! Typed scalar expressions over the current tuple.

use qc_storage::ColumnType;
use std::fmt;

/// Arithmetic operators. All arithmetic on user data is overflow-checked
/// (paper Sec. III-A): integer/decimal operations trap on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (decimal result scale is the sum of input scales).
    Mul,
    /// Division (decimals: numerator pre-scaled by the divisor's scale).
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// A scalar expression evaluated per tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column of the current tuple scope, by name.
    Column(String),
    /// 64-bit integer literal.
    LitI64(i64),
    /// 32-bit integer literal.
    LitI32(i32),
    /// Decimal literal (raw value, scale).
    LitDec(i128, u8),
    /// Float literal.
    LitF64(f64),
    /// Date literal (days since epoch).
    LitDate(i32),
    /// String literal.
    LitStr(String),
    /// Boolean literal.
    LitBool(bool),
    /// Overflow-checked arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison.
    Cmp(CmpKind, Box<Expr>, Box<Expr>),
    /// Logical and (non-short-circuiting in generated code is allowed).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// `LIKE 'x%'`.
    StrPrefix(Box<Expr>, Box<Expr>),
    /// `LIKE '%x%'`.
    StrContains(Box<Expr>, Box<Expr>),
    /// Conversion of an integer/decimal/date value to `f64` (decimals
    /// convert their *raw* value; scale handling is the caller's job).
    CastF64(Box<Expr>),
}

/// Column reference.
pub fn col(name: &str) -> Expr {
    Expr::Column(name.to_string())
}

/// 64-bit integer literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::LitI64(v)
}

/// 32-bit integer literal.
pub fn lit_i32(v: i32) -> Expr {
    Expr::LitI32(v)
}

/// Decimal literal from raw value and scale (`lit_dec(150, 2)` = 1.50).
pub fn lit_dec(raw: i128, scale: u8) -> Expr {
    Expr::LitDec(raw, scale)
}

/// Float literal.
pub fn lit_f64(v: f64) -> Expr {
    Expr::LitF64(v)
}

/// Date literal (days since epoch).
pub fn lit_date(days: i32) -> Expr {
    Expr::LitDate(days)
}

/// String literal.
pub fn lit_str(s: &str) -> Expr {
    Expr::LitStr(s.to_string())
}

/// Boolean literal.
pub fn lit_bool(b: bool) -> Expr {
    Expr::LitBool(b)
}

// `add`/`sub`/`mul`/`div` intentionally mirror SQL arithmetic by name;
// they build AST nodes rather than computing, so the `std::ops` traits
// (whose contracts imply evaluation) are not implemented.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(rhs))
    }

    /// Comparison.
    pub fn cmp(self, op: CmpKind, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.cmp(CmpKind::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.cmp(CmpKind::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpKind::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.cmp(CmpKind::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpKind::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpKind::Ge, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self LIKE 'rhs%'`.
    pub fn starts_with(self, rhs: Expr) -> Expr {
        Expr::StrPrefix(Box::new(self), Box::new(rhs))
    }

    /// `self LIKE '%rhs%'`.
    pub fn contains(self, rhs: Expr) -> Expr {
        Expr::StrContains(Box::new(self), Box::new(rhs))
    }

    /// `CAST(self AS f64)` of the raw value.
    pub fn cast_f64(self) -> Expr {
        Expr::CastF64(Box::new(self))
    }

    /// Infers the result type against a tuple scope.
    ///
    /// # Errors
    /// Returns a message for unknown columns or type mismatches.
    pub fn infer_type(&self, scope: &[(String, ColumnType)]) -> Result<ColumnType, String> {
        use ColumnType as T;
        match self {
            Expr::Column(name) => scope
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, t)| t)
                .ok_or_else(|| format!("unknown column `{name}`")),
            Expr::LitI64(_) => Ok(T::I64),
            Expr::LitI32(_) => Ok(T::I32),
            Expr::LitDec(_, s) => Ok(T::Decimal(*s)),
            Expr::LitF64(_) => Ok(T::F64),
            Expr::LitDate(_) => Ok(T::Date),
            Expr::LitStr(_) => Ok(T::Str),
            Expr::LitBool(_) => Ok(T::Bool),
            Expr::Arith(op, a, b) => {
                let (ta, tb) = (a.infer_type(scope)?, b.infer_type(scope)?);
                match (ta, tb) {
                    (T::Decimal(s1), T::Decimal(s2)) => Ok(match op {
                        ArithOp::Add | ArithOp::Sub => {
                            if s1 != s2 {
                                return Err(format!("decimal scale mismatch: {s1} vs {s2}"));
                            }
                            T::Decimal(s1)
                        }
                        ArithOp::Mul => T::Decimal(s1 + s2),
                        ArithOp::Div => T::Decimal(s1),
                    }),
                    (T::I64 | T::I32 | T::Date, T::I64 | T::I32 | T::Date) => Ok(T::I64),
                    (T::F64, T::F64) => Ok(T::F64),
                    _ => Err(format!("cannot apply {op:?} to {ta} and {tb}")),
                }
            }
            Expr::Cmp(_, a, b) => {
                let (ta, tb) = (a.infer_type(scope)?, b.infer_type(scope)?);
                let compatible = matches!(
                    (ta, tb),
                    (T::I64 | T::I32 | T::Date, T::I64 | T::I32 | T::Date)
                        | (T::F64, T::F64)
                        | (T::Str, T::Str)
                        | (T::Bool, T::Bool)
                ) || matches!((ta, tb), (T::Decimal(x), T::Decimal(y)) if x == y);
                if compatible {
                    Ok(T::Bool)
                } else {
                    Err(format!("cannot compare {ta} and {tb}"))
                }
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                for e in [a, b] {
                    if e.infer_type(scope)? != T::Bool {
                        return Err("logical operand is not bool".into());
                    }
                }
                Ok(T::Bool)
            }
            Expr::Not(a) => {
                if a.infer_type(scope)? != T::Bool {
                    return Err("not-operand is not bool".into());
                }
                Ok(T::Bool)
            }
            Expr::StrPrefix(a, b) | Expr::StrContains(a, b) => {
                if a.infer_type(scope)? != T::Str || b.infer_type(scope)? != T::Str {
                    return Err("string predicate on non-strings".into());
                }
                Ok(T::Bool)
            }
            Expr::CastF64(a) => match a.infer_type(scope)? {
                T::I32 | T::I64 | T::Date | T::Decimal(_) | T::F64 => Ok(T::F64),
                other => Err(format!("cannot cast {other} to f64")),
            },
        }
    }

    /// Collects all referenced column names into `out`.
    pub fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(n) if !out.contains(n) => {
                out.push(n.clone());
            }
            Expr::Arith(_, a, b)
            | Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::StrPrefix(a, b)
            | Expr::StrContains(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::CastF64(a) => a.collect_columns(out),
            _ => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(n) => write!(f, "{n}"),
            Expr::LitI64(v) => write!(f, "{v}"),
            Expr::LitI32(v) => write!(f, "{v}i32"),
            Expr::LitDec(v, s) => write!(f, "dec({v},{s})"),
            Expr::LitF64(v) => write!(f, "{v}"),
            Expr::LitDate(v) => write!(f, "date({v})"),
            Expr::LitStr(s) => write!(f, "'{s}'"),
            Expr::LitBool(b) => write!(f, "{b}"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op:?} {b})"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op:?} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::StrPrefix(a, b) => write!(f, "({a} LIKE {b}%)"),
            Expr::StrContains(a, b) => write!(f, "({a} LIKE %{b}%)"),
            Expr::CastF64(a) => write!(f, "f64({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope() -> Vec<(String, ColumnType)> {
        vec![
            ("price".into(), ColumnType::Decimal(2)),
            ("disc".into(), ColumnType::Decimal(2)),
            ("qty".into(), ColumnType::I64),
            ("name".into(), ColumnType::Str),
            ("d".into(), ColumnType::Date),
        ]
    }

    #[test]
    fn decimal_arith_scales() {
        let s = scope();
        let e = col("price").mul(col("disc"));
        assert_eq!(e.infer_type(&s).unwrap(), ColumnType::Decimal(4));
        let e = col("price").sub(col("disc"));
        assert_eq!(e.infer_type(&s).unwrap(), ColumnType::Decimal(2));
        let e = col("price").add(lit_dec(100, 3));
        assert!(e.infer_type(&s).is_err(), "scale mismatch must fail");
    }

    #[test]
    fn int_and_date_promote_to_i64() {
        let s = scope();
        assert_eq!(
            col("qty").add(lit_i32(1)).infer_type(&s).unwrap(),
            ColumnType::I64
        );
        assert_eq!(
            col("d").lt(lit_date(9000)).infer_type(&s).unwrap(),
            ColumnType::Bool
        );
    }

    #[test]
    fn string_predicates_type_check() {
        let s = scope();
        assert_eq!(
            col("name")
                .starts_with(lit_str("a"))
                .infer_type(&s)
                .unwrap(),
            ColumnType::Bool
        );
        assert!(col("qty").starts_with(lit_str("a")).infer_type(&s).is_err());
        assert!(col("name").eq(lit_i64(1)).infer_type(&s).is_err());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(col("missing").infer_type(&scope()).is_err());
    }

    #[test]
    fn collects_columns_once() {
        let e = col("a").add(col("b")).mul(col("a"));
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }
}
