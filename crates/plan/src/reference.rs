//! Direct (non-compiled) plan evaluator over columnar storage.
//!
//! This is a back-end-independent oracle: it evaluates the logical plan in
//! plain Rust, with the same overflow-checked decimal semantics the
//! generated code implements. Differential tests compare its output — as a
//! multiset — against every compilation back-end and the bytecode
//! interpreter.

use crate::expr::{ArithOp, CmpKind, Expr};
use crate::node::{AggFunc, PlanError, PlanNode};
use qc_runtime::SqlValue;
use qc_storage::{ColumnType, Database};
use std::cmp::Ordering;
use std::collections::HashMap;

type Schema = Vec<(String, ColumnType)>;
type Row = Vec<SqlValue>;

fn err<T>(message: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError {
        message: message.into(),
    })
}

/// Executes `plan` against `db`, returning the output rows.
///
/// # Errors
/// Returns a [`PlanError`] on schema errors or arithmetic overflow (the
/// same condition that traps in generated code).
pub fn execute(plan: &PlanNode, db: &Database) -> Result<Vec<Row>, PlanError> {
    let catalog = |name: &str| {
        db.table(name)
            .map(|t| t.schema.iter().map(|(n, ty)| (n.to_string(), ty)).collect())
    };
    let schema = plan.schema(&catalog)?;
    let (s, rows) = eval(plan, db)?;
    debug_assert_eq!(s.len(), schema.len());
    Ok(rows)
}

/// Renders rows as sorted strings for order-insensitive comparison.
pub fn normalize(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort_unstable();
    out
}

/// Checksum of a row multiset, comparable across back-ends.
pub fn checksum(rows: &[Row]) -> u64 {
    let mut sum = 0u64;
    for row in rows {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in row {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(v.checksum());
        }
        sum = sum.wrapping_add(h); // order-insensitive across rows
    }
    sum.wrapping_add(rows.len() as u64)
}

fn load_cell(db: &Database, table: &str, column: &str, row: usize) -> SqlValue {
    let t = db.table(table).expect("table checked");
    let idx = t.schema.index_of(column).expect("column checked");
    t.column(idx).value(row, t.schema.column(idx).1)
}

fn eval(node: &PlanNode, db: &Database) -> Result<(Schema, Vec<Row>), PlanError> {
    match node {
        PlanNode::Scan {
            table,
            columns,
            filter,
        } => {
            let Some(t) = db.table(table) else {
                return err(format!("unknown table `{table}`"));
            };
            let full_schema: Schema = t.schema.iter().map(|(n, ty)| (n.to_string(), ty)).collect();
            let mut needed: Vec<String> = columns.clone();
            if let Some(f) = filter {
                let mut extra = Vec::new();
                f.collect_columns(&mut extra);
                for c in extra {
                    if !needed.contains(&c) {
                        needed.push(c);
                    }
                }
            }
            let needed_schema: Schema = needed
                .iter()
                .map(|c| {
                    full_schema
                        .iter()
                        .find(|(n, _)| n == c)
                        .cloned()
                        .ok_or_else(|| PlanError {
                            message: format!("unknown column `{c}`"),
                        })
                })
                .collect::<Result<_, _>>()?;
            let mut rows = Vec::new();
            for i in 0..t.row_count() {
                let full: Row = needed.iter().map(|c| load_cell(db, table, c, i)).collect();
                if let Some(f) = filter {
                    if !truthy(&eval_expr(f, &needed_schema, &full)?) {
                        continue;
                    }
                }
                rows.push(full[..columns.len()].to_vec());
            }
            let schema = needed_schema[..columns.len()].to_vec();
            Ok((schema, rows))
        }
        PlanNode::Filter { input, predicate } => {
            let (schema, rows) = eval(input, db)?;
            let mut out = Vec::new();
            for r in rows {
                if truthy(&eval_expr(predicate, &schema, &r)?) {
                    out.push(r);
                }
            }
            Ok((schema, out))
        }
        PlanNode::Map { input, exprs } => {
            let (mut schema, rows) = eval(input, db)?;
            let mut out = Vec::with_capacity(rows.len());
            let mut new_schema = schema.clone();
            for (name, e) in exprs {
                let ty = e
                    .infer_type(&schema)
                    .map_err(|m| PlanError { message: m })?;
                new_schema.push((name.clone(), ty));
            }
            for mut r in rows {
                for (_, e) in exprs {
                    let v = eval_expr(e, &schema, &r)?;
                    r.push(v);
                }
                out.push(r);
            }
            schema = new_schema;
            Ok((schema, out))
        }
        PlanNode::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
        } => {
            let (bschema, brows) = eval(build, db)?;
            let (pschema, prows) = eval(probe, db)?;
            let bkey_idx: Vec<usize> = build_keys
                .iter()
                .map(|k| bschema.iter().position(|(n, _)| n == k).expect("checked"))
                .collect();
            let pkey_idx: Vec<usize> = probe_keys
                .iter()
                .map(|k| pschema.iter().position(|(n, _)| n == k).expect("checked"))
                .collect();
            let pay_idx: Vec<usize> = payload
                .iter()
                .map(|p| bschema.iter().position(|(n, _)| n == p).expect("checked"))
                .collect();
            let mut index: HashMap<Vec<KeyRepr>, Vec<usize>> = HashMap::new();
            for (i, r) in brows.iter().enumerate() {
                let key: Vec<KeyRepr> = bkey_idx.iter().map(|&k| KeyRepr::of(&r[k])).collect();
                index.entry(key).or_default().push(i);
            }
            let mut schema = pschema.clone();
            for p in payload {
                schema.push(
                    bschema
                        .iter()
                        .find(|(n, _)| n == p)
                        .cloned()
                        .expect("checked"),
                );
            }
            let mut out = Vec::new();
            for pr in &prows {
                let key: Vec<KeyRepr> = pkey_idx.iter().map(|&k| KeyRepr::of(&pr[k])).collect();
                if let Some(matches) = index.get(&key) {
                    for &bi in matches {
                        let mut row = pr.clone();
                        for &pi in &pay_idx {
                            row.push(brows[bi][pi].clone());
                        }
                        out.push(row);
                    }
                }
            }
            Ok((schema, out))
        }
        PlanNode::GroupBy { input, keys, aggs } => {
            let (schema, rows) = eval(input, db)?;
            let key_idx: Vec<usize> = keys
                .iter()
                .map(|k| schema.iter().position(|(n, _)| n == k).expect("checked"))
                .collect();
            let mut groups: HashMap<Vec<KeyRepr>, (Row, Vec<AggState>)> = HashMap::new();
            let mut order: Vec<Vec<KeyRepr>> = Vec::new();
            for r in &rows {
                let key: Vec<KeyRepr> = key_idx.iter().map(|&k| KeyRepr::of(&r[k])).collect();
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (
                        key_idx.iter().map(|&k| r[k].clone()).collect(),
                        aggs.iter().map(|_| AggState::Empty).collect(),
                    )
                });
                for ((_, agg), st) in aggs.iter().zip(entry.1.iter_mut()) {
                    let v = match agg {
                        AggFunc::CountStar => None,
                        AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) | AggFunc::Avg(e) => {
                            Some(eval_expr(e, &schema, r)?)
                        }
                    };
                    st.update(agg, v)?;
                }
            }
            let mut out_schema: Schema = key_idx.iter().map(|&k| schema[k].clone()).collect();
            let catalog_scope = schema.clone();
            for (name, agg) in aggs {
                let ty = match agg {
                    AggFunc::CountStar => ColumnType::I64,
                    AggFunc::Avg(_) => ColumnType::F64,
                    AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                        match e
                            .infer_type(&catalog_scope)
                            .map_err(|m| PlanError { message: m })?
                        {
                            ColumnType::Decimal(s) => ColumnType::Decimal(s),
                            ColumnType::F64 => ColumnType::F64,
                            _ => ColumnType::I64,
                        }
                    }
                };
                out_schema.push((name.clone(), ty));
            }
            let mut out = Vec::new();
            for key in order {
                let (krow, states) = groups.remove(&key).expect("group exists");
                let mut row = krow;
                for (st, (_, agg)) in states.into_iter().zip(aggs) {
                    row.push(st.finish(agg));
                }
                out.push(row);
            }
            Ok((out_schema, out))
        }
        PlanNode::Sort { input, keys, limit } => {
            let (schema, mut rows) = eval(input, db)?;
            let idx: Vec<(usize, bool)> = keys
                .iter()
                .map(|(k, asc)| {
                    (
                        schema.iter().position(|(n, _)| n == k).expect("checked"),
                        *asc,
                    )
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(i, asc) in &idx {
                    let ord = cmp_values(&a[i], &b[i]);
                    if ord != Ordering::Equal {
                        return if asc { ord } else { ord.reverse() };
                    }
                }
                Ordering::Equal
            });
            if let Some(l) = limit {
                rows.truncate(*l);
            }
            Ok((schema, rows))
        }
    }
}

/// Hashable key representation (floats are excluded from keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyRepr {
    I(i128),
    S(String),
    B(bool),
}

impl KeyRepr {
    fn of(v: &SqlValue) -> KeyRepr {
        match v {
            SqlValue::I32(x) => KeyRepr::I(*x as i128),
            SqlValue::I64(x) => KeyRepr::I(*x as i128),
            SqlValue::Decimal(x, _) => KeyRepr::I(*x),
            SqlValue::Bool(b) => KeyRepr::B(*b),
            SqlValue::Str(s) => KeyRepr::S(s.clone()),
            SqlValue::F64(_) | SqlValue::Null => KeyRepr::S(format!("{v:?}")),
        }
    }
}

#[derive(Debug)]
enum AggState {
    Empty,
    Count(i64),
    SumI(i128, u8, bool), // value, scale, is_decimal
    SumF(f64),
    MinMax(SqlValue),
    AvgI(i128, u8, i64),
    AvgF(f64, i64),
}

impl AggState {
    fn update(&mut self, agg: &AggFunc, v: Option<SqlValue>) -> Result<(), PlanError> {
        match agg {
            AggFunc::CountStar => {
                *self = match self {
                    AggState::Empty => AggState::Count(1),
                    AggState::Count(n) => AggState::Count(*n + 1),
                    _ => unreachable!(),
                };
            }
            AggFunc::Sum(_) => {
                let v = v.expect("sum has input");
                match (&mut *self, &v) {
                    (AggState::Empty, SqlValue::Decimal(x, s)) => {
                        *self = AggState::SumI(*x, *s, true)
                    }
                    (AggState::Empty, SqlValue::I64(x)) => {
                        *self = AggState::SumI(*x as i128, 0, false)
                    }
                    (AggState::Empty, SqlValue::I32(x)) => {
                        *self = AggState::SumI(*x as i128, 0, false)
                    }
                    (AggState::Empty, SqlValue::F64(x)) => *self = AggState::SumF(*x),
                    (AggState::SumI(acc, _, _), SqlValue::Decimal(x, _)) => {
                        *acc = acc.checked_add(*x).ok_or_else(|| PlanError {
                            message: "overflow".into(),
                        })?;
                    }
                    (AggState::SumI(acc, _, _), SqlValue::I64(x)) => {
                        *acc = acc.checked_add(*x as i128).ok_or_else(|| PlanError {
                            message: "overflow".into(),
                        })?;
                    }
                    (AggState::SumI(acc, _, _), SqlValue::I32(x)) => {
                        *acc = acc.checked_add(*x as i128).ok_or_else(|| PlanError {
                            message: "overflow".into(),
                        })?;
                    }
                    (AggState::SumF(acc), SqlValue::F64(x)) => *acc += x,
                    _ => return err("sum type confusion"),
                }
            }
            AggFunc::Min(_) | AggFunc::Max(_) => {
                let v = v.expect("minmax has input");
                let is_min = matches!(agg, AggFunc::Min(_));
                match &mut *self {
                    AggState::Empty => *self = AggState::MinMax(v),
                    AggState::MinMax(cur) => {
                        let ord = cmp_values(&v, cur);
                        if (is_min && ord == Ordering::Less)
                            || (!is_min && ord == Ordering::Greater)
                        {
                            *cur = v;
                        }
                    }
                    _ => unreachable!(),
                }
            }
            AggFunc::Avg(_) => {
                let v = v.expect("avg has input");
                match (&mut *self, &v) {
                    (AggState::Empty, SqlValue::Decimal(x, s)) => *self = AggState::AvgI(*x, *s, 1),
                    (AggState::Empty, SqlValue::I64(x)) => *self = AggState::AvgI(*x as i128, 0, 1),
                    (AggState::Empty, SqlValue::I32(x)) => *self = AggState::AvgI(*x as i128, 0, 1),
                    (AggState::Empty, SqlValue::F64(x)) => *self = AggState::AvgF(*x, 1),
                    (AggState::AvgI(acc, _, n), SqlValue::Decimal(x, _)) => {
                        *acc += x;
                        *n += 1;
                    }
                    (AggState::AvgI(acc, _, n), SqlValue::I64(x)) => {
                        *acc += *x as i128;
                        *n += 1;
                    }
                    (AggState::AvgI(acc, _, n), SqlValue::I32(x)) => {
                        *acc += *x as i128;
                        *n += 1;
                    }
                    (AggState::AvgF(acc, n), SqlValue::F64(x)) => {
                        *acc += x;
                        *n += 1;
                    }
                    _ => return err("avg type confusion"),
                }
            }
        }
        Ok(())
    }

    fn finish(self, agg: &AggFunc) -> SqlValue {
        match (self, agg) {
            (AggState::Count(n), _) => SqlValue::I64(n),
            (AggState::SumI(v, s, true), _) => SqlValue::Decimal(v, s),
            (AggState::SumI(v, _, false), _) => SqlValue::I64(v as i64),
            (AggState::SumF(v), _) => SqlValue::F64(v),
            (AggState::MinMax(v), _) => v,
            (AggState::AvgI(sum, scale, n), _) => {
                SqlValue::F64(sum as f64 / 10f64.powi(scale as i32) / n as f64)
            }
            (AggState::AvgF(sum, n), _) => SqlValue::F64(sum / n as f64),
            (AggState::Empty, AggFunc::CountStar) => SqlValue::I64(0),
            (AggState::Empty, _) => SqlValue::Null,
        }
    }
}

fn truthy(v: &SqlValue) -> bool {
    matches!(v, SqlValue::Bool(true))
}

fn cmp_values(a: &SqlValue, b: &SqlValue) -> Ordering {
    match (a, b) {
        (SqlValue::I32(x), SqlValue::I32(y)) => x.cmp(y),
        (SqlValue::I64(x), SqlValue::I64(y)) => x.cmp(y),
        (SqlValue::I32(x), SqlValue::I64(y)) => (*x as i64).cmp(y),
        (SqlValue::I64(x), SqlValue::I32(y)) => x.cmp(&(*y as i64)),
        (SqlValue::Decimal(x, _), SqlValue::Decimal(y, _)) => x.cmp(y),
        (SqlValue::F64(x), SqlValue::F64(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (SqlValue::Str(x), SqlValue::Str(y)) => x.cmp(y),
        (SqlValue::Bool(x), SqlValue::Bool(y)) => x.cmp(y),
        _ => Ordering::Equal,
    }
}

fn as_i64(v: &SqlValue) -> Result<i64, PlanError> {
    match v {
        SqlValue::I32(x) => Ok(*x as i64),
        SqlValue::I64(x) => Ok(*x),
        _ => err(format!("expected integer, got {v:?}")),
    }
}

fn eval_expr(e: &Expr, schema: &Schema, row: &Row) -> Result<SqlValue, PlanError> {
    use SqlValue as V;
    Ok(match e {
        Expr::Column(name) => {
            let i = schema
                .iter()
                .position(|(n, _)| n == name)
                .ok_or_else(|| PlanError {
                    message: format!("unknown column `{name}`"),
                })?;
            row[i].clone()
        }
        Expr::LitI64(v) => V::I64(*v),
        Expr::LitI32(v) => V::I32(*v),
        Expr::LitDec(v, s) => V::Decimal(*v, *s),
        Expr::LitF64(v) => V::F64(*v),
        Expr::LitDate(v) => V::I32(*v),
        Expr::LitStr(s) => V::Str(s.clone()),
        Expr::LitBool(b) => V::Bool(*b),
        Expr::Arith(op, a, b) => {
            let (va, vb) = (eval_expr(a, schema, row)?, eval_expr(b, schema, row)?);
            match (&va, &vb) {
                (V::Decimal(x, s1), V::Decimal(y, s2)) => {
                    let overflow = || PlanError {
                        message: "overflow".into(),
                    };
                    let (v, s) = match op {
                        ArithOp::Add => (x.checked_add(*y).ok_or_else(overflow)?, *s1),
                        ArithOp::Sub => (x.checked_sub(*y).ok_or_else(overflow)?, *s1),
                        ArithOp::Mul => (x.checked_mul(*y).ok_or_else(overflow)?, s1 + s2),
                        ArithOp::Div => {
                            if *y == 0 {
                                return err("division by zero");
                            }
                            let scaled =
                                x.checked_mul(10i128.pow(*s2 as u32)).ok_or_else(overflow)?;
                            (scaled / y, *s1)
                        }
                    };
                    V::Decimal(v, s)
                }
                (V::F64(x), V::F64(y)) => V::F64(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                }),
                _ => {
                    let (x, y) = (as_i64(&va)?, as_i64(&vb)?);
                    let overflow = || PlanError {
                        message: "overflow".into(),
                    };
                    V::I64(match op {
                        ArithOp::Add => x.checked_add(y).ok_or_else(overflow)?,
                        ArithOp::Sub => x.checked_sub(y).ok_or_else(overflow)?,
                        ArithOp::Mul => x.checked_mul(y).ok_or_else(overflow)?,
                        ArithOp::Div => {
                            if y == 0 {
                                return err("division by zero");
                            }
                            x.checked_div(y).ok_or_else(overflow)?
                        }
                    })
                }
            }
        }
        Expr::Cmp(op, a, b) => {
            let (va, vb) = (eval_expr(a, schema, row)?, eval_expr(b, schema, row)?);
            // Dates load as I32; literals may be I64 — promote.
            let ord = cmp_values(&va, &vb);
            let r = match op {
                CmpKind::Eq => ord == Ordering::Equal,
                CmpKind::Ne => ord != Ordering::Equal,
                CmpKind::Lt => ord == Ordering::Less,
                CmpKind::Le => ord != Ordering::Greater,
                CmpKind::Gt => ord == Ordering::Greater,
                CmpKind::Ge => ord != Ordering::Less,
            };
            V::Bool(r)
        }
        Expr::And(a, b) => {
            V::Bool(truthy(&eval_expr(a, schema, row)?) && truthy(&eval_expr(b, schema, row)?))
        }
        Expr::Or(a, b) => {
            V::Bool(truthy(&eval_expr(a, schema, row)?) || truthy(&eval_expr(b, schema, row)?))
        }
        Expr::Not(a) => V::Bool(!truthy(&eval_expr(a, schema, row)?)),
        Expr::StrPrefix(a, b) => {
            let (V::Str(x), V::Str(y)) = (eval_expr(a, schema, row)?, eval_expr(b, schema, row)?)
            else {
                return err("string predicate on non-strings");
            };
            V::Bool(x.starts_with(&y))
        }
        Expr::StrContains(a, b) => {
            let (V::Str(x), V::Str(y)) = (eval_expr(a, schema, row)?, eval_expr(b, schema, row)?)
            else {
                return err("string predicate on non-strings");
            };
            V::Bool(x.contains(&y))
        }
        Expr::CastF64(a) => match eval_expr(a, schema, row)? {
            V::I32(x) => V::F64(x as f64),
            V::I64(x) => V::F64(x as f64),
            V::Decimal(x, _) => V::F64(x as f64),
            V::F64(x) => V::F64(x),
            other => return err(format!("cannot cast {other:?} to f64")),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit_dec, lit_i64, lit_str};
    use qc_storage::{Column, Schema as TblSchema, Table};

    fn test_db() -> Database {
        let mut db = Database::new();
        let labels = ["aa", "bb", "aa", "cc", "bb", "aa"];
        let label_col = Column::Str(
            labels
                .iter()
                .map(|s| qc_runtime::RtString::new(s, &mut db.string_arena))
                .collect(),
        );
        db.add_table(Table::new(
            "t",
            TblSchema::new(vec![
                ("k", ColumnType::I64),
                ("v", ColumnType::Decimal(2)),
                ("label", ColumnType::Str),
            ]),
            vec![
                Column::I64(vec![1, 2, 3, 4, 5, 6]),
                Column::Decimal(vec![100, 200, 300, 400, 500, 600]),
                label_col,
            ],
        ));
        db
    }

    #[test]
    fn filter_and_map() {
        let db = test_db();
        let p = PlanNode::scan("t", &["k", "v"])
            .filter(col("k").gt(lit_i64(3)))
            .map(vec![("v2", col("v").mul(lit_dec(200, 2)))]);
        let rows = execute(&p, &db).unwrap();
        assert_eq!(rows.len(), 3);
        // v2 = v * 2.00 at scale 4.
        assert_eq!(rows[0][2], SqlValue::Decimal(400 * 200, 4));
    }

    #[test]
    fn group_by_with_all_aggregates() {
        let db = test_db();
        let p = PlanNode::scan("t", &["k", "v", "label"]).group_by(
            &["label"],
            vec![
                ("n", AggFunc::CountStar),
                ("total", AggFunc::Sum(col("v"))),
                ("lo", AggFunc::Min(col("k"))),
                ("hi", AggFunc::Max(col("k"))),
                ("avg_v", AggFunc::Avg(col("v"))),
            ],
        );
        let rows = execute(&p, &db).unwrap();
        assert_eq!(rows.len(), 3);
        let aa = rows
            .iter()
            .find(|r| r[0] == SqlValue::Str("aa".into()))
            .unwrap();
        assert_eq!(aa[1], SqlValue::I64(3));
        assert_eq!(aa[2], SqlValue::Decimal(100 + 300 + 600, 2));
        assert_eq!(aa[3], SqlValue::I64(1));
        assert_eq!(aa[4], SqlValue::I64(6));
        let SqlValue::F64(avg) = aa[5] else { panic!() };
        assert!((avg - (1.0 + 3.0 + 6.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn join_multiplies_matches() {
        let db = test_db();
        // Self-join on label: aa x aa (3x3) + bb x bb (2x2) + cc (1) = 14.
        let p = PlanNode::scan("t", &["k", "label"]).hash_join(
            PlanNode::scan("t", &["label", "v"]),
            &["label"],
            &["label"],
            &["v"],
        );
        let rows = execute(&p, &db).unwrap();
        assert_eq!(rows.len(), 9 + 4 + 1);
    }

    #[test]
    fn sort_with_limit() {
        let db = test_db();
        let p = PlanNode::scan("t", &["k", "v"]).sort(&[("v", false)], Some(2));
        let rows = execute(&p, &db).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], SqlValue::I64(6));
        assert_eq!(rows[1][0], SqlValue::I64(5));
    }

    #[test]
    fn string_predicates() {
        let db = test_db();
        let p = PlanNode::scan("t", &["label"]).filter(col("label").starts_with(lit_str("a")));
        assert_eq!(execute(&p, &db).unwrap().len(), 3);
        let p = PlanNode::scan("t", &["label"]).filter(col("label").eq(lit_str("cc")));
        assert_eq!(execute(&p, &db).unwrap().len(), 1);
    }

    #[test]
    fn overflow_is_reported() {
        let db = test_db();
        let p = PlanNode::scan("t", &["v"])
            .map(vec![("big", col("v").mul(lit_dec(i128::MAX / 50, 0)))]);
        assert!(execute(&p, &db).is_err());
    }

    #[test]
    fn checksum_is_order_insensitive() {
        let rows1 = vec![vec![SqlValue::I64(1)], vec![SqlValue::I64(2)]];
        let rows2 = vec![vec![SqlValue::I64(2)], vec![SqlValue::I64(1)]];
        assert_eq!(checksum(&rows1), checksum(&rows2));
        assert_ne!(checksum(&rows1), checksum(&[vec![SqlValue::I64(3)]]));
        assert_eq!(normalize(&rows1), normalize(&rows2));
    }
}
