//! Pipeline decomposition: logical plan → physical pipelines.

use crate::expr::{col, Expr};
use crate::layout::RowLayout;
use crate::node::{AggFunc, CatalogFn, PlanError, PlanNode};
use qc_storage::ColumnType;

/// One query-context slot. The context is a flat array of 8-byte slots the
/// engine fills before execution; generated functions receive its address
/// as their first argument (the `%state` pointer of paper Listing 2) and
/// load handles/column bases from fixed offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtxEntry {
    /// Output tuple-buffer handle.
    OutputBuf,
    /// Hash-table handle of join `n`.
    JoinHt(usize),
    /// Hash-table handle of aggregation `n`.
    AggHt(usize),
    /// Group-registration buffer handle of aggregation `n` (each created
    /// group's payload pointer is appended, making groups scannable).
    AggGroups(usize),
    /// Materialization buffer handle of sort `n`.
    SortBuf(usize),
    /// Base address of a table column.
    ColumnBase {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Interned string literal `n` (occupies 16 bytes: the full
    /// [`qc_runtime::RtString`] descriptor).
    StrConst(usize),
}

impl CtxEntry {
    /// Size of this entry in the context block.
    pub fn size(&self) -> usize {
        match self {
            CtxEntry::StrConst(_) => 16,
            _ => 8,
        }
    }
}

/// Tuple source of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Scan a base table over a morsel `[start, start+count)`.
    Table {
        /// Table name.
        name: String,
        /// Columns to load: projected plus filter-only columns.
        columns: Vec<(String, ColumnType)>,
        /// Names visible downstream (the projected subset).
        projected: Vec<String>,
        /// Pushed-down predicate over `columns`.
        filter: Option<Expr>,
    },
    /// Scan a materialized buffer (aggregation groups or sorted rows).
    Buffer {
        /// Context slot holding the buffer handle.
        buffer: CtxEntry,
        /// Row layout.
        layout: RowLayout,
        /// Row limit (sort+limit).
        limit: Option<usize>,
    },
}

/// Streaming (non-materializing) operator.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// Drop tuples failing the predicate.
    Filter(Expr),
    /// Append computed columns.
    Map(Vec<(String, ColumnType, Expr)>),
    /// Probe join `join_id`: hash the probe keys, walk the bucket chain,
    /// and for every key-equal entry emit the tuple extended with the
    /// carried build columns (one nested loop per join, paper Sec. III-A).
    Probe {
        /// Join identifier (context slot [`CtxEntry::JoinHt`]).
        join_id: usize,
        /// Probe-side key columns.
        probe_keys: Vec<String>,
        /// Build-side entry payload layout (keys first, then payload).
        build_layout: RowLayout,
        /// Build columns added to the scope (payload minus keys).
        carry: Vec<(String, ColumnType)>,
    },
}

/// Materializing pipeline end.
#[derive(Debug, Clone, PartialEq)]
pub enum Sink {
    /// Write the scope columns into the output buffer.
    Output {
        /// Output row layout.
        layout: RowLayout,
    },
    /// Insert into join `join_id`'s hash table.
    JoinBuild {
        /// Join identifier.
        join_id: usize,
        /// Build key columns (hashed).
        keys: Vec<String>,
        /// Entry payload layout (keys first, then payload).
        layout: RowLayout,
    },
    /// Update aggregation `agg_id`'s hash table.
    AggBuild {
        /// Aggregation identifier.
        agg_id: usize,
        /// Group key columns (hashed).
        keys: Vec<String>,
        /// Aggregates in output order.
        aggs: Vec<(String, AggFunc)>,
        /// Group-entry payload layout: keys, then aggregate state fields
        /// (named `#<output>` / `#<output>_cnt` for AVG).
        layout: RowLayout,
    },
    /// Materialize into sort `sort_id`'s buffer (sorted by the finish
    /// function).
    SortMaterialize {
        /// Sort identifier.
        sort_id: usize,
        /// `(column, ascending)` keys.
        keys: Vec<(String, bool)>,
        /// Row layout.
        layout: RowLayout,
    },
}

/// One linear pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Position in execution order (dependencies come first).
    pub id: usize,
    /// Tuple source.
    pub source: Source,
    /// Streaming operators in order.
    pub ops: Vec<StreamOp>,
    /// Materializing end.
    pub sink: Sink,
}

/// The decomposed plan consumed by code generation and the engine.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Pipelines in execution order.
    pub pipelines: Vec<Pipeline>,
    /// Context slots; slot `i` lives at byte offset `8 * i`.
    pub ctx: Vec<CtxEntry>,
    /// Output row layout (matches the logical root schema).
    pub output: RowLayout,
    /// Logical output schema.
    pub output_schema: Vec<(String, ColumnType)>,
    /// Deduplicated string literals; literal `n` is loaded from context
    /// entry [`CtxEntry::StrConst`]`(n)`.
    pub str_literals: Vec<String>,
}

impl PhysicalPlan {
    /// Slot index of a context entry.
    ///
    /// # Panics
    /// Panics if the entry was never allocated (decomposition bug).
    pub fn slot_of(&self, entry: &CtxEntry) -> usize {
        self.ctx
            .iter()
            .position(|e| e == entry)
            .unwrap_or_else(|| panic!("context entry {entry:?} not allocated"))
    }

    /// Byte offset of a context entry within the context block.
    pub fn ctx_offset(&self, entry: &CtxEntry) -> i32 {
        let slot = self.slot_of(entry);
        self.ctx[..slot].iter().map(|e| e.size() as i32).sum()
    }

    /// Size of the context block in bytes.
    pub fn ctx_size(&self) -> usize {
        self.ctx.iter().map(CtxEntry::size).sum()
    }

    /// Decomposes a logical plan.
    ///
    /// # Errors
    /// Propagates schema/type errors from the logical plan.
    pub fn decompose(root: &PlanNode, catalog: &CatalogFn<'_>) -> Result<PhysicalPlan, PlanError> {
        let mut d = Decomposer {
            catalog,
            pipelines: Vec::new(),
            ctx: vec![CtxEntry::OutputBuf],
            joins: 0,
            aggs: 0,
            sorts: 0,
            str_literals: Vec::new(),
        };
        let (source, ops, scope) = d.process(root)?;
        let layout = RowLayout::new(&scope);
        d.pipelines.push(Pipeline {
            id: d.pipelines.len(),
            source,
            ops,
            sink: Sink::Output {
                layout: layout.clone(),
            },
        });
        Ok(PhysicalPlan {
            pipelines: d.pipelines,
            ctx: d.ctx,
            output: layout,
            output_schema: scope,
            str_literals: d.str_literals,
        })
    }
}

struct Decomposer<'c> {
    catalog: &'c CatalogFn<'c>,
    pipelines: Vec<Pipeline>,
    ctx: Vec<CtxEntry>,
    joins: usize,
    aggs: usize,
    sorts: usize,
    str_literals: Vec<String>,
}

type Scope = Vec<(String, ColumnType)>;

impl Decomposer<'_> {
    fn slot(&mut self, e: CtxEntry) {
        if !self.ctx.contains(&e) {
            self.ctx.push(e);
        }
    }

    /// Interns every string literal of `e` as a context entry.
    fn intern_strings(&mut self, e: &Expr) {
        collect_str_literals(e, &mut |lit| {
            let idx = match self.str_literals.iter().position(|s| s == lit) {
                Some(i) => i,
                None => {
                    self.str_literals.push(lit.to_string());
                    self.str_literals.len() - 1
                }
            };
            self.slot(CtxEntry::StrConst(idx));
        });
    }

    fn perr<T>(msg: impl Into<String>) -> Result<T, PlanError> {
        Err(PlanError {
            message: msg.into(),
        })
    }

    fn process(&mut self, node: &PlanNode) -> Result<(Source, Vec<StreamOp>, Scope), PlanError> {
        match node {
            PlanNode::Scan {
                table,
                columns,
                filter,
            } => {
                let Some(table_schema) = (self.catalog)(table) else {
                    return Self::perr(format!("unknown table `{table}`"));
                };
                let mut needed: Vec<String> = columns.clone();
                if let Some(f) = filter {
                    let mut extra = Vec::new();
                    f.collect_columns(&mut extra);
                    for c in extra {
                        if !needed.contains(&c) {
                            needed.push(c);
                        }
                    }
                }
                let mut loaded = Vec::new();
                for c in &needed {
                    match table_schema.iter().find(|(n, _)| n == c) {
                        Some(entry) => loaded.push(entry.clone()),
                        None => return Self::perr(format!("unknown column `{c}` in `{table}`")),
                    }
                    self.slot(CtxEntry::ColumnBase {
                        table: table.clone(),
                        column: c.clone(),
                    });
                }
                if let Some(f) = filter {
                    self.intern_strings(f);
                }
                let scope: Scope = columns
                    .iter()
                    .map(|c| {
                        loaded
                            .iter()
                            .find(|(n, _)| n == c)
                            .cloned()
                            .expect("projected")
                    })
                    .collect();
                Ok((
                    Source::Table {
                        name: table.clone(),
                        columns: loaded,
                        projected: columns.clone(),
                        filter: filter.clone(),
                    },
                    Vec::new(),
                    scope,
                ))
            }
            PlanNode::Filter { input, predicate } => {
                let (src, mut ops, scope) = self.process(input)?;
                match predicate.infer_type(&scope) {
                    Ok(ColumnType::Bool) => {}
                    Ok(t) => return Self::perr(format!("filter has type {t}")),
                    Err(m) => return Self::perr(m),
                }
                self.intern_strings(predicate);
                ops.push(StreamOp::Filter(predicate.clone()));
                Ok((src, ops, scope))
            }
            PlanNode::Map { input, exprs } => {
                let (src, mut ops, mut scope) = self.process(input)?;
                let mut typed = Vec::new();
                for (name, e) in exprs {
                    let ty = e.infer_type(&scope).map_err(|m| PlanError { message: m })?;
                    self.intern_strings(e);
                    typed.push((name.clone(), ty, e.clone()));
                    scope.push((name.clone(), ty));
                }
                ops.push(StreamOp::Map(typed));
                Ok((src, ops, scope))
            }
            PlanNode::HashJoin {
                build,
                probe,
                build_keys,
                probe_keys,
                payload,
            } => {
                let join_id = self.joins;
                self.joins += 1;
                self.slot(CtxEntry::JoinHt(join_id));

                // Build side becomes its own pipeline (and possibly more).
                let (bsrc, bops, bscope) = self.process(build)?;
                let mut entry_fields: Scope = Vec::new();
                for k in build_keys {
                    match bscope.iter().find(|(n, _)| n == k) {
                        Some(e) => entry_fields.push(e.clone()),
                        None => return Self::perr(format!("unknown build key `{k}`")),
                    }
                }
                let mut carry: Scope = Vec::new();
                for p in payload {
                    let Some(e) = bscope.iter().find(|(n, _)| n == p) else {
                        return Self::perr(format!("unknown payload column `{p}`"));
                    };
                    if !build_keys.contains(p) {
                        entry_fields.push(e.clone());
                    }
                    carry.push(e.clone());
                }
                let build_layout = RowLayout::new(&entry_fields);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source: bsrc,
                    ops: bops,
                    sink: Sink::JoinBuild {
                        join_id,
                        keys: build_keys.clone(),
                        layout: build_layout.clone(),
                    },
                });

                // Probe side continues the current pipeline.
                let (psrc, mut pops, mut pscope) = self.process(probe)?;
                for (bk, pk) in build_keys.iter().zip(probe_keys) {
                    let bt = build_layout.field(bk).map(|f| f.ty);
                    let pt = pscope.iter().find(|(n, _)| n == pk).map(|&(_, t)| t);
                    if bt.is_none() || pt.is_none() || bt != pt {
                        return Self::perr(format!("join key mismatch {bk}/{pk}"));
                    }
                }
                // Only carry columns not already in scope (schema() rejects
                // real duplicates).
                let carry: Scope = carry
                    .into_iter()
                    .filter(|(n, _)| !pscope.iter().any(|(pn, _)| pn == n))
                    .collect();
                pops.push(StreamOp::Probe {
                    join_id,
                    probe_keys: probe_keys.clone(),
                    build_layout,
                    carry: carry.clone(),
                });
                pscope.extend(carry);
                Ok((psrc, pops, pscope))
            }
            PlanNode::GroupBy { input, keys, aggs } => {
                let agg_id = self.aggs;
                self.aggs += 1;
                self.slot(CtxEntry::AggHt(agg_id));
                self.slot(CtxEntry::AggGroups(agg_id));

                let (isrc, iops, iscope) = self.process(input)?;
                let mut fields: Scope = Vec::new();
                for k in keys {
                    match iscope.iter().find(|(n, _)| n == k) {
                        Some(e) => fields.push(e.clone()),
                        None => return Self::perr(format!("unknown group key `{k}`")),
                    }
                }
                // Aggregate state fields.
                let mut finals: Vec<(String, ColumnType, Expr)> = Vec::new();
                let mut out_scope: Scope = fields.clone();
                for (name, agg) in aggs {
                    let state_ty = |e: &Expr| -> Result<ColumnType, PlanError> {
                        let t = e
                            .infer_type(&iscope)
                            .map_err(|m| PlanError { message: m })?;
                        Ok(match t {
                            ColumnType::I32 | ColumnType::Date => ColumnType::I64,
                            other => other,
                        })
                    };
                    match agg {
                        AggFunc::CountStar => {
                            fields.push((format!("#{name}"), ColumnType::I64));
                            out_scope.push((name.clone(), ColumnType::I64));
                        }
                        AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                            let ty = state_ty(e)?;
                            fields.push((format!("#{name}"), ty));
                            out_scope.push((name.clone(), ty));
                        }
                        AggFunc::Avg(e) => {
                            let ty = state_ty(e)?;
                            fields.push((format!("#{name}"), ty));
                            fields.push((format!("#{name}_cnt"), ColumnType::I64));
                            // Finalization: sum / 10^scale / count as f64.
                            let scale_div = match ty {
                                ColumnType::Decimal(s) => 10f64.powi(s as i32),
                                _ => 1.0,
                            };
                            let e = col(&format!("#{name}"))
                                .cast_f64()
                                .mul(crate::expr::lit_f64(1.0 / scale_div))
                                .div(col(&format!("#{name}_cnt")).cast_f64());
                            finals.push((name.clone(), ColumnType::F64, e));
                            out_scope.push((name.clone(), ColumnType::F64));
                        }
                    }
                }
                let layout = RowLayout::new(&fields);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source: isrc,
                    ops: iops,
                    sink: Sink::AggBuild {
                        agg_id,
                        keys: keys.clone(),
                        aggs: aggs.clone(),
                        layout: layout.clone(),
                    },
                });

                // Group scan: rename `#agg` state fields to their output
                // names (non-AVG) via a Map, compute AVG finals.
                let mut ops: Vec<StreamOp> = Vec::new();
                let mut renames: Vec<(String, ColumnType, Expr)> = Vec::new();
                for (name, agg) in aggs {
                    if !matches!(agg, AggFunc::Avg(_)) {
                        let f = layout.field(&format!("#{name}")).expect("state field");
                        renames.push((name.clone(), f.ty, col(&format!("#{name}"))));
                    }
                }
                if !renames.is_empty() {
                    ops.push(StreamOp::Map(renames));
                }
                if !finals.is_empty() {
                    ops.push(StreamOp::Map(finals));
                }
                Ok((
                    Source::Buffer {
                        buffer: CtxEntry::AggGroups(agg_id),
                        layout,
                        limit: None,
                    },
                    ops,
                    out_scope,
                ))
            }
            PlanNode::Sort { input, keys, limit } => {
                let sort_id = self.sorts;
                self.sorts += 1;
                self.slot(CtxEntry::SortBuf(sort_id));

                let (isrc, iops, iscope) = self.process(input)?;
                for (k, _) in keys {
                    if !iscope.iter().any(|(n, _)| n == k) {
                        return Self::perr(format!("unknown sort key `{k}`"));
                    }
                }
                let layout = RowLayout::new(&iscope);
                self.pipelines.push(Pipeline {
                    id: self.pipelines.len(),
                    source: isrc,
                    ops: iops,
                    sink: Sink::SortMaterialize {
                        sort_id,
                        keys: keys.clone(),
                        layout: layout.clone(),
                    },
                });
                Ok((
                    Source::Buffer {
                        buffer: CtxEntry::SortBuf(sort_id),
                        layout,
                        limit: *limit,
                    },
                    Vec::new(),
                    iscope,
                ))
            }
        }
    }
}

fn collect_str_literals(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::LitStr(s) => f(s),
        Expr::Arith(_, a, b)
        | Expr::Cmp(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::StrPrefix(a, b)
        | Expr::StrContains(a, b) => {
            collect_str_literals(a, f);
            collect_str_literals(b, f);
        }
        Expr::Not(a) | Expr::CastF64(a) => collect_str_literals(a, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{lit_date, lit_i64};

    fn catalog(name: &str) -> Option<Vec<(String, ColumnType)>> {
        match name {
            "fact" => Some(vec![
                ("k".into(), ColumnType::I64),
                ("d".into(), ColumnType::Date),
                ("v".into(), ColumnType::Decimal(2)),
            ]),
            "dim" => Some(vec![
                ("k".into(), ColumnType::I64),
                ("label".into(), ColumnType::Str),
            ]),
            _ => None,
        }
    }

    #[test]
    fn single_scan_is_one_pipeline() {
        let p = PlanNode::scan("fact", &["k", "v"]).filter(col("k").gt(lit_i64(3)));
        let phys = PhysicalPlan::decompose(&p, &catalog).unwrap();
        assert_eq!(phys.pipelines.len(), 1);
        assert!(matches!(phys.pipelines[0].sink, Sink::Output { .. }));
        assert_eq!(phys.pipelines[0].ops.len(), 1);
        assert_eq!(phys.output.fields.len(), 2);
        // ctx: output buffer + 2 column bases.
        assert_eq!(phys.ctx.len(), 3);
        assert_eq!(phys.slot_of(&CtxEntry::OutputBuf), 0);
    }

    #[test]
    fn scan_filter_loads_extra_columns() {
        let p = PlanNode::scan_filtered("fact", &["v"], col("d").lt(lit_date(100)));
        let phys = PhysicalPlan::decompose(&p, &catalog).unwrap();
        let Source::Table {
            columns, projected, ..
        } = &phys.pipelines[0].source
        else {
            panic!("expected table source");
        };
        assert_eq!(columns.len(), 2); // v + d
        assert_eq!(projected, &vec!["v".to_string()]);
        assert_eq!(phys.output.fields.len(), 1);
    }

    #[test]
    fn join_produces_build_pipeline_first() {
        let p = PlanNode::scan("fact", &["k", "v"]).hash_join(
            PlanNode::scan("dim", &["k", "label"]),
            &["k"],
            &["k"],
            &["label"],
        );
        let phys = PhysicalPlan::decompose(&p, &catalog).unwrap();
        assert_eq!(phys.pipelines.len(), 2);
        assert!(matches!(
            phys.pipelines[0].sink,
            Sink::JoinBuild { join_id: 0, .. }
        ));
        assert!(matches!(phys.pipelines[1].sink, Sink::Output { .. }));
        let Sink::JoinBuild { layout, .. } = &phys.pipelines[0].sink else {
            unreachable!()
        };
        // key k + payload label
        assert_eq!(layout.fields.len(), 2);
        let StreamOp::Probe { carry, .. } = &phys.pipelines[1].ops[0] else {
            panic!("expected probe op");
        };
        assert_eq!(carry.len(), 1);
        assert_eq!(phys.output_schema.len(), 3);
    }

    #[test]
    fn group_by_splits_and_finalizes_avg() {
        let p = PlanNode::scan("fact", &["k", "v"]).group_by(
            &["k"],
            vec![
                ("total", AggFunc::Sum(col("v"))),
                ("n", AggFunc::CountStar),
                ("avg_v", AggFunc::Avg(col("v"))),
            ],
        );
        let phys = PhysicalPlan::decompose(&p, &catalog).unwrap();
        assert_eq!(phys.pipelines.len(), 2);
        let Sink::AggBuild { layout, .. } = &phys.pipelines[0].sink else {
            panic!("expected agg sink");
        };
        // k, #total, #n, #avg_v, #avg_v_cnt
        assert_eq!(layout.fields.len(), 5);
        let Source::Buffer { .. } = &phys.pipelines[1].source else {
            panic!("expected buffer source");
        };
        assert_eq!(
            phys.output_schema
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["k", "total", "n", "avg_v"]
        );
        assert_eq!(phys.output_schema[3].1, ColumnType::F64);
    }

    #[test]
    fn sort_materializes_then_scans_with_limit() {
        let p = PlanNode::scan("fact", &["k", "v"]).sort(&[("v", false)], Some(10));
        let phys = PhysicalPlan::decompose(&p, &catalog).unwrap();
        assert_eq!(phys.pipelines.len(), 2);
        assert!(matches!(
            phys.pipelines[0].sink,
            Sink::SortMaterialize { sort_id: 0, .. }
        ));
        let Source::Buffer { limit, .. } = &phys.pipelines[1].source else {
            panic!("expected buffer source");
        };
        assert_eq!(*limit, Some(10));
    }

    #[test]
    fn complex_query_pipeline_count() {
        // join + group + sort = 4 pipelines (build, agg-build, sort-mat, out).
        let p = PlanNode::scan("fact", &["k", "v"])
            .hash_join(
                PlanNode::scan("dim", &["k", "label"]),
                &["k"],
                &["k"],
                &["label"],
            )
            .group_by(&["label"], vec![("total", AggFunc::Sum(col("v")))])
            .sort(&[("total", false)], Some(5));
        let phys = PhysicalPlan::decompose(&p, &catalog).unwrap();
        assert_eq!(phys.pipelines.len(), 4);
    }
}
