//! Logical query plans, pipeline decomposition, and a reference evaluator.
//!
//! The paper's engine follows the data-centric model (Sec. II): an
//! optimized plan is split into **linear pipelines**; within a pipeline,
//! tuples stay in registers, and pipeline breakers (hash-join builds,
//! aggregations, sorts) materialize. This crate provides:
//!
//! * [`Expr`] / [`PlanNode`] — typed expressions and logical operators with
//!   schema inference,
//! * [`PhysicalPlan`] — the pipeline decomposition consumed by the code
//!   generator, including materialized-row layouts and the query-context
//!   slot map through which generated functions reach runtime handles and
//!   column base addresses,
//! * [`mod@reference`] — a direct Rust evaluator over columnar storage, used
//!   as a back-end-independent oracle in differential tests.

mod expr;
mod layout;
mod node;
mod physical;
pub mod reference;

pub use expr::{col, ArithOp, CmpKind, Expr};
pub use expr::{lit_bool, lit_date, lit_dec, lit_f64, lit_i32, lit_i64, lit_str};
pub use layout::{field_size, RowField, RowLayout};
pub use node::{AggFunc, CatalogFn, PlanError, PlanNode, TableSchema};
pub use physical::{CtxEntry, PhysicalPlan, Pipeline, Sink, Source, StreamOp};
