//! Materialized row layouts.

use qc_storage::ColumnType;

/// One field of a materialized row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowField {
    /// Field (column) name.
    pub name: String,
    /// Value type.
    pub ty: ColumnType,
    /// Byte offset within the row.
    pub offset: u32,
}

/// Byte layout of a materialized row (hash-table payloads, tuple-buffer
/// rows, query output).
///
/// All scalar fields occupy 8 bytes (integers sign-extended, booleans
/// zero-extended) and 16-byte values (`decimal`, `string`) occupy 16; this
/// uniformity keeps code generation simple across five back-ends while
/// preserving the paper-relevant property that decimals and strings are
/// two-register values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowLayout {
    /// Fields in declaration order.
    pub fields: Vec<RowField>,
    /// Total row size in bytes (16-byte aligned).
    pub size: u32,
}

/// Storage width of one field in a materialized row.
pub fn field_size(ty: ColumnType) -> u32 {
    match ty {
        ColumnType::Decimal(_) | ColumnType::Str => 16,
        _ => 8,
    }
}

impl RowLayout {
    /// Builds a layout from `(name, type)` pairs.
    pub fn new(fields: &[(String, ColumnType)]) -> Self {
        let mut offset = 0u32;
        let fields = fields
            .iter()
            .map(|(name, ty)| {
                let f = RowField {
                    name: name.clone(),
                    ty: *ty,
                    offset,
                };
                offset += field_size(*ty);
                f
            })
            .collect();
        RowLayout {
            fields,
            size: (offset + 15) & !15,
        }
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&RowField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// `(name, type)` pairs of all fields.
    pub fn schema(&self) -> Vec<(String, ColumnType)> {
        self.fields.iter().map(|f| (f.name.clone(), f.ty)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_size() {
        let l = RowLayout::new(&[
            ("a".into(), ColumnType::I64),
            ("b".into(), ColumnType::Decimal(2)),
            ("c".into(), ColumnType::I32),
            ("d".into(), ColumnType::Str),
        ]);
        assert_eq!(l.field("a").unwrap().offset, 0);
        assert_eq!(l.field("b").unwrap().offset, 8);
        assert_eq!(l.field("c").unwrap().offset, 24);
        assert_eq!(l.field("d").unwrap().offset, 32);
        assert_eq!(l.size, 48);
        assert!(l.field("missing").is_none());
    }

    #[test]
    fn size_is_16_aligned() {
        let l = RowLayout::new(&[("a".into(), ColumnType::I64)]);
        assert_eq!(l.size, 16);
        let empty = RowLayout::new(&[]);
        assert_eq!(empty.size, 0);
    }
}
