//! Multi-query serving scheduler.
//!
//! [`QueryScheduler::serve`] drives many concurrent query sessions over
//! one shared [`Engine`] + [`CompileService`] (and therefore one shared
//! code cache — repeated query shapes compile once and hit the cache
//! afterwards). The scheduler provides the *inter*-query parallelism
//! axis of the serving story; [`crate::MorselExecutor`] provides the
//! *intra*-query axis. A serving deployment picks one per tier of the
//! workload: many small queries → scheduler, one huge query → morsel
//! executor.
//!
//! Mechanics:
//!
//! * **Bounded admission.** At most [`SchedulerConfig::admission_limit`]
//!   queries are admitted (prepared + compiled) at a time; the rest
//!   wait in a FIFO submission queue. This bounds memory (each admitted
//!   query holds executables and runtime state) and keeps the cache
//!   warm-up serial enough to be effective.
//! * **Fairness.** Admitted queries sit in a round-robin ready queue.
//!   A worker pops the front, runs a slice of
//!   [`SchedulerConfig::morsel_credits`] morsels through the
//!   incremental [`QueryExecution`] stepper, and pushes the query to
//!   the back. No query can starve another by more than one slice.
//! * **Tier-up priority.** When a background tier is configured, a
//!   small number of in-flight background compiles
//!   ([`SchedulerConfig::tier_up_inflight`]) is granted to the admitted
//!   queries with the **most remaining morsels** — the queries with the
//!   most execution left to amortize an expensive compile, mirroring
//!   the paper's adaptive-execution argument. Completed tiers are
//!   adopted at the next slice boundary (a morsel boundary, so the
//!   swap is exactly as safe as the single-query adaptive path).

use crate::compile_service::{CompileService, PendingCompile};
use crate::engine::{CompiledQuery, Engine, EngineError, PreparedQuery};
use crate::morsel_exec::{QueryExecution, StepProgress};
use crate::session::{Session, StatementCache};
use qc_backend::Backend;
use qc_plan::PlanNode;
use qc_runtime::SqlValue;
use qc_timing::TimeTrace;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`QueryScheduler`].
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Serving worker threads (each runs one query slice at a time).
    pub workers: usize,
    /// Maximum concurrently admitted (prepared + compiled) queries.
    pub admission_limit: usize,
    /// Morsels a query may run per slice before yielding the worker.
    pub morsel_credits: u64,
    /// Optional background tier: queries tier up to this back-end while
    /// executing their first tier.
    pub tier_up_backend: Option<Arc<dyn Backend>>,
    /// Maximum concurrent background tier-up compiles.
    pub tier_up_inflight: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            admission_limit: 16,
            morsel_credits: 8,
            tier_up_backend: None,
            tier_up_inflight: 2,
        }
    }
}

/// One query session submitted to the scheduler.
pub struct SessionRequest {
    /// Session name (used in module names and the outcome).
    pub name: String,
    /// The logical plan to serve.
    pub plan: PlanNode,
}

/// Result of one served session.
pub struct QueryOutcome {
    /// Session name.
    pub name: String,
    /// Result rows (empty when `error` is set).
    pub rows: Vec<Vec<SqlValue>>,
    /// Time from submission to admission (prepare/compile start).
    pub queue_wait: Duration,
    /// Time from submission to completion.
    pub latency: Duration,
    /// Deterministic execution cycles.
    pub cycles: u64,
    /// Whether a background tier was adopted mid-query.
    pub tiered_up: bool,
    /// Failure description, if the session failed.
    pub error: Option<String>,
}

/// Aggregate result of one [`QueryScheduler::serve`] call.
pub struct ServeReport {
    /// Per-session outcomes in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Wall-clock time of the whole serve.
    pub wall: Duration,
    /// Total worker busy time (admission + execution slices).
    pub busy: Duration,
    /// Per-worker busy time. On a host with fewer cores than workers,
    /// wall clock under-reports the scheduling parallelism; the spread
    /// of this vector shows the work distribution directly.
    pub worker_busy: Vec<Duration>,
    /// Worker count used.
    pub workers: usize,
}

impl ServeReport {
    /// Completed queries per wall-clock second.
    pub fn throughput_qps(&self) -> f64 {
        self.outcomes.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of worker time spent busy, in `0.0..=1.0`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        (self.busy.as_secs_f64() / capacity.max(1e-9)).min(1.0)
    }

    /// Sessions that failed.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.error.is_some()).count()
    }

    /// Work-distribution speedup: total busy time over the busiest
    /// worker's busy time. This is the model-time speedup the serve
    /// would achieve on one core per worker — `workers`-ideal when the
    /// round-robin credits balance perfectly, 1.0 when one worker did
    /// everything. Unlike wall-clock throughput it is meaningful even
    /// when the host has fewer cores than serving workers.
    pub fn parallel_speedup(&self) -> f64 {
        let max = self
            .worker_busy
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        self.busy.as_secs_f64() / max.max(1e-9)
    }
}

/// One admitted query session. The prepared query is shared (`Arc`)
/// because admission may have answered it from a session's
/// prepared-statement cache.
struct Active {
    index: usize,
    name: String,
    prepared: Arc<PreparedQuery>,
    compiled: CompiledQuery,
    exec: QueryExecution,
    queue_wait: Duration,
    /// Estimated morsels left (tier-up priority key).
    remaining: u64,
    pending_tier: Option<PendingCompile>,
    tiered_up: bool,
}

/// Scheduler state shared by the serving workers.
struct SchedState {
    pending: VecDeque<(usize, SessionRequest)>,
    ready: VecDeque<Active>,
    outcomes: Vec<Option<QueryOutcome>>,
    active: usize,
    done: usize,
    tier_inflight: usize,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// The serving scheduler. See the module docs.
pub struct QueryScheduler {
    config: SchedulerConfig,
}

impl QueryScheduler {
    /// Creates a scheduler with `config`.
    ///
    /// # Panics
    /// Panics when `workers`, `admission_limit` or `morsel_credits` is
    /// zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.workers > 0, "scheduler needs at least one worker");
        assert!(config.admission_limit > 0, "admission limit must be > 0");
        assert!(config.morsel_credits > 0, "morsel credits must be > 0");
        QueryScheduler { config }
    }

    /// Serves `requests` to completion and reports per-session
    /// outcomes plus aggregate throughput/utilization.
    pub fn serve(
        &self,
        engine: &Engine<'_>,
        service: &CompileService,
        backend: &Arc<dyn Backend>,
        requests: Vec<SessionRequest>,
    ) -> ServeReport {
        self.serve_inner(engine, service, backend, None, requests)
    }

    /// Serves `requests` on top of a [`Session`]: admission consults
    /// the session's prepared-statement cache (repeated plan shapes
    /// skip planning and IR generation, not just back-end compilation)
    /// and its compile service with any attached persistent artifact
    /// store.
    pub fn serve_session(
        &self,
        session: &Session<'_>,
        backend: &Arc<dyn Backend>,
        requests: Vec<SessionRequest>,
    ) -> ServeReport {
        self.serve_inner(
            session.engine(),
            session.compile_service(),
            backend,
            Some(session.statements().as_ref()),
            requests,
        )
    }

    fn serve_inner(
        &self,
        engine: &Engine<'_>,
        service: &CompileService,
        backend: &Arc<dyn Backend>,
        statements: Option<&StatementCache>,
        requests: Vec<SessionRequest>,
    ) -> ServeReport {
        let total = requests.len();
        let start = Instant::now();
        let shared = Shared {
            state: Mutex::new(SchedState {
                pending: requests.into_iter().enumerate().collect(),
                ready: VecDeque::new(),
                outcomes: (0..total).map(|_| None).collect(),
                active: 0,
                done: 0,
                tier_inflight: 0,
            }),
            cv: Condvar::new(),
        };

        let worker_busy: Vec<Duration> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..self.config.workers)
                .map(|_| {
                    let shared = &shared;
                    let config = &self.config;
                    s.spawn(move || {
                        serve_worker(
                            engine, service, backend, statements, config, shared, total, start,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serving worker panicked"))
                .collect()
        })
        .expect("serving scope");

        let state = shared.state.into_inner().expect("scheduler state poisoned");
        let outcomes = state
            .outcomes
            .into_iter()
            .map(|o| o.expect("every session reports an outcome"))
            .collect();
        ServeReport {
            outcomes,
            wall: start.elapsed(),
            busy: worker_busy.iter().sum(),
            worker_busy,
            workers: self.config.workers,
        }
    }
}

/// One serving worker: admits pending sessions while admission slots
/// are free, otherwise runs ready sessions one credit slice at a time.
/// Returns this worker's busy time.
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    engine: &Engine<'_>,
    service: &CompileService,
    backend: &Arc<dyn Backend>,
    statements: Option<&StatementCache>,
    config: &SchedulerConfig,
    shared: &Shared,
    total: usize,
    start: Instant,
) -> Duration {
    let mut busy = Duration::ZERO;
    loop {
        let mut g = shared.state.lock().expect("scheduler state poisoned");
        loop {
            if g.done == total {
                shared.cv.notify_all();
                return busy;
            }
            let can_admit = g.active < config.admission_limit && !g.pending.is_empty();
            if can_admit || !g.ready.is_empty() {
                break;
            }
            g = shared.cv.wait(g).expect("scheduler state poisoned");
        }

        if g.active < config.admission_limit && !g.pending.is_empty() {
            let (index, req) = g.pending.pop_front().expect("pending checked non-empty");
            g.active += 1;
            drop(g);
            let t0 = Instant::now();
            let queue_wait = start.elapsed();
            let admitted = admit(engine, service, backend, statements, index, req, queue_wait);
            busy += t0.elapsed();
            let mut g = shared.state.lock().expect("scheduler state poisoned");
            match admitted {
                Ok(active) => {
                    g.ready.push_back(active);
                    tier_up_governor(service, config, &mut g);
                }
                Err((index, name, err)) => {
                    let outcome = failed_outcome(name, queue_wait, start, &err);
                    finalize(&mut g, (index, outcome));
                }
            }
            shared.cv.notify_all();
            continue;
        }

        let mut a = g.ready.pop_front().expect("ready checked non-empty");
        drop(g);
        let t0 = Instant::now();

        // Adopt a completed background tier at the slice boundary (a
        // morsel boundary — the same safety contract as the adaptive
        // single-query path).
        let mut tier_done = false;
        if let Some(pending) = a.pending_tier.as_mut() {
            if let Some(result) = pending.try_take() {
                tier_done = true;
                a.pending_tier = None;
                if let Ok(replacement) = result {
                    a.compiled.adopt_replacement(replacement);
                    a.tiered_up = true;
                }
            }
        }

        let step = a
            .exec
            .step(engine, &a.prepared, &mut a.compiled, config.morsel_credits);
        busy += t0.elapsed();

        let mut g = shared.state.lock().expect("scheduler state poisoned");
        if tier_done {
            g.tier_inflight -= 1;
        }
        match step {
            Ok(StepProgress::Ran(_)) => {
                a.remaining = a.exec.remaining_morsels(engine, &a.prepared);
                g.ready.push_back(a);
                tier_up_governor(service, config, &mut g);
            }
            Ok(StepProgress::Done) => {
                let outcome = finish_outcome(a, start);
                finalize(&mut g, outcome);
            }
            Err(err) => {
                if a.pending_tier.is_some() {
                    g.tier_inflight -= 1; // abandoned in-flight compile
                }
                let outcome = (a.index, failed_outcome(a.name, a.queue_wait, start, &err));
                finalize(&mut g, outcome);
            }
        }
        shared.cv.notify_all();
    }
}

type AdmitError = (usize, String, EngineError);

/// Prepares and compiles one session through the shared service (and
/// therefore the shared code cache). With a statement cache, repeated
/// plan shapes skip planning and IR generation too — the prepared
/// query is then shared under the cache's canonical module name, which
/// is free because the code cache keys on structural hashes that
/// exclude names.
fn admit(
    engine: &Engine<'_>,
    service: &CompileService,
    backend: &Arc<dyn Backend>,
    statements: Option<&StatementCache>,
    index: usize,
    req: SessionRequest,
    queue_wait: Duration,
) -> Result<Active, AdmitError> {
    let fail = |name: &str, e: EngineError| (index, name.to_string(), e);
    let prepared = match statements {
        Some(cache) => {
            cache
                .get_or_prepare(engine, &req.plan)
                .map_err(|e| fail(&req.name, e))?
                .prepared
        }
        None => Arc::new(
            engine
                .prepare_internal(&req.plan, &req.name)
                .map_err(|e| fail(&req.name, e))?,
        ),
    };
    let compiled = service
        .compile(&prepared, backend, &TimeTrace::disabled())
        .map_err(|e| fail(&req.name, e))?;
    let exec = QueryExecution::new(engine, &prepared).map_err(|e| fail(&req.name, e))?;
    let remaining = exec.remaining_morsels(engine, &prepared);
    Ok(Active {
        index,
        name: req.name,
        prepared,
        compiled,
        exec,
        queue_wait,
        remaining,
        pending_tier: None,
        tiered_up: false,
    })
}

/// Grants free tier-up slots to the ready queries with the most
/// remaining morsels (the queries with the most execution left to
/// amortize the expensive compile).
fn tier_up_governor(service: &CompileService, config: &SchedulerConfig, g: &mut SchedState) {
    let Some(opt_backend) = config.tier_up_backend.as_ref() else {
        return;
    };
    while g.tier_inflight < config.tier_up_inflight {
        let candidate = g
            .ready
            .iter_mut()
            .filter(|a| a.pending_tier.is_none() && !a.tiered_up)
            .max_by_key(|a| a.remaining);
        let Some(a) = candidate else { return };
        if a.remaining == 0 {
            return;
        }
        a.pending_tier = Some(service.spawn_compile(&a.prepared, opt_backend));
        g.tier_inflight += 1;
    }
}

fn finalize(g: &mut SchedState, outcome: (usize, QueryOutcome)) {
    g.outcomes[outcome.0] = Some(outcome.1);
    g.active -= 1;
    g.done += 1;
}

fn finish_outcome(a: Active, start: Instant) -> (usize, QueryOutcome) {
    let Active {
        index,
        name,
        prepared,
        compiled,
        exec,
        queue_wait,
        tiered_up,
        ..
    } = a;
    match exec.into_result(&prepared, &compiled) {
        Ok(result) => (
            index,
            QueryOutcome {
                name,
                rows: result.rows,
                queue_wait,
                latency: start.elapsed(),
                cycles: result.exec_stats.cycles,
                tiered_up,
                error: None,
            },
        ),
        Err(err) => (index, failed_outcome(name, queue_wait, start, &err)),
    }
}

fn failed_outcome(
    name: String,
    queue_wait: Duration,
    start: Instant,
    err: &EngineError,
) -> QueryOutcome {
    QueryOutcome {
        name,
        rows: Vec::new(),
        queue_wait,
        latency: start.elapsed(),
        cycles: 0,
        tiered_up: false,
        error: Some(err.to_string()),
    }
}
