//! Multi-query serving scheduler.
//!
//! [`QueryScheduler::serve`] drives many concurrent query sessions over
//! one shared [`Engine`] + [`CompileService`] (and therefore one shared
//! code cache — repeated query shapes compile once and hit the cache
//! afterwards). The scheduler provides the *inter*-query parallelism
//! axis of the serving story; [`crate::MorselExecutor`] provides the
//! *intra*-query axis. A serving deployment picks one per tier of the
//! workload: many small queries → scheduler, one huge query → morsel
//! executor.
//!
//! Mechanics:
//!
//! * **Bounded admission.** At most [`SchedulerConfig::admission_limit`]
//!   queries are admitted (prepared + compiled) at a time; the rest
//!   wait in a FIFO submission queue. This bounds memory (each admitted
//!   query holds executables and runtime state) and keeps the cache
//!   warm-up serial enough to be effective.
//! * **Overload shedding.** With [`SchedulerConfig::max_queue_depth`]
//!   set, submissions beyond the depth are shed up front per
//!   [`ShedPolicy`] — rejected with an [`OutcomeStatus::Shed`] outcome
//!   instead of queueing unboundedly.
//! * **Fairness.** Admitted queries sit in a round-robin ready queue.
//!   A worker pops the front, runs a slice of
//!   [`SchedulerConfig::morsel_credits`] morsels through the
//!   incremental [`QueryExecution`] stepper, and pushes the query to
//!   the back. No query can starve another by more than one slice.
//! * **Tier-up priority.** When a background tier is configured, a
//!   small number of in-flight background compiles
//!   ([`SchedulerConfig::tier_up_inflight`]) is granted to the admitted
//!   queries with the **most remaining morsels** — the queries with the
//!   most execution left to amortize an expensive compile, mirroring
//!   the paper's adaptive-execution argument. Completed tiers are
//!   adopted at the next slice boundary (a morsel boundary, so the
//!   swap is exactly as safe as the single-query adaptive path).
//! * **Runaway governor.** With a [`RunawayPolicy`], the scheduler
//!   learns an EWMA of cycles-per-morsel over completed queries and
//!   applies the *inverse* of tier-up to queries blowing past their
//!   prediction: downgrade to the next [`FallbackChain`] tier (same
//!   morsel-boundary adoption machinery), or kill outright past the
//!   kill factor ([`OutcomeStatus::Killed`]).
//! * **Fault containment + circuit breaker.** Admission and execution
//!   slices run under `catch_unwind`, so a panicking query fails its
//!   own session, never the serve loop. With a [`BreakerPolicy`], K
//!   consecutive execution faults on one back-end tier trip that
//!   tier's breaker: subsequent admissions route down the fallback
//!   chain until the cooldown passes.

use crate::compile_service::{CompileService, PendingCompile};
use crate::engine::{CompiledQuery, Engine, EngineError, PreparedQuery, QueryBudget};
use crate::fallback::FallbackChain;
use crate::morsel_exec::{lock_recover, panic_text, QueryExecution, StepProgress};
use crate::session::{Session, StatementCache};
use qc_backend::Backend;
use qc_plan::PlanNode;
use qc_runtime::SqlValue;
use qc_timing::TimeTrace;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What happens to submissions beyond
/// [`SchedulerConfig::max_queue_depth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Shed the newest submissions (tail of the queue); the oldest
    /// waiters keep their place. The default.
    #[default]
    RejectNew,
    /// Shed the oldest submissions; the freshest requests are served
    /// (a recency-biased policy for workloads where stale queries have
    /// lost their value).
    DropOldest,
}

/// Runaway-query governor: queries that blow past the scheduler's
/// cycles-per-morsel prediction are downgraded a tier, or killed.
#[derive(Debug, Clone, Copy)]
pub struct RunawayPolicy {
    /// Downgrade when used cycles exceed `factor` × predicted.
    pub factor: f64,
    /// Kill when used cycles exceed `kill_factor` × predicted.
    pub kill_factor: f64,
    /// Completed queries needed before predictions are trusted.
    pub min_samples: u64,
}

impl Default for RunawayPolicy {
    fn default() -> Self {
        RunawayPolicy {
            factor: 4.0,
            kill_factor: 16.0,
            min_samples: 3,
        }
    }
}

/// Per-back-end-tier circuit breaker: after `trip_after` consecutive
/// execution faults on one tier, admissions route down the fallback
/// chain until `cooldown` passes.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive execution faults that trip the breaker.
    pub trip_after: u32,
    /// How long a tripped breaker stays open.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            trip_after: 3,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Configuration of a [`QueryScheduler`].
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Serving worker threads (each runs one query slice at a time).
    pub workers: usize,
    /// Maximum concurrently admitted (prepared + compiled) queries.
    pub admission_limit: usize,
    /// Morsels a query may run per slice before yielding the worker.
    pub morsel_credits: u64,
    /// Optional background tier: queries tier up to this back-end while
    /// executing their first tier.
    pub tier_up_backend: Option<Arc<dyn Backend>>,
    /// Maximum concurrent background tier-up compiles.
    pub tier_up_inflight: usize,
    /// Bound on accepted submissions per serve; beyond it, requests are
    /// shed per [`SchedulerConfig::shed_policy`]. `None` accepts all.
    pub max_queue_depth: Option<usize>,
    /// Which submissions to shed when over `max_queue_depth`.
    pub shed_policy: ShedPolicy,
    /// Default execution budget applied to every request that does not
    /// carry its own ([`SessionRequest::with_budget`] overrides).
    pub query_budget: Option<QueryBudget>,
    /// Runaway-query governor (downgrade/kill past prediction).
    pub runaway: Option<RunawayPolicy>,
    /// Per-tier circuit breaker on execution faults.
    pub breaker: Option<BreakerPolicy>,
    /// Degradation route shared by the runaway governor (downgrade
    /// target = tier below the current one) and the circuit breaker
    /// (admission reroute for open tiers).
    pub fallback_chain: Option<FallbackChain>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            admission_limit: 16,
            morsel_credits: 8,
            tier_up_backend: None,
            tier_up_inflight: 2,
            max_queue_depth: None,
            shed_policy: ShedPolicy::RejectNew,
            query_budget: None,
            runaway: None,
            breaker: None,
            fallback_chain: None,
        }
    }
}

impl SchedulerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`EngineError::Config`] when `workers`,
    /// `admission_limit` or `morsel_credits` is zero, when a set
    /// `max_queue_depth` is zero, when the runaway factors are
    /// nonsensical (`factor < 1` or `kill_factor < factor`), or when
    /// the breaker trips after zero faults.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.workers == 0 {
            return Err(EngineError::Config(
                "scheduler needs at least one worker".to_string(),
            ));
        }
        if self.admission_limit == 0 {
            return Err(EngineError::Config(
                "admission limit must be > 0".to_string(),
            ));
        }
        if self.morsel_credits == 0 {
            return Err(EngineError::Config(
                "morsel credits must be > 0".to_string(),
            ));
        }
        if self.max_queue_depth == Some(0) {
            return Err(EngineError::Config(
                "max_queue_depth must be > 0 when set".to_string(),
            ));
        }
        if let Some(r) = &self.runaway {
            if r.factor < 1.0 || r.kill_factor < r.factor {
                return Err(EngineError::Config(format!(
                    "runaway policy needs 1.0 <= factor <= kill_factor \
                     (got factor {} kill_factor {})",
                    r.factor, r.kill_factor
                )));
            }
        }
        if let Some(b) = &self.breaker {
            if b.trip_after == 0 {
                return Err(EngineError::Config(
                    "breaker trip_after must be > 0".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// One query session submitted to the scheduler.
pub struct SessionRequest {
    /// Session name (used in module names and the outcome).
    pub name: String,
    /// The logical plan to serve.
    pub plan: PlanNode,
    /// Per-request execution budget; `None` falls back to
    /// [`SchedulerConfig::query_budget`].
    pub budget: Option<QueryBudget>,
}

impl SessionRequest {
    /// A request with the scheduler's default budget.
    pub fn new(name: impl Into<String>, plan: PlanNode) -> Self {
        SessionRequest {
            name: name.into(),
            plan,
            budget: None,
        }
    }

    /// Attaches a per-request execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// How one served session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeStatus {
    /// Completed with rows.
    Ok,
    /// Failed with an execution or compilation error.
    Failed,
    /// Rejected up front by overload shedding — never admitted.
    Shed,
    /// Stopped by the runaway governor or its [`QueryBudget`]
    /// (deadline, cycle/row cap, cancellation).
    Killed,
}

/// Result of one served session.
pub struct QueryOutcome {
    /// Session name.
    pub name: String,
    /// Result rows (empty unless `status` is [`OutcomeStatus::Ok`]).
    pub rows: Vec<Vec<SqlValue>>,
    /// Time from submission to admission (prepare/compile start).
    pub queue_wait: Duration,
    /// Time from submission to completion.
    pub latency: Duration,
    /// Deterministic execution cycles (partial for killed queries).
    pub cycles: u64,
    /// Whether a background tier was adopted mid-query.
    pub tiered_up: bool,
    /// How the session ended.
    pub status: OutcomeStatus,
    /// Failure description, if the session did not complete.
    pub error: Option<String>,
}

/// Aggregate result of one [`QueryScheduler::serve`] call.
pub struct ServeReport {
    /// Per-session outcomes in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Wall-clock time of the whole serve.
    pub wall: Duration,
    /// Total worker busy time (admission + execution slices).
    pub busy: Duration,
    /// Per-worker busy time. On a host with fewer cores than workers,
    /// wall clock under-reports the scheduling parallelism; the spread
    /// of this vector shows the work distribution directly.
    pub worker_busy: Vec<Duration>,
    /// Worker count used.
    pub workers: usize,
    /// Runaway-governor downgrades granted.
    pub runaway_downgrades: u64,
    /// Queries killed (runaway kill or budget trip).
    pub queries_killed: u64,
    /// Circuit-breaker trips across all tiers.
    pub breaker_trips: u64,
}

impl ServeReport {
    /// Completed queries per wall-clock second.
    pub fn throughput_qps(&self) -> f64 {
        self.outcomes.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of worker time spent busy, in `0.0..=1.0`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        (self.busy.as_secs_f64() / capacity.max(1e-9)).min(1.0)
    }

    fn count(&self, status: OutcomeStatus) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }

    /// Sessions that failed with an error.
    pub fn failed(&self) -> usize {
        self.count(OutcomeStatus::Failed)
    }

    /// Sessions shed by overload protection (never admitted).
    pub fn shed(&self) -> usize {
        self.count(OutcomeStatus::Shed)
    }

    /// Sessions killed by the runaway governor or their budget.
    pub fn killed(&self) -> usize {
        self.count(OutcomeStatus::Killed)
    }

    /// Sessions that did not complete: failed + killed. Shed sessions
    /// are counted separately ([`ServeReport::shed`]) — they were
    /// rejected by policy, not broken by a fault.
    pub fn failures(&self) -> usize {
        self.failed() + self.killed()
    }

    /// Work-distribution speedup: total busy time over the busiest
    /// worker's busy time. This is the model-time speedup the serve
    /// would achieve on one core per worker — `workers`-ideal when the
    /// round-robin credits balance perfectly, 1.0 when one worker did
    /// everything. Unlike wall-clock throughput it is meaningful even
    /// when the host has fewer cores than serving workers.
    pub fn parallel_speedup(&self) -> f64 {
        let max = self
            .worker_busy
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
            .as_secs_f64();
        self.busy.as_secs_f64() / max.max(1e-9)
    }
}

/// One admitted query session. The prepared query is shared (`Arc`)
/// because admission may have answered it from a session's
/// prepared-statement cache.
struct Active {
    index: usize,
    name: String,
    prepared: Arc<PreparedQuery>,
    compiled: CompiledQuery,
    exec: QueryExecution,
    queue_wait: Duration,
    /// Estimated morsels left (tier-up priority key).
    remaining: u64,
    /// Morsel estimate at admission (runaway prediction base).
    initial_morsels: u64,
    pending_tier: Option<PendingCompile>,
    tiered_up: bool,
    /// Whether the runaway governor already downgraded this query.
    downgraded: bool,
}

#[derive(Default)]
struct BreakerState {
    consecutive: u32,
    open_until: Option<Instant>,
}

/// Scheduler state shared by the serving workers.
struct SchedState {
    pending: VecDeque<(usize, SessionRequest)>,
    ready: VecDeque<Active>,
    outcomes: Vec<Option<QueryOutcome>>,
    active: usize,
    done: usize,
    tier_inflight: usize,
    /// EWMA of cycles-per-morsel over completed queries (runaway
    /// prediction).
    cpm_ewma: f64,
    cpm_samples: u64,
    breakers: HashMap<&'static str, BreakerState>,
    runaway_downgrades: u64,
    queries_killed: u64,
    breaker_trips: u64,
}

impl SchedState {
    /// Whether `tier`'s breaker is open right now; an expired cooldown
    /// closes the breaker (and forgives its fault streak) on the way.
    fn breaker_open(&mut self, tier: &str, now: Instant) -> bool {
        if let Some(b) = self.breakers.get_mut(tier) {
            if let Some(until) = b.open_until {
                if now < until {
                    return true;
                }
                b.open_until = None;
                b.consecutive = 0;
            }
        }
        false
    }

    fn record_exec_fault(&mut self, tier: &'static str, policy: &BreakerPolicy, now: Instant) {
        let b = self.breakers.entry(tier).or_default();
        b.consecutive += 1;
        let trip = b.open_until.is_none() && b.consecutive >= policy.trip_after;
        if trip {
            b.open_until = Some(now + policy.cooldown);
            self.breaker_trips += 1;
        }
    }

    fn record_exec_ok(&mut self, tier: &str) {
        if let Some(b) = self.breakers.get_mut(tier) {
            if b.open_until.is_none() {
                b.consecutive = 0;
            }
        }
    }
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// The serving scheduler. See the module docs.
pub struct QueryScheduler {
    config: SchedulerConfig,
}

impl QueryScheduler {
    /// Creates a scheduler after validating `config`.
    ///
    /// # Errors
    /// Returns [`EngineError::Config`] when
    /// [`SchedulerConfig::validate`] rejects the configuration.
    pub fn try_new(config: SchedulerConfig) -> Result<Self, EngineError> {
        config.validate()?;
        Ok(QueryScheduler { config })
    }

    /// Creates a scheduler with `config`.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see
    /// [`SchedulerConfig::validate`]).
    #[deprecated(note = "use `QueryScheduler::try_new`, which validates instead of panicking")]
    pub fn new(config: SchedulerConfig) -> Self {
        match Self::try_new(config) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Serves `requests` to completion and reports per-session
    /// outcomes plus aggregate throughput/utilization.
    pub fn serve(
        &self,
        engine: &Engine<'_>,
        service: &CompileService,
        backend: &Arc<dyn Backend>,
        requests: Vec<SessionRequest>,
    ) -> ServeReport {
        self.serve_inner(engine, service, backend, None, requests)
    }

    /// Serves `requests` on top of a [`Session`]: admission consults
    /// the session's prepared-statement cache (repeated plan shapes
    /// skip planning and IR generation, not just back-end compilation)
    /// and its compile service with any attached persistent artifact
    /// store.
    pub fn serve_session(
        &self,
        session: &Session<'_>,
        backend: &Arc<dyn Backend>,
        requests: Vec<SessionRequest>,
    ) -> ServeReport {
        self.serve_inner(
            session.engine(),
            session.compile_service(),
            backend,
            Some(session.statements().as_ref()),
            requests,
        )
    }

    fn serve_inner(
        &self,
        engine: &Engine<'_>,
        service: &CompileService,
        backend: &Arc<dyn Backend>,
        statements: Option<&StatementCache>,
        requests: Vec<SessionRequest>,
    ) -> ServeReport {
        let total = requests.len();
        let start = Instant::now();
        let mut accepted: VecDeque<(usize, SessionRequest)> =
            requests.into_iter().enumerate().collect();

        // Overload shedding happens up front: this serve model takes
        // the whole batch as the arrival queue, so everything past the
        // depth bound is rejected per policy before any work starts.
        let mut shed_outcomes: Vec<(usize, QueryOutcome)> = Vec::new();
        if let Some(depth) = self.config.max_queue_depth {
            if accepted.len() > depth {
                let shed: Vec<(usize, SessionRequest)> = match self.config.shed_policy {
                    ShedPolicy::RejectNew => accepted.split_off(depth).into(),
                    ShedPolicy::DropOldest => {
                        let keep = accepted.split_off(accepted.len() - depth);
                        std::mem::replace(&mut accepted, keep).into()
                    }
                };
                for (index, req) in shed {
                    shed_outcomes.push((
                        index,
                        QueryOutcome {
                            name: req.name,
                            rows: Vec::new(),
                            queue_wait: Duration::ZERO,
                            latency: Duration::ZERO,
                            cycles: 0,
                            tiered_up: false,
                            status: OutcomeStatus::Shed,
                            error: Some(format!(
                                "shed: queue depth {depth} exceeded ({total} submitted)"
                            )),
                        },
                    ));
                }
            }
        }

        let mut outcomes: Vec<Option<QueryOutcome>> = (0..total).map(|_| None).collect();
        let shed_count = shed_outcomes.len();
        for (index, outcome) in shed_outcomes {
            outcomes[index] = Some(outcome);
        }
        let shared = Shared {
            state: Mutex::new(SchedState {
                pending: accepted,
                ready: VecDeque::new(),
                outcomes,
                active: 0,
                done: shed_count,
                tier_inflight: 0,
                cpm_ewma: 0.0,
                cpm_samples: 0,
                breakers: HashMap::new(),
                runaway_downgrades: 0,
                queries_killed: 0,
                breaker_trips: 0,
            }),
            cv: Condvar::new(),
        };

        let worker_busy: Vec<Duration> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..self.config.workers)
                .map(|_| {
                    let shared = &shared;
                    let config = &self.config;
                    s.spawn(move || {
                        serve_worker(
                            engine, service, backend, statements, config, shared, total, start,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(Duration::ZERO))
                .collect()
        })
        .unwrap_or_default();

        let state = shared
            .state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let outcomes = state
            .outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                // Defensive: every path records an outcome; a lost one
                // reports as a failure rather than panicking the serve.
                o.unwrap_or_else(|| QueryOutcome {
                    name: format!("session-{i}"),
                    rows: Vec::new(),
                    queue_wait: Duration::ZERO,
                    latency: start.elapsed(),
                    cycles: 0,
                    tiered_up: false,
                    status: OutcomeStatus::Failed,
                    error: Some("scheduler lost this session's outcome".to_string()),
                })
            })
            .collect();
        ServeReport {
            outcomes,
            wall: start.elapsed(),
            busy: worker_busy.iter().sum(),
            worker_busy,
            workers: self.config.workers,
            runaway_downgrades: state.runaway_downgrades,
            queries_killed: state.queries_killed,
            breaker_trips: state.breaker_trips,
        }
    }
}

fn lock_shared(shared: &Shared) -> std::sync::MutexGuard<'_, SchedState> {
    lock_recover(&shared.state)
}

/// Picks the back-end for one admission: the requested tier unless its
/// circuit breaker is open, in which case the first closed tier down
/// the fallback chain (fail-open to the requested tier when every
/// breaker is open or no chain is configured).
fn route_backend(
    config: &SchedulerConfig,
    backend: &Arc<dyn Backend>,
    g: &mut SchedState,
) -> Arc<dyn Backend> {
    if config.breaker.is_none() {
        return Arc::clone(backend);
    }
    let now = Instant::now();
    if !g.breaker_open(backend.name(), now) {
        return Arc::clone(backend);
    }
    if let Some(chain) = &config.fallback_chain {
        let tiers = chain.tiers();
        let from = tiers
            .iter()
            .position(|t| t.name() == backend.name())
            .map_or(0, |i| i + 1);
        for tier in &tiers[from.min(tiers.len())..] {
            if !g.breaker_open(tier.name(), now) {
                return Arc::clone(tier);
            }
        }
    }
    Arc::clone(backend)
}

/// What the runaway governor decided for one query after a slice.
enum RunawayAction {
    None,
    Downgrade,
    Kill { used: u64, predicted: u64 },
}

fn runaway_check(config: &SchedulerConfig, g: &SchedState, a: &Active) -> RunawayAction {
    let Some(policy) = &config.runaway else {
        return RunawayAction::None;
    };
    if g.cpm_samples < policy.min_samples || a.initial_morsels == 0 {
        return RunawayAction::None;
    }
    let predicted = g.cpm_ewma * a.initial_morsels as f64;
    let used = a.exec.tally().cycles as f64;
    if used > predicted * policy.kill_factor {
        return RunawayAction::Kill {
            used: used as u64,
            predicted: predicted as u64,
        };
    }
    if used > predicted * policy.factor && !a.downgraded && a.pending_tier.is_none() {
        return RunawayAction::Downgrade;
    }
    RunawayAction::None
}

/// One serving worker: admits pending sessions while admission slots
/// are free, otherwise runs ready sessions one credit slice at a time.
/// Returns this worker's busy time.
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    engine: &Engine<'_>,
    service: &CompileService,
    backend: &Arc<dyn Backend>,
    statements: Option<&StatementCache>,
    config: &SchedulerConfig,
    shared: &Shared,
    total: usize,
    start: Instant,
) -> Duration {
    let mut busy = Duration::ZERO;
    loop {
        let mut g = lock_shared(shared);
        loop {
            if g.done == total {
                shared.cv.notify_all();
                return busy;
            }
            let can_admit = g.active < config.admission_limit && !g.pending.is_empty();
            if can_admit || !g.ready.is_empty() {
                break;
            }
            g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }

        if g.active < config.admission_limit && !g.pending.is_empty() {
            let Some((index, req)) = g.pending.pop_front() else {
                continue;
            };
            g.active += 1;
            let routed = route_backend(config, backend, &mut g);
            drop(g);
            let t0 = Instant::now();
            let queue_wait = start.elapsed();
            let name = req.name.clone();
            // Admission fault containment: a panicking planner/compiler
            // fails this session, not the serve loop.
            let admitted = catch_unwind(AssertUnwindSafe(|| {
                admit(
                    engine, service, &routed, statements, config, index, req, queue_wait,
                )
            }))
            .unwrap_or_else(|payload| {
                Err((
                    index,
                    name,
                    EngineError::WorkerPanic(panic_text(payload.as_ref())),
                ))
            });
            busy += t0.elapsed();
            let mut g = lock_shared(shared);
            match admitted {
                Ok(active) => {
                    g.ready.push_back(active);
                    tier_up_governor(service, config, &mut g);
                }
                Err((index, name, err)) => {
                    let outcome = failed_outcome(name, queue_wait, start, &err);
                    if outcome.status == OutcomeStatus::Killed {
                        g.queries_killed += 1;
                    }
                    finalize(&mut g, (index, outcome));
                }
            }
            shared.cv.notify_all();
            continue;
        }

        let Some(mut a) = g.ready.pop_front() else {
            continue;
        };
        drop(g);
        let t0 = Instant::now();

        // Adopt a completed background tier at the slice boundary (a
        // morsel boundary — the same safety contract as the adaptive
        // single-query path). Tier-ups and runaway downgrades share
        // this machinery.
        let mut tier_done = false;
        if let Some(pending) = a.pending_tier.as_mut() {
            if let Some(result) = pending.try_take() {
                tier_done = true;
                a.pending_tier = None;
                if let Ok(replacement) = result {
                    a.compiled.adopt_replacement(replacement);
                    a.tiered_up = true;
                }
            }
        }

        // Execution fault containment: generated code panicking inside
        // a slice fails this session, not the serve loop.
        let step = catch_unwind(AssertUnwindSafe(|| {
            a.exec
                .step(engine, &a.prepared, &mut a.compiled, config.morsel_credits)
        }))
        .unwrap_or_else(|payload| Err(EngineError::WorkerPanic(panic_text(payload.as_ref()))));
        busy += t0.elapsed();

        let mut g = lock_shared(shared);
        if tier_done {
            g.tier_inflight -= 1;
        }
        match step {
            Ok(StepProgress::Ran(_)) => {
                a.remaining = a.exec.remaining_morsels(engine, &a.prepared);
                match runaway_check(config, &g, &a) {
                    RunawayAction::Kill { used, predicted } => {
                        if a.pending_tier.is_some() {
                            g.tier_inflight -= 1;
                        }
                        g.queries_killed += 1;
                        let outcome = QueryOutcome {
                            name: a.name,
                            rows: Vec::new(),
                            queue_wait: a.queue_wait,
                            latency: start.elapsed(),
                            cycles: a.exec.tally().cycles,
                            tiered_up: a.tiered_up,
                            status: OutcomeStatus::Killed,
                            error: Some(format!(
                                "killed: runaway query used {used} cycles \
                                 against a predicted {predicted}"
                            )),
                        };
                        finalize(&mut g, (a.index, outcome));
                    }
                    RunawayAction::Downgrade => {
                        if let Some(tier) = config
                            .fallback_chain
                            .as_ref()
                            .and_then(|c| c.tier_below(a.compiled.backend_name))
                        {
                            a.pending_tier = Some(service.spawn_compile(&a.prepared, tier));
                            a.downgraded = true;
                            g.tier_inflight += 1;
                            g.runaway_downgrades += 1;
                        }
                        g.ready.push_back(a);
                    }
                    RunawayAction::None => {
                        g.ready.push_back(a);
                        tier_up_governor(service, config, &mut g);
                    }
                }
            }
            Ok(StepProgress::Done) => {
                let backend_name = a.compiled.backend_name;
                let cpm = a.exec.tally().cycles as f64 / a.initial_morsels.max(1) as f64;
                let outcome = finish_outcome(a, start);
                if outcome.1.status == OutcomeStatus::Ok {
                    // Feed the runaway predictor and forgive the tier's
                    // fault streak.
                    if g.cpm_samples == 0 {
                        g.cpm_ewma = cpm;
                    } else {
                        g.cpm_ewma = 0.8 * g.cpm_ewma + 0.2 * cpm;
                    }
                    g.cpm_samples += 1;
                    g.record_exec_ok(backend_name);
                }
                finalize(&mut g, outcome);
            }
            Err(err) => {
                if a.pending_tier.is_some() {
                    g.tier_inflight -= 1; // abandoned in-flight compile
                }
                let is_exec_fault =
                    matches!(err, EngineError::Trap(_) | EngineError::WorkerPanic(_));
                if is_exec_fault {
                    if let Some(policy) = &config.breaker {
                        g.record_exec_fault(a.compiled.backend_name, policy, Instant::now());
                    }
                }
                let outcome = failed_outcome(a.name, a.queue_wait, start, &err);
                if outcome.status == OutcomeStatus::Killed {
                    g.queries_killed += 1;
                }
                finalize(&mut g, (a.index, outcome));
            }
        }
        shared.cv.notify_all();
    }
}

type AdmitError = (usize, String, EngineError);

/// Prepares and compiles one session through the shared service (and
/// therefore the shared code cache). With a statement cache, repeated
/// plan shapes skip planning and IR generation too — the prepared
/// query is then shared under the cache's canonical module name, which
/// is free because the code cache keys on structural hashes that
/// exclude names.
#[allow(clippy::too_many_arguments)]
fn admit(
    engine: &Engine<'_>,
    service: &CompileService,
    backend: &Arc<dyn Backend>,
    statements: Option<&StatementCache>,
    config: &SchedulerConfig,
    index: usize,
    req: SessionRequest,
    queue_wait: Duration,
) -> Result<Active, AdmitError> {
    let fail = |name: &str, e: EngineError| (index, name.to_string(), e);
    let prepared = match statements {
        Some(cache) => {
            cache
                .get_or_prepare(engine, &req.plan)
                .map_err(|e| fail(&req.name, e))?
                .prepared
        }
        None => Arc::new(
            engine
                .prepare_internal(&req.plan, &req.name)
                .map_err(|e| fail(&req.name, e))?,
        ),
    };
    let compiled = service
        .compile(&prepared, backend, &TimeTrace::disabled())
        .map_err(|e| fail(&req.name, e))?;
    let budget = req
        .budget
        .or_else(|| config.query_budget.clone())
        .unwrap_or_default();
    let exec =
        QueryExecution::with_budget(engine, &prepared, budget).map_err(|e| fail(&req.name, e))?;
    let remaining = exec.remaining_morsels(engine, &prepared);
    Ok(Active {
        index,
        name: req.name,
        prepared,
        compiled,
        exec,
        queue_wait,
        remaining,
        initial_morsels: remaining,
        pending_tier: None,
        tiered_up: false,
        downgraded: false,
    })
}

/// Grants free tier-up slots to the ready queries with the most
/// remaining morsels (the queries with the most execution left to
/// amortize the expensive compile). Queries the runaway governor
/// downgraded are excluded — tiering them back up would fight it.
fn tier_up_governor(service: &CompileService, config: &SchedulerConfig, g: &mut SchedState) {
    let Some(opt_backend) = config.tier_up_backend.as_ref() else {
        return;
    };
    while g.tier_inflight < config.tier_up_inflight {
        let candidate = g
            .ready
            .iter_mut()
            .filter(|a| a.pending_tier.is_none() && !a.tiered_up && !a.downgraded)
            .max_by_key(|a| a.remaining);
        let Some(a) = candidate else { return };
        if a.remaining == 0 {
            return;
        }
        a.pending_tier = Some(service.spawn_compile(&a.prepared, opt_backend));
        g.tier_inflight += 1;
    }
}

fn finalize(g: &mut SchedState, outcome: (usize, QueryOutcome)) {
    g.outcomes[outcome.0] = Some(outcome.1);
    g.active -= 1;
    g.done += 1;
}

fn finish_outcome(a: Active, start: Instant) -> (usize, QueryOutcome) {
    let Active {
        index,
        name,
        prepared,
        compiled,
        exec,
        queue_wait,
        tiered_up,
        ..
    } = a;
    match exec.into_result(&prepared, &compiled) {
        Ok(result) => (
            index,
            QueryOutcome {
                name,
                rows: result.rows,
                queue_wait,
                latency: start.elapsed(),
                cycles: result.exec_stats.cycles,
                tiered_up,
                status: OutcomeStatus::Ok,
                error: None,
            },
        ),
        Err(err) => (index, failed_outcome(name, queue_wait, start, &err)),
    }
}

fn failed_outcome(
    name: String,
    queue_wait: Duration,
    start: Instant,
    err: &EngineError,
) -> QueryOutcome {
    let (status, cycles) = match err {
        EngineError::DeadlineExceeded { partial, .. }
        | EngineError::BudgetExhausted { partial, .. }
        | EngineError::Cancelled { partial } => (OutcomeStatus::Killed, partial.cycles),
        _ => (OutcomeStatus::Failed, 0),
    };
    QueryOutcome {
        name,
        rows: Vec::new(),
        queue_wait,
        latency: start.elapsed(),
        cycles,
        tiered_up: false,
        status,
        error: Some(err.to_string()),
    }
}
