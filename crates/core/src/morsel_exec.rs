//! Morsel-parallel execution (paper Sec. II: morsel-driven parallelism).
//!
//! Three layers live here:
//!
//! 1. [`ExecTally`] — swap-safe cycle accounting. Every generated-code
//!    call is charged by its own before/after [`qc_backend::Executable::exec_stats`]
//!    delta, so totals no longer depend on *which* executable instance
//!    (tier, worker clone) performed which call. This replaces the old
//!    per-tier baseline subtraction in `engine.rs`, which assumed a
//!    single executor mutating `compiled.executables`.
//! 2. [`QueryExecution`] — an incremental stepper that runs a prepared
//!    query morsel by morsel. [`crate::Engine::execute_with_hook`] is a
//!    loop over [`QueryExecution::step`]; the serving scheduler advances
//!    many executions in slices of a few morsels each.
//! 3. [`MorselExecutor`] — the parallel executor: a pool of workers,
//!    each owning a forked [`RuntimeState`] and its own executable
//!    instantiated from the pipeline's [`CodeArtifact`], pulling morsels
//!    from per-pipeline claimers (work-stealing deques or a shared
//!    ordered counter) and merging results deterministically at every
//!    pipeline barrier.
//!
//! # Determinism argument
//!
//! Workers never mutate shared containers: forked hash tables and tuple
//! buffers are read-only views of canonical state (build sides, scan
//! buffers), and each worker's generated `setup` creates private sink
//! containers in its own arena. At the pipeline barrier the coordinator
//! replays worker sink effects into the canonical state **in ascending
//! morsel order** — the exact order the single-threaded loop would have
//! produced them:
//!
//! * `Output` / `SortMaterialize` rows append in morsel order (the sort
//!   in `finish` is stable, so equal keys keep serial order).
//! * `JoinBuild` inserts replay from each worker's
//!   [`qc_runtime::HashTable::insert_log`] in morsel order, reproducing
//!   the serial insert sequence and therefore identical LIFO bucket
//!   chains and identical downstream probe order.
//! * `AggBuild` group *creation events* (rows of the worker's
//!   group-registration buffer) replay in `(morsel, in-morsel seq)`
//!   order. Provided each worker claims its morsels in ascending order,
//!   the first creation event for a group across all workers lands
//!   exactly at the group's serial first-occurrence position, so
//!   canonical groups are created in serial order; later events fold
//!   that worker's fully-accumulated partial state in with one combine.
//!   (This is why aggregation pipelines use the ordered claimer instead
//!   of stealing deques: a steal takes the victim's *largest* pending
//!   morsel, which would break per-worker ascending claim order.)
//!
//! Rows are therefore byte-identical to single-threaded execution for
//! every worker count and schedule. Cycle totals are exactly serial at
//! `workers == 1`; with more workers they additionally include each
//! worker's `setup` and duplicated group-creation work (real work in a
//! parallel model), and are reproducible run-to-run under
//! [`MorselSchedule::Static`] (under `Stealing` the claim interleaving —
//! and hence the total — varies with thread timing; rows still do not).
//!
//! Floating-point aggregation states (`F64` group keys or aggregates)
//! cannot merge bit-identically (FP addition is non-associative, and
//! `±0.0`/`NaN` break bytewise key equality), so such pipelines fall
//! back to the serial path — see [`sink_merge_supported`].

use crate::engine::{
    decode_rows, CompiledQuery, Engine, EngineError, ExecutionResult, MorselEvent, PreparedQuery,
    QueryBudget,
};
use qc_backend::{CodeArtifact, Executable};
use qc_plan::{AggFunc, CtxEntry, Pipeline, RowLayout, Sink, Source};
use qc_runtime::{
    entry_hash, HashTable, RtString, RuntimeState, ENTRY_HASH_OFFSET, ENTRY_NEXT_OFFSET,
    ENTRY_PAYLOAD_OFFSET,
};
use qc_storage::{ColumnType, Morsel};
use qc_target::{ExecStats, Trap};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------
// Swap-safe cycle accounting
// ---------------------------------------------------------------------

/// Accumulated deterministic execution cost, charged per generated-code
/// call rather than against a per-tier baseline. Budget errors
/// ([`EngineError::BudgetExhausted`] and friends) carry one of these as
/// the partial accounting of the work done before the budget tripped.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExecTally {
    /// Deterministic cycles.
    pub cycles: u64,
    /// Emulated instructions.
    pub insts: u64,
}

impl ExecTally {
    /// Runs `f` against `exe` and charges the executable's cycle and
    /// instruction deltas to this tally. Because the delta brackets one
    /// call, accounting stays correct across mid-query executable swaps
    /// and when many workers report independently.
    fn charge<R>(
        &mut self,
        exe: &mut dyn Executable,
        f: impl FnOnce(&mut dyn Executable) -> R,
    ) -> R {
        let before = exe.exec_stats();
        let out = f(exe);
        let after = exe.exec_stats();
        self.cycles += after.cycles - before.cycles;
        self.insts += after.insts - before.insts;
        out
    }
}

/// Charges one generated-code call with panic containment: a panic in
/// the callee surfaces as a typed [`EngineError::WorkerPanic`] instead
/// of unwinding through the executor. Used for the *serial* sections of
/// a parallel execution (canonical setup/finish, serial-fallback
/// pipelines) where there is no surviving worker to replay onto — the
/// query fails cleanly, the process never does.
fn charge_contained(
    tally: &mut ExecTally,
    exe: &mut dyn Executable,
    f: impl FnOnce(&mut dyn Executable) -> Result<[u64; 2], Trap>,
) -> Result<[u64; 2], EngineError> {
    match catch_unwind(AssertUnwindSafe(|| tally.charge(exe, f))) {
        Ok(r) => r.map_err(EngineError::from),
        Err(payload) => Err(EngineError::WorkerPanic(panic_text(payload.as_ref()))),
    }
}

// ---------------------------------------------------------------------
// Context construction
// ---------------------------------------------------------------------

/// Builds and fills the query context block: column base addresses and
/// interned string literals. Handle slots are written later by the
/// generated `setup` functions.
pub(crate) fn build_ctx(
    engine: &Engine<'_>,
    prepared: &PreparedQuery,
    state: &mut RuntimeState,
) -> Result<Vec<u8>, EngineError> {
    let plan = &prepared.plan;
    let db = engine.database();
    let mut ctx = vec![0u8; plan.ctx_size().max(8)];
    for entry in &plan.ctx {
        let off = plan.ctx_offset(entry) as usize;
        match entry {
            CtxEntry::ColumnBase { table, column } => {
                let t = db.table(table).ok_or_else(|| {
                    EngineError::Storage(format!(
                        "table `{table}` vanished between planning and execution"
                    ))
                })?;
                let base = t
                    .try_column_by_name(column)
                    .ok_or_else(|| {
                        EngineError::Storage(format!(
                            "column `{column}` vanished from table `{table}`"
                        ))
                    })?
                    .base_addr();
                ctx[off..off + 8].copy_from_slice(&base.to_le_bytes());
            }
            CtxEntry::StrConst(i) => {
                let s = state.intern_string(&plan.str_literals[*i]);
                ctx[off..off + 8].copy_from_slice(&s.lo.to_le_bytes());
                ctx[off + 8..off + 16].copy_from_slice(&s.hi.to_le_bytes());
            }
            _ => {} // handles are written by generated setup functions
        }
    }
    Ok(ctx)
}

fn ctx_handle(ctx: &[u8], off: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&ctx[off..off + 8]);
    u64::from_le_bytes(bytes)
}

/// Locks a mutex, recovering the data on poisoning. Every mutex in this
/// module guards plain claim/publication data whose invariants hold at
/// every await-free point, so a panicking worker cannot leave them in a
/// torn state; recovery keeps the query (and the serve loop above it)
/// alive instead of cascading the panic.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Text form of a panic payload (mirrors the compile service's
/// fault-envelope helper).
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Incremental stepper
// ---------------------------------------------------------------------

/// Progress of one [`QueryExecution::step`] call.
pub(crate) enum StepProgress {
    /// At least one morsel ran; the last one produced this event.
    Ran(MorselEvent),
    /// The query has finished all pipelines.
    Done,
}

/// Incremental morsel-wise execution of one prepared query.
///
/// `step` runs up to `max_morsels` morsels and returns, letting the
/// caller consult a tier-up hook (the engine) or switch to another
/// query (the serving scheduler). Pipeline `finish` runs on the step
/// *after* the pipeline's last morsel, preserving the serial contract
/// that the hook observes every morsel before its pipeline is sealed.
pub(crate) struct QueryExecution {
    state: RuntimeState,
    ctx: Vec<u8>,
    pipe_idx: usize,
    setup_done: bool,
    cursor: u64,
    total: u64,
    morsel: u64,
    morsels_done: u64,
    tally: ExecTally,
    budget: QueryBudget,
    started: Instant,
    /// Ctx offset of the output buffer slot (result-row budget checks).
    out_off: usize,
    /// Whether the output pipeline's `setup` has created the buffer.
    out_ready: bool,
}

impl QueryExecution {
    /// Creates the execution with per-morsel budget enforcement: runtime
    /// state plus filled context block. An unbudgeted run passes
    /// [`QueryBudget::unlimited`].
    pub(crate) fn with_budget(
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        budget: QueryBudget,
    ) -> Result<QueryExecution, EngineError> {
        let mut state = RuntimeState::new();
        let ctx = build_ctx(engine, prepared, &mut state)?;
        let out_off = prepared.plan.ctx_offset(&CtxEntry::OutputBuf) as usize;
        Ok(QueryExecution {
            state,
            ctx,
            pipe_idx: 0,
            setup_done: false,
            cursor: 0,
            total: 0,
            morsel: 1,
            morsels_done: 0,
            tally: ExecTally::default(),
            budget,
            started: Instant::now(),
            out_off,
            out_ready: false,
        })
    }

    /// Work charged so far (partial accounting for killed queries).
    pub(crate) fn tally(&self) -> ExecTally {
        self.tally
    }

    /// Result rows materialized so far (0 until the output pipeline's
    /// setup has created the buffer — handle numbering makes 0 a valid
    /// handle, so an explicit readiness flag gates the read).
    fn result_rows(&self) -> u64 {
        if !self.out_ready {
            return 0;
        }
        self.state.buffer(ctx_handle(&self.ctx, self.out_off)).len() as u64
    }

    /// Scan range `(total rows, morsel size)` of a pipeline source.
    fn scan_range(
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        state: &RuntimeState,
        ctx: &[u8],
        pipe: &Pipeline,
    ) -> Result<(u64, u64), EngineError> {
        match &pipe.source {
            Source::Table { name, .. } => {
                let rows = engine
                    .database()
                    .table(name)
                    .map(qc_storage::Table::row_count)
                    .ok_or_else(|| {
                        EngineError::Storage(format!(
                            "scan table `{name}` vanished between planning and execution"
                        ))
                    })?;
                Ok((rows as u64, engine.morsel_size() as u64))
            }
            Source::Buffer { buffer, limit, .. } => {
                let off = prepared.plan.ctx_offset(buffer) as usize;
                let len = state.buffer(ctx_handle(ctx, off)).len() as u64;
                let len = match limit {
                    Some(l) => len.min(*l as u64),
                    None => len,
                };
                Ok((len, len.max(1))) // buffer scans run as one morsel
            }
        }
    }

    /// Runs up to `max_morsels` morsels (crossing pipeline boundaries,
    /// running `finish`/`setup` as needed) and reports progress.
    ///
    /// # Errors
    /// Propagates traps from generated code and storage errors.
    pub(crate) fn step(
        &mut self,
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        max_morsels: u64,
    ) -> Result<StepProgress, EngineError> {
        let plan = &prepared.plan;
        let ctx_addr = self.ctx.as_ptr() as u64;
        let has_budget = !self.budget.is_unlimited();
        let mut ran = 0u64;
        while self.pipe_idx < plan.pipelines.len() {
            if !self.setup_done {
                let exe = compiled.executables[self.pipe_idx].as_mut();
                let state = &mut self.state;
                self.tally
                    .charge(exe, |e| e.call(state, "setup", &[ctx_addr]))?;
                let pipe = &plan.pipelines[self.pipe_idx];
                if matches!(pipe.sink, Sink::Output { .. }) {
                    self.out_ready = true;
                }
                let (total, morsel) =
                    Self::scan_range(engine, prepared, &self.state, &self.ctx, pipe)?;
                self.total = total;
                self.morsel = morsel;
                self.cursor = 0;
                self.setup_done = true;
            }
            while self.cursor < self.total {
                // Budget check at every morsel claim: a tripped bound
                // stops the query before the next morsel runs.
                if has_budget {
                    self.budget
                        .check(self.started, self.tally, self.result_rows())?;
                }
                let count = self.morsel.min(self.total - self.cursor);
                let start = self.cursor;
                let exe = compiled.executables[self.pipe_idx].as_mut();
                let state = &mut self.state;
                self.tally
                    .charge(exe, |e| e.call(state, "main", &[ctx_addr, start, count]))?;
                self.cursor += count;
                self.morsels_done += 1;
                ran += 1;
                if ran >= max_morsels {
                    return Ok(StepProgress::Ran(MorselEvent {
                        pipeline: self.pipe_idx,
                        morsels_done: self.morsels_done,
                        cycles_so_far: self.tally.cycles,
                    }));
                }
            }
            // The pipeline's last morsel may itself overflow the row
            // cap; one check at the barrier catches it before `finish`
            // seals the pipeline.
            if has_budget {
                self.budget
                    .check(self.started, self.tally, self.result_rows())?;
            }
            let exe = compiled.executables[self.pipe_idx].as_mut();
            let state = &mut self.state;
            self.tally
                .charge(exe, |e| e.call(state, "finish", &[ctx_addr]))?;
            self.pipe_idx += 1;
            self.setup_done = false;
        }
        if ran > 0 {
            // The final morsels of the final pipeline still yield an
            // event so callers observe every boundary exactly once.
            return Ok(StepProgress::Ran(MorselEvent {
                pipeline: self.pipe_idx.saturating_sub(1),
                morsels_done: self.morsels_done,
                cycles_so_far: self.tally.cycles,
            }));
        }
        Ok(StepProgress::Done)
    }

    /// Estimated morsels left to run (exact for the current pipeline,
    /// table-row estimates for pipelines not yet set up). Drives the
    /// scheduler's tier-up priority.
    pub(crate) fn remaining_morsels(&self, engine: &Engine<'_>, prepared: &PreparedQuery) -> u64 {
        let plan = &prepared.plan;
        let mut rem = 0u64;
        for (i, pipe) in plan.pipelines.iter().enumerate().skip(self.pipe_idx) {
            if i == self.pipe_idx && self.setup_done {
                rem += (self.total - self.cursor).div_ceil(self.morsel.max(1));
            } else {
                rem += match &pipe.source {
                    Source::Table { name, .. } => engine
                        .database()
                        .table(name)
                        .map_or(0, |t| t.row_count() as u64)
                        .div_ceil(engine.morsel_size() as u64),
                    Source::Buffer { .. } => 1,
                };
            }
        }
        rem
    }

    /// Decodes the output buffer into the final result.
    pub(crate) fn into_result(
        self,
        prepared: &PreparedQuery,
        compiled: &CompiledQuery,
    ) -> Result<ExecutionResult, EngineError> {
        let plan = &prepared.plan;
        let out_off = plan.ctx_offset(&CtxEntry::OutputBuf) as usize;
        let rows = decode_rows(&self.state, ctx_handle(&self.ctx, out_off), &plan.output);
        Ok(ExecutionResult {
            rows,
            exec_stats: ExecStats {
                cycles: self.tally.cycles,
                insts: self.tally.insts,
            },
            critical_path_cycles: self.tally.cycles,
            compile_time: compiled.compile_time,
            compile_stats: compiled.compile_stats.clone(),
        })
    }
}

// ---------------------------------------------------------------------
// Parallel executor
// ---------------------------------------------------------------------

/// How workers claim morsels within a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorselSchedule {
    /// Striped static assignment: worker `w` of `W` owns morsels
    /// `w, w + W, w + 2W, …`. Fully deterministic (cycle totals are a
    /// pure function of the worker count), no load balancing.
    Static,
    /// Work stealing: per-worker deques seeded striped; a worker pops
    /// its own deque from the front and steals from others' backs.
    /// Aggregation pipelines use a shared ordered counter instead (see
    /// the module docs for why steals would break group ordering).
    Stealing,
}

/// Configuration of a [`MorselExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct MorselExecConfig {
    /// Worker threads. `0` and `1` both mean single-threaded execution
    /// on the calling thread (the exact serial path).
    pub workers: usize,
    /// Claim discipline for parallel pipelines.
    pub schedule: MorselSchedule,
}

impl Default for MorselExecConfig {
    fn default() -> Self {
        MorselExecConfig {
            workers: 1,
            schedule: MorselSchedule::Stealing,
        }
    }
}

/// Whether a pipeline's sink effects can be merged deterministically
/// from per-worker partitions. Floating-point aggregation state cannot
/// (non-associative addition, `±0.0`/`NaN` key equality), so those
/// pipelines run serially on the canonical state.
fn sink_merge_supported(sink: &Sink) -> bool {
    match sink {
        Sink::Output { .. } | Sink::JoinBuild { .. } | Sink::SortMaterialize { .. } => true,
        Sink::AggBuild { layout, .. } => layout.fields.iter().all(|f| f.ty != ColumnType::F64),
    }
}

/// Morsel-parallel query executor.
///
/// Wraps an [`Engine`] execution with a worker pool. With
/// `workers <= 1` it delegates to the engine's serial path; otherwise
/// each table-scan pipeline with a mergeable sink fans its morsels out
/// to workers and merges at the pipeline barrier. The morsel-boundary
/// tier-up hook keeps working: a replacement tier published by the hook
/// is observed by every worker at its next morsel claim (instantiated
/// from the replacement's [`CodeArtifact`]).
#[derive(Debug, Clone, Copy)]
pub struct MorselExecutor {
    config: MorselExecConfig,
}

impl MorselExecutor {
    /// Creates an executor with `config`.
    pub fn new(config: MorselExecConfig) -> Self {
        MorselExecutor { config }
    }

    /// The configuration.
    pub fn config(&self) -> MorselExecConfig {
        self.config
    }

    /// Executes a compiled query (no tier-up hook).
    ///
    /// # Errors
    /// Propagates traps from generated code and storage errors.
    pub fn execute(
        &self,
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_with_hook(engine, prepared, compiled, &mut |_| None)
    }

    /// Executes a compiled query, consulting `hook` after every morsel
    /// (same contract as [`Engine::execute_with_hook`]).
    ///
    /// # Errors
    /// Propagates traps from generated code and storage errors. Under
    /// parallel execution the reported trap is the one from the lowest
    /// trapping morsel observed — best-effort identity with the serial
    /// trap (exact when `workers <= 1`).
    pub fn execute_with_hook(
        &self,
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_budgeted(engine, prepared, compiled, &QueryBudget::unlimited(), hook)
    }

    /// Executes a compiled query under a [`QueryBudget`], consulting
    /// `hook` after every morsel. Budget bounds are checked at every
    /// morsel claim — serial or parallel — so a tripped budget stops
    /// the query within one morsel and surfaces the typed budget error
    /// with partial [`ExecTally`] accounting.
    ///
    /// Worker panics are isolated: a panicking morsel worker poisons
    /// only itself; its unclaimed morsels are requeued onto surviving
    /// workers and its claimed-but-unmerged morsels are replayed once
    /// by a retry pass so the deterministic barrier merge stays
    /// byte-identical. A second fault fails the query cleanly with
    /// [`EngineError::WorkerPanic`] instead of the process. Panics in
    /// the *serial* sections — canonical setup/finish, serial-fallback
    /// pipelines, and single-worker runs — have no surviving worker to
    /// replay onto, so they are contained to the same typed error
    /// without a retry: the query fails, the process never does.
    ///
    /// # Errors
    /// Propagates traps, storage errors, budget overruns, and
    /// unrecovered worker panics.
    pub fn execute_budgeted(
        &self,
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        budget: &QueryBudget,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        if self.config.workers <= 1 {
            // Single-threaded runs still get the process-survival
            // guarantee: a panic in generated code fails the query with
            // a typed error, not the caller.
            return catch_unwind(AssertUnwindSafe(|| {
                engine.execute_budgeted_internal(prepared, compiled, budget, hook)
            }))
            .unwrap_or_else(|payload| Err(EngineError::WorkerPanic(panic_text(payload.as_ref()))));
        }

        let plan = &prepared.plan;
        let started = Instant::now();
        let has_budget = !budget.is_unlimited();
        let mut state = RuntimeState::new();
        let ctx = build_ctx(engine, prepared, &mut state)?;
        let ctx_addr = ctx.as_ptr() as u64;
        let out_off = plan.ctx_offset(&CtxEntry::OutputBuf) as usize;
        let mut out_ready = false;
        let mut tally = ExecTally::default();
        let mut morsels_done = 0u64;
        let mut critical = 0u64;

        for pipe_idx in 0..plan.pipelines.len() {
            let pipe = &plan.pipelines[pipe_idx];
            let serial_before = tally.cycles;
            if has_budget {
                let rows = if out_ready {
                    state.buffer(ctx_handle(&ctx, out_off)).len() as u64
                } else {
                    0
                };
                budget.check(started, tally, rows)?;
            }
            // Canonical setup creates the canonical sink containers the
            // barrier merge writes into.
            {
                let exe = compiled.executables[pipe_idx].as_mut();
                charge_contained(&mut tally, exe, |e| {
                    e.call(&mut state, "setup", &[ctx_addr])
                })?;
            }
            let counts_rows = matches!(pipe.sink, Sink::Output { .. });
            if counts_rows {
                out_ready = true;
            }
            let rows_before = if out_ready {
                state.buffer(ctx_handle(&ctx, out_off)).len() as u64
            } else {
                0
            };
            let bctx = BudgetCtx {
                budget,
                started,
                rows_before,
                counts_rows,
            };
            // Morsel decomposition. `Table::morsels` yields no morsels
            // for an empty table — the loop below must run zero
            // iterations, matching the serial `while start < total`
            // scan (that is the invariant the storage layer documents).
            let morsels: Vec<Morsel> = match &pipe.source {
                Source::Table { name, .. } => engine
                    .database()
                    .table(name)
                    .ok_or_else(|| {
                        EngineError::Storage(format!(
                            "scan table `{name}` vanished between planning and execution"
                        ))
                    })?
                    .morsels(engine.morsel_size()),
                Source::Buffer { buffer, limit, .. } => {
                    let off = plan.ctx_offset(buffer) as usize;
                    let len = state.buffer(ctx_handle(&ctx, off)).len() as u64;
                    let len = match limit {
                        Some(l) => len.min(*l as u64),
                        None => len,
                    };
                    if len == 0 {
                        Vec::new()
                    } else {
                        vec![Morsel {
                            start: 0,
                            count: len,
                        }]
                    }
                }
            };

            // A pipeline goes parallel when splitting can pay off, its
            // sink merges deterministically, and per-worker executables
            // can be instantiated from a code artifact.
            let worker_exes = if morsels.len() >= 2 && sink_merge_supported(&pipe.sink) {
                instantiate_workers(compiled, pipe_idx, self.config.workers)
            } else {
                None
            };

            let mut worker_cycles = (0u64, 0u64); // (busiest, total)
            match worker_exes {
                Some(exes) => {
                    let run = ParallelPipeline {
                        plan,
                        pipe,
                        pipe_idx,
                        morsels: &morsels,
                        schedule: self.config.schedule,
                    };
                    worker_cycles = run.execute(
                        &mut state,
                        &ctx,
                        compiled,
                        &mut tally,
                        &mut morsels_done,
                        exes,
                        &bctx,
                        hook,
                    )?;
                }
                None => {
                    for m in &morsels {
                        if has_budget {
                            let rows = if out_ready {
                                state.buffer(ctx_handle(&ctx, out_off)).len() as u64
                            } else {
                                0
                            };
                            budget.check(started, tally, rows)?;
                        }
                        let exe = compiled.executables[pipe_idx].as_mut();
                        charge_contained(&mut tally, exe, |e| {
                            e.call(&mut state, "main", &[ctx_addr, m.start, m.count])
                        })?;
                        morsels_done += 1;
                        let event = MorselEvent {
                            pipeline: pipe_idx,
                            morsels_done,
                            cycles_so_far: tally.cycles,
                        };
                        if let Some(replacement) = hook(&event) {
                            compiled.adopt_replacement(replacement);
                        }
                    }
                }
            }

            // Barrier check before `finish`: the pipeline's last morsel
            // (or the merged parallel rows) may overflow the row cap.
            if has_budget {
                let rows = if out_ready {
                    state.buffer(ctx_handle(&ctx, out_off)).len() as u64
                } else {
                    0
                };
                budget.check(started, tally, rows)?;
            }
            // Canonical finish (hash-table build / sort) runs on the
            // merged containers, so its cost envelope matches serial.
            {
                let exe = compiled.executables[pipe_idx].as_mut();
                charge_contained(&mut tally, exe, |e| {
                    e.call(&mut state, "finish", &[ctx_addr])
                })?;
            }
            // Critical path: serial sections (canonical setup/finish,
            // serial-fallback morsels) in full, plus only the busiest
            // worker of the parallel section.
            let (busiest, worker_total) = worker_cycles;
            critical += (tally.cycles - serial_before) - worker_total + busiest;
        }

        let out_off = plan.ctx_offset(&CtxEntry::OutputBuf) as usize;
        let rows = decode_rows(&state, ctx_handle(&ctx, out_off), &plan.output);
        Ok(ExecutionResult {
            rows,
            exec_stats: ExecStats {
                cycles: tally.cycles,
                insts: tally.insts,
            },
            critical_path_cycles: critical,
            compile_time: compiled.compile_time,
            compile_stats: compiled.compile_stats.clone(),
        })
    }
}

/// Instantiates one executable per worker from the pipeline's artifact.
/// Returns `None` when there is no artifact or any instantiation fails
/// (the caller falls back to the serial path).
fn instantiate_workers(
    compiled: &CompiledQuery,
    pipe_idx: usize,
    workers: usize,
) -> Option<Vec<Box<dyn Executable>>> {
    let artifact = compiled.artifacts.get(pipe_idx)?.as_ref()?;
    let mut exes = Vec::with_capacity(workers);
    for _ in 0..workers {
        exes.push(artifact.instantiate().ok()?);
    }
    Some(exes)
}

// ---------------------------------------------------------------------
// Morsel claimers
// ---------------------------------------------------------------------

/// Per-pipeline morsel claim discipline.
enum Claimer {
    /// Shared ascending counter: perfect load balance and ascending
    /// claim order for every worker (required by aggregation merges).
    Ordered(AtomicUsize),
    /// Per-worker deques seeded striped; `steal` allows taking from the
    /// back of other workers' deques.
    Striped {
        deques: Vec<Mutex<VecDeque<usize>>>,
        steal: bool,
        /// Whether a panicked worker's stranded morsels may be
        /// re-claimed by survivors. Off for aggregation pipelines: a
        /// late out-of-order claim would break the ascending-claim
        /// invariant the merge depends on, so their stranded morsels
        /// go to the serial retry pass instead.
        poison_steal: bool,
        /// Workers that panicked; their deques become stealable.
        poisoned: Vec<AtomicBool>,
    },
}

impl Claimer {
    fn new(n_morsels: usize, workers: usize, schedule: MorselSchedule, ordered: bool) -> Claimer {
        match (schedule, ordered) {
            (MorselSchedule::Stealing, true) => Claimer::Ordered(AtomicUsize::new(0)),
            (schedule, ordered) => {
                let mut deques: Vec<VecDeque<usize>> =
                    (0..workers).map(|_| VecDeque::new()).collect();
                for m in 0..n_morsels {
                    deques[m % workers].push_back(m);
                }
                Claimer::Striped {
                    deques: deques.into_iter().map(Mutex::new).collect(),
                    steal: schedule == MorselSchedule::Stealing,
                    poison_steal: !ordered,
                    poisoned: (0..workers).map(|_| AtomicBool::new(false)).collect(),
                }
            }
        }
    }

    /// Marks a panicked worker: its remaining morsels become claimable
    /// by surviving workers (the panic-requeue path). The ordered
    /// claimer never assigns morsels ahead of time, so it has nothing
    /// to requeue.
    fn poison(&self, worker: usize) {
        if let Claimer::Striped { poisoned, .. } = self {
            poisoned[worker].store(true, Ordering::Release);
        }
    }

    fn claim(&self, worker: usize, n_morsels: usize) -> Option<usize> {
        match self {
            Claimer::Ordered(next) => {
                let m = next.fetch_add(1, Ordering::Relaxed);
                (m < n_morsels).then_some(m)
            }
            Claimer::Striped {
                deques,
                steal,
                poison_steal,
                poisoned,
            } => {
                if let Some(m) = lock_recover(&deques[worker]).pop_front() {
                    return Some(m);
                }
                let w = deques.len();
                for v in (worker + 1..w).chain(0..worker) {
                    let may_take = *steal || (*poison_steal && poisoned[v].load(Ordering::Acquire));
                    if !may_take {
                        continue;
                    }
                    if let Some(m) = lock_recover(&deques[v]).pop_back() {
                        return Some(m);
                    }
                }
                None
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tier-up swap cell
// ---------------------------------------------------------------------

/// Atomic publication point for a background-compiled replacement tier.
/// Workers poll the generation at each morsel claim and re-instantiate
/// their executable from the newest artifact.
struct SwapCell {
    generation: AtomicU64,
    artifact: Mutex<Option<Arc<dyn CodeArtifact>>>,
}

impl SwapCell {
    fn new() -> SwapCell {
        SwapCell {
            generation: AtomicU64::new(0),
            artifact: Mutex::new(None),
        }
    }

    fn publish(&self, artifact: Arc<dyn CodeArtifact>) {
        *lock_recover(&self.artifact) = Some(artifact);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Returns the newest artifact when the generation moved past
    /// `seen` (updating `seen`), `None` otherwise.
    fn refresh(&self, seen: &mut u64) -> Option<Arc<dyn CodeArtifact>> {
        let g = self.generation.load(Ordering::Acquire);
        if g == *seen {
            return None;
        }
        *seen = g;
        lock_recover(&self.artifact).clone()
    }
}

// ---------------------------------------------------------------------
// Parallel pipeline run
// ---------------------------------------------------------------------

/// What a worker reads to track sink growth after each morsel.
#[derive(Clone, Copy)]
enum SinkKind {
    /// Output / sort buffer: progress is the buffer length.
    Buffer,
    /// Join hash table: progress is the insert-log length.
    Join,
    /// Aggregation: progress is the group-registration buffer length.
    Agg,
}

/// Sink description shared with workers: kind plus the ctx offset of
/// the container whose growth delimits each morsel's effects.
#[derive(Clone, Copy)]
struct SinkInfo {
    kind: SinkKind,
    progress_off: usize,
}

/// One claimed morsel's sink-effect range in a worker's containers.
struct MorselRecord {
    morsel: usize,
    sink_start: usize,
    sink_end: usize,
}

/// Everything a finished worker hands back for the barrier merge.
struct WorkerOutput {
    ctx: Vec<u8>,
    state: RuntimeState,
    records: Vec<MorselRecord>,
    /// This worker's total charged cycles (critical-path reporting).
    tally: ExecTally,
    /// `(morsel index, error)`; `usize::MAX` marks a setup failure.
    error: Option<(usize, EngineError)>,
}

enum WorkerMsg {
    /// One morsel completed (fires the tier-up hook).
    Morsel {
        cycles: u64,
        insts: u64,
        /// Result rows this morsel produced (output-sink pipelines
        /// only) — drives the coordinator's in-flight row-cap check.
        rows: u64,
    },
    /// Cycle remainder not tied to a completed morsel (idle worker
    /// setup, a trapped morsel's partial cost) — accounting only.
    Flush {
        cycles: u64,
        insts: u64,
    },
    Done,
}

/// Budget context a pipeline run checks against: the query budget, the
/// execution start instant, and how result rows are counted while this
/// pipeline's output is still distributed across workers.
struct BudgetCtx<'a> {
    budget: &'a QueryBudget,
    started: Instant,
    /// Result rows materialized before this pipeline started.
    rows_before: u64,
    /// Whether this pipeline's sink is the output buffer (its morsels
    /// add result rows).
    counts_rows: bool,
}

impl BudgetCtx<'_> {
    fn check(&self, tally: ExecTally, rows_delta: u64) -> Result<(), EngineError> {
        self.budget
            .check(self.started, tally, self.rows_before + rows_delta)
    }
}

struct ParallelPipeline<'a> {
    plan: &'a qc_plan::PhysicalPlan,
    pipe: &'a Pipeline,
    pipe_idx: usize,
    morsels: &'a [Morsel],
    schedule: MorselSchedule,
}

impl ParallelPipeline<'_> {
    fn sink_info(&self) -> SinkInfo {
        let (kind, entry) = match &self.pipe.sink {
            Sink::Output { .. } => (SinkKind::Buffer, CtxEntry::OutputBuf),
            Sink::SortMaterialize { sort_id, .. } => {
                (SinkKind::Buffer, CtxEntry::SortBuf(*sort_id))
            }
            Sink::JoinBuild { join_id, .. } => (SinkKind::Join, CtxEntry::JoinHt(*join_id)),
            Sink::AggBuild { agg_id, .. } => (SinkKind::Agg, CtxEntry::AggGroups(*agg_id)),
        };
        SinkInfo {
            kind,
            progress_off: self.plan.ctx_offset(&entry) as usize,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        state: &mut RuntimeState,
        ctx: &[u8],
        compiled: &mut CompiledQuery,
        tally: &mut ExecTally,
        morsels_done: &mut u64,
        worker_exes: Vec<Box<dyn Executable>>,
        bctx: &BudgetCtx<'_>,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<(u64, u64), EngineError> {
        let workers = worker_exes.len();
        let ordered = matches!(self.pipe.sink, Sink::AggBuild { .. });
        let claimer = Claimer::new(self.morsels.len(), workers, self.schedule, ordered);
        let swap = SwapCell::new();
        let sink = self.sink_info();
        let stop = AtomicBool::new(false);
        let has_budget = !bctx.budget.is_unlimited();
        let counts_rows = bctx.counts_rows;
        let (tx, rx) = crossbeam::channel::unbounded();

        // Fork worker states before entering the scope: the forks hold
        // read-only views into the canonical state, which must stay
        // unmutated until every worker has finished.
        let forks: Vec<(RuntimeState, Vec<u8>)> = (0..workers)
            .map(|_| (state.fork_worker(), ctx.to_vec()))
            .collect();

        let mut budget_err: Option<EngineError> = None;
        let scope_out = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = forks
                .into_iter()
                .zip(worker_exes)
                .enumerate()
                .map(|(w, ((wstate, wctx), exe))| {
                    let tx = tx.clone();
                    let claimer = &claimer;
                    let swap = &swap;
                    let stop = &stop;
                    let morsels = self.morsels;
                    s.spawn(move || {
                        worker_run(
                            w,
                            wstate,
                            wctx,
                            exe,
                            morsels,
                            claimer,
                            swap,
                            sink,
                            counts_rows,
                            stop,
                            &tx,
                        )
                    })
                })
                .collect();
            drop(tx);

            // Coordinator: forward morsel events to the tier-up hook;
            // publish any replacement so workers observe it at their
            // next claim; check the budget on every completed morsel.
            let mut done = 0usize;
            let mut rows_delta = 0u64;
            while done < workers {
                match rx.recv() {
                    Ok(WorkerMsg::Morsel {
                        cycles,
                        insts,
                        rows,
                    }) => {
                        tally.cycles += cycles;
                        tally.insts += insts;
                        rows_delta += rows;
                        *morsels_done += 1;
                        if has_budget && budget_err.is_none() {
                            if let Err(e) = bctx.check(*tally, rows_delta) {
                                // Cooperative cancellation: workers see
                                // the flag at their next claim, so the
                                // query stops within one morsel per
                                // worker of the budget tripping.
                                budget_err = Some(e);
                                stop.store(true, Ordering::Release);
                            }
                        }
                        let event = MorselEvent {
                            pipeline: self.pipe_idx,
                            morsels_done: *morsels_done,
                            cycles_so_far: tally.cycles,
                        };
                        if let Some(replacement) = hook(&event) {
                            if let Some(Some(artifact)) = replacement.artifacts.get(self.pipe_idx) {
                                swap.publish(Arc::clone(artifact));
                            }
                            compiled.adopt_replacement(replacement);
                        }
                    }
                    Ok(WorkerMsg::Flush { cycles, insts }) => {
                        tally.cycles += cycles;
                        tally.insts += insts;
                    }
                    Ok(WorkerMsg::Done) => done += 1,
                    Err(_) => break, // a worker died; join below reports it
                }
            }
            handles
                .into_iter()
                .map(|h| {
                    // Panics are caught inside `worker_run`; a join
                    // error means one escaped the harness — synthesize
                    // a panicked output so the retry pass covers its
                    // morsels instead of aborting the process.
                    h.join().unwrap_or_else(|payload| WorkerOutput {
                        ctx: ctx.to_vec(),
                        state: RuntimeState::new(),
                        records: Vec::new(),
                        tally: ExecTally::default(),
                        error: Some((
                            usize::MAX,
                            EngineError::WorkerPanic(panic_text(payload.as_ref())),
                        )),
                    })
                })
                .collect::<Vec<WorkerOutput>>()
        });
        let mut outputs = match scope_out {
            Ok(o) => o,
            Err(payload) => {
                return Err(EngineError::WorkerPanic(panic_text(payload.as_ref())));
            }
        };

        if let Some(e) = budget_err {
            // The budget tripped: partial parallel work is discarded —
            // never merged into canonical state — and the typed error
            // carries the tally snapshot at trip time.
            return Err(e);
        }

        // Surface the lowest-morsel trap or storage error (best-effort
        // serial identity). Worker panics are handled below instead:
        // they are recoverable via the retry pass.
        if let Some((_, err)) = outputs
            .iter()
            .filter_map(|o| o.error.as_ref())
            .filter(|(_, e)| !matches!(e, EngineError::WorkerPanic(_)))
            .min_by_key(|(m, _)| *m)
        {
            return Err(clone_error(err));
        }

        // Parallel-section cost envelope, computed before any retry
        // pass: the retry runs serially after the barrier, so its
        // cycles extend the critical path in full (the caller adds
        // `tally - worker_total + busiest`, and retry cycles land in
        // `tally` only).
        let busiest = outputs.iter().map(|o| o.tally.cycles).max().unwrap_or(0);
        let total = outputs.iter().map(|o| o.tally.cycles).sum();

        let panicked: Vec<usize> = outputs
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.error, Some((_, EngineError::WorkerPanic(_)))))
            .map(|(w, _)| w)
            .collect();
        if !panicked.is_empty() {
            // A panicked worker's accumulated aggregation states may
            // include the partially-executed morsel's contributions, so
            // for agg sinks all of its records are discarded and
            // replayed. Buffer/join records delimit append-only ranges
            // that stay intact past a later panic, so they are kept and
            // only the lost morsels replay.
            if matches!(self.pipe.sink, Sink::AggBuild { .. }) {
                for &w in &panicked {
                    outputs[w].records.clear();
                }
            }
            let done: HashSet<usize> = outputs
                .iter()
                .flat_map(|o| o.records.iter().map(|r| r.morsel))
                .collect();
            let missing: Vec<usize> = (0..self.morsels.len())
                .filter(|m| !done.contains(m))
                .collect();
            let mut retry_tally = ExecTally::default();
            let retried =
                self.retry_pass(state, ctx, compiled, bctx, &missing, &mut retry_tally)?;
            tally.cycles += retry_tally.cycles;
            tally.insts += retry_tally.insts;
            *morsels_done += missing.len() as u64;
            outputs.push(retried);
        }

        self.merge(state, ctx, &outputs)?;
        // Worker cycles were fully streamed into `tally` via morsel and
        // flush messages (retry cycles folded in above); only runtime
        // call counts remain to fold in.
        for o in &outputs {
            state.merge_counts_from(&o.state);
        }
        Ok((busiest, total))
    }

    /// The single retry after a worker panic: replays the missing
    /// morsels serially on a fresh fork, in ascending order (so the
    /// aggregation ascending-claim invariant holds for the replayed
    /// records). A second fault — panic, trap, or budget trip — fails
    /// the query cleanly.
    fn retry_pass(
        &self,
        state: &RuntimeState,
        ctx: &[u8],
        compiled: &CompiledQuery,
        bctx: &BudgetCtx<'_>,
        missing: &[usize],
        tally: &mut ExecTally,
    ) -> Result<WorkerOutput, EngineError> {
        let artifact = compiled
            .artifacts
            .get(self.pipe_idx)
            .and_then(|a| a.as_ref())
            .ok_or_else(|| {
                EngineError::WorkerPanic("no artifact to replay panicked morsels".to_string())
            })?;
        let mut exe = artifact
            .instantiate()
            .map_err(|e| EngineError::WorkerPanic(format!("replay instantiation failed: {e}")))?;
        let mut wstate = state.fork_worker();
        let wctx = ctx.to_vec();
        let ctx_addr = wctx.as_ptr() as u64;
        let sink = self.sink_info();
        let mut records = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), EngineError> {
            tally.charge(exe.as_mut(), |e| e.call(&mut wstate, "setup", &[ctx_addr]))?;
            for &m in missing {
                let before = sink_progress(&wstate, &wctx, sink);
                let produced = if bctx.counts_rows { before as u64 } else { 0 };
                bctx.check(*tally, produced)?;
                let morsel = self.morsels[m];
                tally.charge(exe.as_mut(), |e| {
                    e.call(&mut wstate, "main", &[ctx_addr, morsel.start, morsel.count])
                })?;
                records.push(MorselRecord {
                    morsel: m,
                    sink_start: before,
                    sink_end: sink_progress(&wstate, &wctx, sink),
                });
            }
            Ok(())
        }));
        match outcome {
            Ok(Ok(())) => Ok(WorkerOutput {
                ctx: wctx,
                state: wstate,
                records,
                tally: ExecTally::default(),
                error: None,
            }),
            Ok(Err(e)) => Err(e),
            Err(payload) => Err(EngineError::WorkerPanic(format!(
                "panicked again during replay: {}",
                panic_text(payload.as_ref())
            ))),
        }
    }

    /// Replays worker sink effects into the canonical state in
    /// ascending morsel order (see the module docs for why this
    /// reproduces the serial effect sequence exactly).
    fn merge(
        &self,
        state: &mut RuntimeState,
        ctx: &[u8],
        outputs: &[WorkerOutput],
    ) -> Result<(), EngineError> {
        let sink = self.sink_info();
        let canonical = ctx_handle(ctx, sink.progress_off);
        // Global replay order: ascending morsel index.
        let mut order: Vec<(usize, &MorselRecord)> = outputs
            .iter()
            .enumerate()
            .flat_map(|(w, o)| o.records.iter().map(move |r| (w, r)))
            .collect();
        order.sort_by_key(|(_, r)| r.morsel);

        match &self.pipe.sink {
            Sink::Output { .. } | Sink::SortMaterialize { .. } => {
                for (w, r) in order {
                    let o = &outputs[w];
                    let whandle = ctx_handle(&o.ctx, sink.progress_off);
                    let wbuf = o.state.buffer(whandle);
                    for i in r.sink_start..r.sink_end {
                        state.buf_append_from(canonical, wbuf.row(i));
                    }
                }
            }
            Sink::JoinBuild { layout, .. } => {
                let size = layout.size as usize;
                for (w, r) in order {
                    let o = &outputs[w];
                    let whandle = ctx_handle(&o.ctx, sink.progress_off);
                    // progress_off points at the JoinHt slot for joins.
                    let log = o.state.table(whandle).insert_log();
                    for &payload in &log[r.sink_start..r.sink_end] {
                        state.ht_insert_from(canonical, entry_hash(payload), payload, size);
                    }
                }
            }
            Sink::AggBuild {
                keys, aggs, layout, ..
            } => {
                let ht_off = self
                    .plan
                    .ctx_offset(&CtxEntry::AggHt(agg_id_of(&self.pipe.sink)))
                    as usize;
                let can_ht = ctx_handle(ctx, ht_off);
                let key_fields = key_fields(keys, layout)?;
                let combines = agg_combines(aggs, layout)?;
                for (w, r) in order {
                    let o = &outputs[w];
                    let wgroups = ctx_handle(&o.ctx, sink.progress_off);
                    let groups = o.state.buffer(wgroups);
                    for i in r.sink_start..r.sink_end {
                        // Each groups-buffer row holds the worker-local
                        // payload pointer of one created group.
                        let wp = read_u64_at(groups.row(i));
                        let hash = entry_hash(wp);
                        match find_group(state.table(can_ht), hash, wp, &key_fields) {
                            Some(q) => {
                                // Fold the worker's fully-accumulated
                                // partial state in with one combine.
                                for c in &combines {
                                    c.apply(q, wp)?;
                                }
                            }
                            None => {
                                let q =
                                    state.ht_insert_from(can_ht, hash, wp, layout.size as usize);
                                let cell = q.to_le_bytes();
                                state.buf_append_from(canonical, cell.as_ptr() as u64);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn agg_id_of(sink: &Sink) -> usize {
    match sink {
        Sink::AggBuild { agg_id, .. } => *agg_id,
        _ => unreachable!("agg merge on non-agg sink"),
    }
}

/// The worker body: fork-local setup, claim/execute loop, effect
/// recording. Returns everything the barrier merge needs. Panics in
/// generated code are caught here — the worker poisons itself (handing
/// its unclaimed morsels to survivors) and reports the panic as its
/// error instead of unwinding through the scope.
#[allow(clippy::too_many_arguments)]
fn worker_run(
    worker: usize,
    mut wstate: RuntimeState,
    wctx: Vec<u8>,
    mut exe: Box<dyn Executable>,
    morsels: &[Morsel],
    claimer: &Claimer,
    swap: &SwapCell,
    sink: SinkInfo,
    counts_rows: bool,
    stop: &AtomicBool,
    tx: &crossbeam::channel::Sender<WorkerMsg>,
) -> WorkerOutput {
    let ctx_addr = wctx.as_ptr() as u64;
    let mut tally = ExecTally::default();
    let mut records = Vec::new();
    let mut error: Option<(usize, EngineError)> = None;
    let mut seen_gen = 0u64;
    let mut reported = ExecTally::default();

    // Worker-local setup: creates this pipeline's sink containers in
    // the worker's own arena, overwriting the sink slots in the worker
    // ctx copy. Source and probe slots keep the canonical handles,
    // which resolve into the forked read-only containers.
    match catch_unwind(AssertUnwindSafe(|| {
        tally.charge(exe.as_mut(), |e| e.call(&mut wstate, "setup", &[ctx_addr]))
    })) {
        Ok(Ok(_)) => {}
        Ok(Err(t)) => error = Some((usize::MAX, EngineError::Trap(t))),
        Err(payload) => {
            claimer.poison(worker);
            error = Some((
                usize::MAX,
                EngineError::WorkerPanic(panic_text(payload.as_ref())),
            ));
        }
    }

    while error.is_none() {
        // Cooperative cancellation: the coordinator raises `stop` when
        // the query budget trips; observing it at the claim boundary
        // bounds overrun to one in-flight morsel per worker.
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Some(m) = claimer.claim(worker, morsels.len()) else {
            break;
        };
        // Tier swap observed at the claim boundary: instantiate from
        // the newest artifact; on link failure keep the current tier.
        if let Some(artifact) = swap.refresh(&mut seen_gen) {
            if let Ok(new_exe) = artifact.instantiate() {
                exe = new_exe;
            }
        }
        let before = sink_progress(&wstate, &wctx, sink);
        let morsel = morsels[m];
        match catch_unwind(AssertUnwindSafe(|| {
            tally.charge(exe.as_mut(), |e| {
                e.call(&mut wstate, "main", &[ctx_addr, morsel.start, morsel.count])
            })
        })) {
            Ok(Ok(_)) => {
                let after = sink_progress(&wstate, &wctx, sink);
                records.push(MorselRecord {
                    morsel: m,
                    sink_start: before,
                    sink_end: after,
                });
                let _ = tx.send(WorkerMsg::Morsel {
                    cycles: tally.cycles - reported.cycles,
                    insts: tally.insts - reported.insts,
                    rows: if counts_rows {
                        (after - before) as u64
                    } else {
                        0
                    },
                });
                reported = tally;
            }
            Ok(Err(t)) => error = Some((m, EngineError::Trap(t))),
            Err(payload) => {
                claimer.poison(worker);
                error = Some((m, EngineError::WorkerPanic(panic_text(payload.as_ref()))));
            }
        }
    }
    // Flush any cycles not yet streamed (setup of a worker that claimed
    // nothing, or the trapped morsel's partial cost).
    if tally.cycles != reported.cycles || tally.insts != reported.insts {
        let _ = tx.send(WorkerMsg::Flush {
            cycles: tally.cycles - reported.cycles,
            insts: tally.insts - reported.insts,
        });
    }
    let _ = tx.send(WorkerMsg::Done);
    WorkerOutput {
        ctx: wctx,
        state: wstate,
        records,
        tally,
        error,
    }
}

fn sink_progress(state: &RuntimeState, ctx: &[u8], sink: SinkInfo) -> usize {
    let handle = ctx_handle(ctx, sink.progress_off);
    match sink.kind {
        SinkKind::Buffer | SinkKind::Agg => state.buffer(handle).len(),
        SinkKind::Join => state.table(handle).insert_log().len(),
    }
}

/// Engine errors do not implement `Clone`; rebuild the variants the
/// parallel path can produce.
fn clone_error(e: &EngineError) -> EngineError {
    match e {
        EngineError::Trap(t) => EngineError::Trap(*t),
        EngineError::Storage(s) => EngineError::Storage(s.clone()),
        EngineError::WorkerPanic(s) => EngineError::WorkerPanic(s.clone()),
        other => EngineError::Storage(format!("worker error: {other}")),
    }
}

// ---------------------------------------------------------------------
// Aggregation merge helpers
// ---------------------------------------------------------------------

fn read_u64_at(addr: u64) -> u64 {
    // SAFETY: addresses come from live arena rows/payloads the caller
    // keeps alive for the duration of the merge.
    unsafe { std::ptr::read_unaligned(addr as *const u64) }
}

fn read_i64_at(addr: u64) -> i64 {
    read_u64_at(addr) as i64
}

fn read_i128_at(addr: u64) -> i128 {
    // SAFETY: see `read_u64_at`.
    unsafe { std::ptr::read_unaligned(addr as *const i128) }
}

fn write_i64_at(addr: u64, v: i64) {
    // SAFETY: see `read_u64_at`; the caller writes into canonical
    // payloads it owns.
    unsafe { std::ptr::write_unaligned(addr as *mut i64, v) }
}

fn write_i128_at(addr: u64, v: i128) {
    // SAFETY: see `write_i64_at`.
    unsafe { std::ptr::write_unaligned(addr as *mut i128, v) }
}

fn read_str_at(addr: u64) -> RtString {
    let mut bytes = [0u8; 16];
    // SAFETY: see `read_u64_at`; string state fields are 16 bytes.
    unsafe { std::ptr::copy_nonoverlapping(addr as *const u8, bytes.as_mut_ptr(), 16) };
    RtString::from_bytes(bytes)
}

fn copy_bytes(src: u64, dst: u64, n: usize) {
    // SAFETY: both addresses reference live rows/payloads of at least
    // `n` bytes (field sizes come from the shared layout).
    unsafe { std::ptr::copy_nonoverlapping(src as *const u8, dst as *mut u8, n) }
}

/// One group-key field for replay-time group lookup.
struct KeyField {
    off: usize,
    size: usize,
    is_str: bool,
}

impl KeyField {
    /// Key equality between a canonical payload `q` and a worker
    /// payload `p`, with the same semantics generated code uses
    /// (`rt_str_eq` content equality for strings, bytewise otherwise).
    fn eq_at(&self, q: u64, p: u64) -> bool {
        let (a, b) = (q + self.off as u64, p + self.off as u64);
        if self.is_str {
            return read_str_at(a).eq_content(&read_str_at(b));
        }
        match self.size {
            8 => read_u64_at(a) == read_u64_at(b),
            _ => read_i128_at(a) == read_i128_at(b),
        }
    }
}

fn key_fields(keys: &[String], layout: &RowLayout) -> Result<Vec<KeyField>, EngineError> {
    keys.iter()
        .map(|k| {
            let f = layout.field(k).ok_or_else(|| {
                EngineError::Storage(format!("group key `{k}` missing from agg layout"))
            })?;
            Ok(KeyField {
                off: f.offset as usize,
                size: qc_plan::field_size(f.ty) as usize,
                is_str: f.ty == ColumnType::Str,
            })
        })
        .collect()
}

/// Walks the canonical bucket chain for `hash` and returns the payload
/// of the entry whose keys equal worker payload `wp`, exactly like the
/// generated create-or-update probe.
fn find_group(ht: &HashTable, hash: u64, wp: u64, keys: &[KeyField]) -> Option<u64> {
    let mut e = ht.probe(hash);
    while e != 0 {
        if read_u64_at(e + ENTRY_HASH_OFFSET as u64) == hash {
            let q = e + ENTRY_PAYLOAD_OFFSET as u64;
            if keys.iter().all(|k| k.eq_at(q, wp)) {
                return Some(q);
            }
        }
        e = read_u64_at(e + ENTRY_NEXT_OFFSET as u64);
    }
    None
}

/// How one aggregate state field folds a worker partial into the
/// canonical state.
enum Combine {
    AddI64,
    AddI128,
    MinI64,
    MaxI64,
    MinI128,
    MaxI128,
    MinStr,
    MaxStr,
}

struct StateField {
    off: usize,
    combine: Combine,
}

impl StateField {
    /// Folds worker payload `p`'s field into canonical payload `q`.
    ///
    /// # Errors
    /// Overflowing sums trap exactly like the generated overflow-checked
    /// adds would.
    fn apply(&self, q: u64, p: u64) -> Result<(), EngineError> {
        let (a, b) = (q + self.off as u64, p + self.off as u64);
        match self.combine {
            Combine::AddI64 => {
                let s = read_i64_at(a)
                    .checked_add(read_i64_at(b))
                    .ok_or(EngineError::Trap(Trap::Overflow))?;
                write_i64_at(a, s);
            }
            Combine::AddI128 => {
                let s = read_i128_at(a)
                    .checked_add(read_i128_at(b))
                    .ok_or(EngineError::Trap(Trap::Overflow))?;
                write_i128_at(a, s);
            }
            Combine::MinI64 => {
                if read_i64_at(b) < read_i64_at(a) {
                    write_i64_at(a, read_i64_at(b));
                }
            }
            Combine::MaxI64 => {
                if read_i64_at(b) > read_i64_at(a) {
                    write_i64_at(a, read_i64_at(b));
                }
            }
            Combine::MinI128 => {
                if read_i128_at(b) < read_i128_at(a) {
                    write_i128_at(a, read_i128_at(b));
                }
            }
            Combine::MaxI128 => {
                if read_i128_at(b) > read_i128_at(a) {
                    write_i128_at(a, read_i128_at(b));
                }
            }
            Combine::MinStr => {
                if read_str_at(b).cmp_content(&read_str_at(a)) == CmpOrdering::Less {
                    copy_bytes(b, a, 16);
                }
            }
            Combine::MaxStr => {
                if read_str_at(b).cmp_content(&read_str_at(a)) == CmpOrdering::Greater {
                    copy_bytes(b, a, 16);
                }
            }
        }
        Ok(())
    }
}

fn numeric_combine(ty: ColumnType, min_max: Option<bool>) -> Combine {
    let wide = matches!(ty, ColumnType::Decimal(_));
    match (min_max, wide) {
        (None, false) => Combine::AddI64,
        (None, true) => Combine::AddI128,
        (Some(true), false) => Combine::MinI64,
        (Some(true), true) => Combine::MinI128,
        (Some(false), false) => Combine::MaxI64,
        (Some(false), true) => Combine::MaxI128,
    }
}

fn agg_combines(
    aggs: &[(String, AggFunc)],
    layout: &RowLayout,
) -> Result<Vec<StateField>, EngineError> {
    let mut out = Vec::new();
    for (name, agg) in aggs {
        let state = format!("#{name}");
        let f = layout.field(&state).ok_or_else(|| {
            EngineError::Storage(format!("agg state field `{state}` missing from layout"))
        })?;
        let off = f.offset as usize;
        match agg {
            AggFunc::CountStar => out.push(StateField {
                off,
                combine: Combine::AddI64,
            }),
            AggFunc::Sum(_) => out.push(StateField {
                off,
                combine: numeric_combine(f.ty, None),
            }),
            AggFunc::Min(_) => out.push(StateField {
                off,
                combine: if f.ty == ColumnType::Str {
                    Combine::MinStr
                } else {
                    numeric_combine(f.ty, Some(true))
                },
            }),
            AggFunc::Max(_) => out.push(StateField {
                off,
                combine: if f.ty == ColumnType::Str {
                    Combine::MaxStr
                } else {
                    numeric_combine(f.ty, Some(false))
                },
            }),
            AggFunc::Avg(_) => {
                out.push(StateField {
                    off,
                    combine: numeric_combine(f.ty, None),
                });
                let cnt = layout.field(&format!("#{name}_cnt")).ok_or_else(|| {
                    EngineError::Storage(format!("avg count field `#{name}_cnt` missing"))
                })?;
                out.push(StateField {
                    off: cnt.offset as usize,
                    combine: Combine::AddI64,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_claimer_is_exhaustive_and_ascending() {
        let c = Claimer::new(10, 3, MorselSchedule::Stealing, true);
        let mut seen = Vec::new();
        while let Some(m) = c.claim(0, 10) {
            seen.push(m);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(c.claim(1, 10), None);
    }

    #[test]
    fn striped_claimer_static_partitions_without_stealing() {
        let c = Claimer::new(7, 2, MorselSchedule::Static, false);
        let mut w0 = Vec::new();
        while let Some(m) = c.claim(0, 7) {
            w0.push(m);
        }
        assert_eq!(w0, vec![0, 2, 4, 6]);
        // Worker 1 keeps its own morsels even though worker 0 is idle.
        let mut w1 = Vec::new();
        while let Some(m) = c.claim(1, 7) {
            w1.push(m);
        }
        assert_eq!(w1, vec![1, 3, 5]);
    }

    #[test]
    fn striped_claimer_steals_from_the_back() {
        let c = Claimer::new(6, 2, MorselSchedule::Stealing, false);
        // Worker 0 drains its own deque (front order), then steals the
        // back of worker 1's deque.
        assert_eq!(c.claim(0, 6), Some(0));
        assert_eq!(c.claim(0, 6), Some(2));
        assert_eq!(c.claim(0, 6), Some(4));
        assert_eq!(c.claim(0, 6), Some(5));
        assert_eq!(c.claim(1, 6), Some(1));
        assert_eq!(c.claim(1, 6), Some(3));
        assert_eq!(c.claim(1, 6), None);
    }

    #[test]
    fn swap_cell_generations() {
        let cell = SwapCell::new();
        let mut seen = 0u64;
        assert!(cell.refresh(&mut seen).is_none());
    }
}
