//! Threaded compilation service: parallel pipeline compiles, an
//! IR-keyed code cache, background compilation for adaptive tier-up,
//! and a fault-tolerance layer that keeps a failing back-end from
//! killing a query.
//!
//! A query decomposes into independent pipelines, one IR module each;
//! nothing in a back-end compilation reads another pipeline's state, so
//! the service fans the modules of one query out to a persistent worker
//! pool and reassembles the executables in pipeline order. Workers use
//! thread-local [`TimeTrace`]s (the trace type is deliberately not
//! `Send`) and ship immutable [`Report`](qc_timing::Report) snapshots
//! back for merging, so phase attribution survives the fan-out.
//!
//! The cache stores *unlinked* [`CodeArtifact`]s keyed by the module's
//! structural IR hash plus the back-end identity; a warm hit skips code
//! generation entirely and pays only the link/unwind-registration step
//! (see `DESIGN.md`, "Compilation service"). Parameterized re-runs of a
//! prepared query therefore compile in roughly link time.
//!
//! # Failure domains
//!
//! Every compile job is one failure domain (see `DESIGN.md`, "Failure
//! domains & fallback chain"):
//!
//! * a **panic** inside a back-end is caught with `catch_unwind`,
//!   converted into a `Panic`-kind [`BackendError`], and never reaches
//!   the cache or stalls the in-order reply merge — the job always
//!   sends exactly one reply;
//! * a [`CompileBudget`] bounds each job: a wall-clock **deadline**
//!   (overruns are degraded into `Deadline`-kind errors, and the
//!   too-slow artifact is discarded rather than cached) and a bounded
//!   **retry** policy with exponential backoff for `Transient` errors;
//! * a **dead worker thread** (a panic escaping the per-job guard) is
//!   detected and respawned on the next submission; if no worker can be
//!   spawned at all, jobs degrade to inline compilation on the caller
//!   thread instead of aborting.
//!
//! [`FaultCounters`] exposes what the layer absorbed; the fallback
//! chain built on top lives in [`crate::fallback`].

use crate::artifact_store::{ArtifactKey, ArtifactStore};
use crate::engine::{CompiledQuery, EngineError, PreparedQuery};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use qc_backend::{Backend, BackendError, CodeArtifact, CompileStats, Executable};
use qc_ir::{module_structural_hash, Module};
use qc_timing::TimeTrace;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-job compile budget: a deadline plus a bounded retry policy,
/// enforced by the [`CompileService`] around every module compilation
/// (foreground fan-out and background tier-up alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileBudget {
    /// Wall-clock deadline for compiling one module. A job that
    /// finishes past the deadline — successfully or not — reports a
    /// `Deadline`-kind [`BackendError`] so the caller can downgrade to
    /// a cheaper tier; its artifact is discarded, never cached.
    /// Compile time is the paper's wall-clock metric, so the deadline
    /// is wall-clock too (execution cost is what the emulator's cycle
    /// model accounts).
    pub deadline: Option<Duration>,
    /// Retries for `Transient`-kind failures. Permanent errors,
    /// panics, and deadline overruns are never retried on the same
    /// tier.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
}

impl Default for CompileBudget {
    fn default() -> Self {
        CompileBudget {
            deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

impl CompileBudget {
    /// No deadline, no retries: every fault surfaces immediately.
    pub fn strict() -> Self {
        CompileBudget {
            deadline: None,
            max_retries: 0,
            retry_backoff: Duration::ZERO,
        }
    }

    /// Default retry policy plus a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        CompileBudget {
            deadline: Some(deadline),
            ..Default::default()
        }
    }
}

/// Configuration of a [`CompileService`].
#[derive(Debug, Clone, Copy)]
pub struct CompileServiceConfig {
    /// Worker threads in the pool (at least 1).
    pub workers: usize,
    /// Maximum number of cached artifacts; 0 disables caching.
    pub cache_capacity: usize,
    /// Budget applied to jobs submitted through [`CompileService::compile`]
    /// and [`CompileService::spawn_compile`]; the `_budgeted` variants
    /// override it per call.
    pub budget: CompileBudget,
}

impl Default for CompileServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(1)
            .clamp(1, 8);
        CompileServiceConfig {
            workers,
            cache_capacity: 128,
            budget: CompileBudget::default(),
        }
    }
}

/// Cache counters snapshot, taken with [`CompileService::cache_stats`].
/// The `hits`/`misses`/`evictions` fields describe the in-memory LRU
/// (L1); the `disk_*` fields describe the persistent
/// [`ArtifactStore`] (L2) when one is attached, and stay zero
/// otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a usable artifact.
    pub hits: u64,
    /// Lookups that missed (including when caching is disabled).
    pub misses: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Approximate bytes retained by resident artifacts.
    pub resident_bytes: usize,
    /// L1 misses served by the persistent store (pays a file read +
    /// link instead of a compile).
    pub disk_hits: u64,
    /// Probes of the persistent store that found nothing usable.
    pub disk_misses: u64,
    /// Artifacts persisted to the store.
    pub disk_writes: u64,
    /// Store files rejected by checksum/header verification (each one
    /// forced a recompile).
    pub disk_corrupt_rejected: u64,
    /// Store files evicted to respect the on-disk size budget.
    pub disk_evictions: u64,
}

/// Fault-tolerance counters snapshot, taken with
/// [`CompileService::fault_stats`]: what the service absorbed instead
/// of letting a query die.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Back-end panics caught and converted into `Panic` errors.
    pub panics_caught: u64,
    /// Jobs whose compile outlived the budget deadline.
    pub deadline_overruns: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Tier downgrades recorded by the fallback chain.
    pub downgrades: u64,
    /// Dead worker threads replaced.
    pub workers_respawned: u64,
    /// Jobs compiled inline on the caller thread because no worker
    /// could accept them.
    pub inline_fallbacks: u64,
    /// Persistent-store files that failed verification and were
    /// replaced by a recompile (mirrors
    /// [`CacheCounters::disk_corrupt_rejected`]; surfaced here because
    /// a corrupt artifact is a fault the service absorbed).
    pub artifact_corruptions: u64,
}

/// Internal atomic counters behind [`FaultCounters`], shared with
/// worker jobs.
#[derive(Debug, Default)]
pub(crate) struct Faults {
    panics_caught: AtomicU64,
    deadline_overruns: AtomicU64,
    retries: AtomicU64,
    pub(crate) downgrades: AtomicU64,
    workers_respawned: AtomicU64,
    inline_fallbacks: AtomicU64,
}

impl Faults {
    fn snapshot(&self) -> FaultCounters {
        FaultCounters {
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            deadline_overruns: self.deadline_overruns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            downgrades: self.downgrades.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            inline_fallbacks: self.inline_fallbacks.load(Ordering::Relaxed),
            artifact_corruptions: 0,
        }
    }
}

/// Cache key: what must match for cached code to be reusable. The
/// module name is deliberately absent — structurally identical
/// pipelines of differently named queries share code (string literals
/// resolve through the context block at run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    module_hash: u64,
    backend: &'static str,
    isa: &'static str,
    config: u64,
}

impl CacheKey {
    fn new(module: &Module, backend: &dyn Backend) -> Self {
        CacheKey {
            module_hash: module_structural_hash(module),
            backend: backend.name(),
            isa: backend.isa().name(),
            config: backend.config_fingerprint(),
        }
    }

    /// The same identity in the persistent store's key type.
    fn artifact_key(&self) -> ArtifactKey {
        ArtifactKey {
            module_hash: self.module_hash,
            backend: self.backend,
            isa: self.isa,
            config: self.config,
        }
    }
}

struct CacheEntry {
    artifact: Arc<dyn CodeArtifact>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    tick: u64,
}

/// Bounded LRU over compiled artifacts (L1), shared between the caller
/// thread and the workers, optionally backed by a persistent
/// [`ArtifactStore`] (L2). An L1 miss probes the store; a disk hit is
/// promoted into L1 and pays only deserialize + link. Fresh artifacts
/// are written through to the store. Either tier degrades to
/// pass-through independently: `capacity == 0` disables L1 but the
/// store still serves warm restarts, and a missing/disabled store
/// leaves the LRU behaving exactly as before.
struct CodeCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    store: Option<Arc<ArtifactStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CodeCache {
    fn new(capacity: usize, store: Option<Arc<ArtifactStore>>) -> Self {
        CodeCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lookup(&self, key: &CacheKey) -> Option<Arc<dyn CodeArtifact>> {
        if self.capacity > 0 {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(&entry.artifact));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // L2: a verified disk artifact is promoted into L1 (not written
        // back to disk — it just came from there).
        if let Some(store) = &self.store {
            if let Some(artifact) = store.load(&key.artifact_key()) {
                self.insert_l1(*key, Arc::clone(&artifact));
                return Some(artifact);
            }
        }
        None
    }

    /// Inserts into the in-memory tier only.
    fn insert_l1(&self, key: CacheKey, artifact: Arc<dyn CodeArtifact>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Concurrent compiles of the same module may race to insert;
        // first writer wins, the duplicate artifact is dropped.
        if inner.map.contains_key(&key) {
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            CacheEntry {
                artifact,
                last_used: tick,
            },
        );
    }

    /// Inserts a freshly compiled artifact: L1, written through to the
    /// persistent store when one is attached.
    fn insert(&self, key: CacheKey, artifact: Arc<dyn CodeArtifact>) {
        self.insert_l1(key, Arc::clone(&artifact));
        if let Some(store) = &self.store {
            store.store(&key.artifact_key(), artifact.as_ref());
        }
    }

    fn counters(&self) -> CacheCounters {
        let disk = self
            .store
            .as_deref()
            .map(ArtifactStore::counters)
            .unwrap_or_default();
        let inner = self.inner.lock();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            resident_bytes: inner.map.values().map(|e| e.artifact.size_bytes()).sum(),
            disk_hits: disk.hits,
            disk_misses: disk.misses,
            disk_writes: disk.writes,
            disk_corrupt_rejected: disk.corrupt_rejected,
            disk_evictions: disk.evictions,
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Persistent worker threads consuming compile jobs from an MPMC
/// channel. Dropping the pool closes the channel and joins the workers.
///
/// Compile jobs isolate back-end panics themselves, so a worker thread
/// normally lives forever; should a panic nevertheless escape a job
/// (a bug in the service layer, not a back-end), only that thread dies,
/// and the next [`WorkerPool::submit`] reaps and respawns it.
struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    /// Kept so respawned workers can attach to the same queue.
    job_rx: Receiver<Job>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    spawn_counter: AtomicU64,
    faults: Arc<Faults>,
}

impl WorkerPool {
    fn new(workers: usize, faults: Arc<Faults>) -> Self {
        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let spawn_counter = AtomicU64::new(0);
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let idx = spawn_counter.fetch_add(1, Ordering::Relaxed);
            // A thread the OS refuses to spawn just shrinks the pool;
            // zero live workers degrades submissions to inline compiles.
            if let Ok(h) = Self::spawn_worker(job_rx.clone(), idx) {
                handles.push(h);
            }
        }
        WorkerPool {
            job_tx: Some(job_tx),
            job_rx,
            handles: Mutex::new(handles),
            spawn_counter,
            faults,
        }
    }

    fn spawn_worker(rx: Receiver<Job>, idx: u64) -> std::io::Result<JoinHandle<()>> {
        std::thread::Builder::new()
            .name(format!("qc-compile-{idx}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
    }

    /// Replaces worker threads that have died. Called on every submit:
    /// respawn cost is one `is_finished` check per worker in the happy
    /// path.
    fn reap_and_respawn(&self) {
        let mut handles = self.handles.lock();
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let dead = handles.swap_remove(i);
                let _ = dead.join();
                let idx = self.spawn_counter.fetch_add(1, Ordering::Relaxed);
                if let Ok(h) = Self::spawn_worker(self.job_rx.clone(), idx) {
                    handles.push(h);
                }
                self.faults
                    .workers_respawned
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                i += 1;
            }
        }
    }

    fn worker_count(&self) -> usize {
        self.handles.lock().len()
    }

    /// Hands `job` to the pool, or hands it back when no worker can run
    /// it (pool shut down, channel closed, or every spawn failed) so
    /// the caller can run it inline instead of aborting.
    fn submit(&self, job: Job) -> Result<(), Job> {
        self.reap_and_respawn();
        if self.worker_count() == 0 {
            return Err(job);
        }
        match &self.job_tx {
            Some(tx) => tx.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// What a worker hands back for one module.
enum WorkerOut {
    /// A relinkable artifact (also goes into the cache).
    Artifact(Arc<dyn CodeArtifact>),
    /// A directly compiled executable (back-end without artifact
    /// support); bypasses the cache.
    Executable(Box<dyn Executable>),
}

/// One slot of the in-order reassembly buffer.
enum Slot {
    Cached(Arc<dyn CodeArtifact>),
    Fresh(WorkerOut),
}

/// A compilation started with [`CompileService::spawn_compile`],
/// running on a worker while the caller keeps executing.
pub struct PendingCompile {
    rx: Receiver<Result<CompiledQuery, BackendError>>,
}

impl PendingCompile {
    /// Wraps an already finished compilation, so a foreground
    /// [`CompileRequest`] hands back the same ticket type as a
    /// background one.
    fn ready(result: Result<CompiledQuery, BackendError>) -> PendingCompile {
        let (tx, rx) = channel::unbounded();
        let _ = tx.send(result);
        PendingCompile { rx }
    }

    /// Returns the finished compilation if it is ready, without
    /// blocking. Returns `None` while the worker is still compiling;
    /// at most one call ever returns `Some`.
    pub fn try_take(&mut self) -> Option<Result<CompiledQuery, BackendError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                Some(Err(BackendError::transient("compile worker disconnected")))
            }
        }
    }

    /// Blocks until the compilation finishes.
    ///
    /// # Errors
    /// Propagates the background compilation's [`BackendError`].
    pub fn wait(self) -> Result<CompiledQuery, BackendError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(BackendError::transient("compile worker disconnected")))
    }
}

/// Text form of a panic payload, for `Panic`-kind [`BackendError`]s.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The compilation service. One instance per engine (or process) owns
/// the worker pool and the code cache; it is backend-agnostic — the
/// cache key carries the back-end identity.
pub struct CompileService {
    pool: WorkerPool,
    cache: Arc<CodeCache>,
    faults: Arc<Faults>,
    default_budget: CompileBudget,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompileService({} workers, {:?}, {:?})",
            self.pool.worker_count(),
            self.cache.counters(),
            self.faults.snapshot()
        )
    }
}

impl Default for CompileService {
    fn default() -> Self {
        Self::new(CompileServiceConfig::default())
    }
}

impl CompileService {
    /// Creates the service, spawning its worker threads. The code cache
    /// is in-memory only; use [`CompileService::with_store`] to attach
    /// a persistent artifact store under it.
    pub fn new(config: CompileServiceConfig) -> Self {
        Self::with_store(config, None)
    }

    /// Creates the service with a persistent [`ArtifactStore`] as the
    /// second cache tier: L1 misses probe the store, fresh artifacts
    /// are written through to it, and a warm restart (new process, same
    /// store directory) skips codegen for every previously compiled
    /// module. `None` behaves exactly like [`CompileService::new`].
    pub fn with_store(config: CompileServiceConfig, store: Option<Arc<ArtifactStore>>) -> Self {
        let faults = Arc::new(Faults::default());
        CompileService {
            pool: WorkerPool::new(config.workers, Arc::clone(&faults)),
            cache: Arc::new(CodeCache::new(config.cache_capacity, store)),
            faults,
            default_budget: config.budget,
        }
    }

    /// The attached persistent store, when one was configured.
    pub fn artifact_store(&self) -> Option<&Arc<ArtifactStore>> {
        self.cache.store.as_ref()
    }

    /// Snapshot of the cache counters (both tiers).
    pub fn cache_stats(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Snapshot of the fault-tolerance counters, including corrupt
    /// artifact-store files the service absorbed by recompiling.
    pub fn fault_stats(&self) -> FaultCounters {
        let mut snapshot = self.faults.snapshot();
        if let Some(store) = &self.cache.store {
            snapshot.artifact_corruptions = store.counters().corrupt_rejected;
        }
        snapshot
    }

    /// Shared fault counters, for the fallback chain in
    /// [`crate::fallback`].
    pub(crate) fn faults(&self) -> &Arc<Faults> {
        &self.faults
    }

    /// Live worker threads (after any respawns).
    pub fn worker_count(&self) -> usize {
        self.pool.worker_count()
    }

    /// Starts building a compile request for every pipeline of
    /// `prepared` with `backend`. This is the single entry point all
    /// compile variants route through:
    ///
    /// ```text
    /// service.request(&prepared, &backend)
    ///     .budget(CompileBudget::with_deadline(d))  // default: service budget
    ///     .trace(&trace)                            // default: no trace
    ///     .background()                             // default: foreground
    ///     .submit()                                 // -> PendingCompile
    /// ```
    ///
    /// A foreground submit compiles before returning (the ticket is
    /// already resolved); a background submit returns immediately and
    /// compiles on a worker. [`CompileService::compile`],
    /// [`CompileService::compile_budgeted`],
    /// [`CompileService::spawn_compile`] and
    /// [`CompileService::spawn_compile_budgeted`] are thin wrappers
    /// over this builder.
    pub fn request<'a>(
        &'a self,
        prepared: &'a PreparedQuery,
        backend: &'a Arc<dyn Backend>,
    ) -> CompileRequest<'a> {
        CompileRequest {
            service: self,
            prepared,
            backend,
            budget: None,
            background: false,
            trace: None,
        }
    }

    /// Compiles every pipeline of `prepared` with `backend` under the
    /// service's default [`CompileBudget`]; see
    /// [`CompileService::compile_budgeted`].
    ///
    /// # Errors
    /// Returns [`EngineError::Backend`] when any module is rejected.
    pub fn compile(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, EngineError> {
        Ok(self
            .request(prepared, backend)
            .trace(trace)
            .submit()
            .wait()?)
    }

    /// Compiles every pipeline of `prepared` with `backend`, fanning
    /// cache misses out to the worker pool and reassembling the
    /// executables in pipeline order. Per-phase timings from the
    /// workers are merged into `trace` in pipeline order, so the merged
    /// trace is deterministic regardless of completion order.
    ///
    /// Each module compile is one isolated job under `budget`: panics
    /// are caught, deadline overruns degrade into errors, transient
    /// failures are retried with backoff. A failed job never poisons
    /// the cache (only successful in-budget artifacts are inserted) and
    /// never stalls the reply merge (every job replies exactly once).
    ///
    /// # Errors
    /// Returns [`EngineError::Backend`] when any module is rejected;
    /// the error of the lowest-numbered failing pipeline wins.
    pub fn compile_budgeted(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
        budget: CompileBudget,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, EngineError> {
        Ok(self
            .request(prepared, backend)
            .budget(budget)
            .trace(trace)
            .submit()
            .wait()?)
    }

    /// The foreground path behind [`CompileRequest::submit`]: probes
    /// the cache on the caller thread, fans misses out to the pool,
    /// merges worker traces and reassembles in pipeline order.
    fn compile_fanout(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
        budget: CompileBudget,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, BackendError> {
        let start = Instant::now();
        let modules = &prepared.ir.modules;
        let mut slots: Vec<Option<Slot>> = modules.iter().map(|_| None).collect();

        // Probe the cache on the caller thread; misses go to workers.
        let mut misses = Vec::new();
        for (i, module) in modules.iter().enumerate() {
            let key = CacheKey::new(module, backend.as_ref());
            match self.cache.lookup(&key) {
                Some(artifact) => slots[i] = Some(Slot::Cached(artifact)),
                None => misses.push((i, key, Arc::clone(module))),
            }
        }

        let record = trace.is_enabled();
        let (tx, rx) = channel::unbounded();
        let n_misses = misses.len();
        for (i, key, module) in misses {
            let backend = Arc::clone(backend);
            let tx = tx.clone();
            let faults = Arc::clone(&self.faults);
            let job: Job = Box::new(move || {
                let local = if record {
                    TimeTrace::new()
                } else {
                    TimeTrace::disabled()
                };
                let out = compile_one_budgeted(backend.as_ref(), &module, &local, budget, &faults);
                // Timings of failed or partially retried jobs are not
                // meaningful per phase; report only clean successes.
                let report = match (&out, record) {
                    (Ok(_), true) => Some(local.report()),
                    _ => None,
                };
                let _ = tx.send((i, key, out, report));
            });
            if let Err(job) = self.pool.submit(job) {
                // No live worker: degrade to compiling on this thread.
                self.faults.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
                job();
            }
        }
        drop(tx);

        // Collect every reply before acting on any of them, then sort
        // by pipeline index: trace merging and cache insertion happen
        // in a deterministic order. Jobs reply exactly once even when
        // the back-end panics; a disconnect (worker died outside the
        // job guard) just leaves slots unfilled, reported below.
        let mut replies = Vec::with_capacity(n_misses);
        for _ in 0..n_misses {
            match rx.recv() {
                Ok(r) => replies.push(r),
                Err(_) => break,
            }
        }
        replies.sort_by_key(|r| r.0);
        let mut first_err: Option<BackendError> = None;
        for (i, key, out, report) in replies {
            if let Some(r) = &report {
                trace.merge(r);
            }
            match out {
                Ok(WorkerOut::Artifact(artifact)) => {
                    self.cache.insert(key, Arc::clone(&artifact));
                    slots[i] = Some(Slot::Fresh(WorkerOut::Artifact(artifact)));
                }
                Ok(out) => slots[i] = Some(Slot::Fresh(out)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e.in_backend(backend.name()));
        }
        assemble(slots, start, backend.name())
    }

    /// Starts compiling every pipeline of `prepared` on a worker under
    /// the service's default budget and returns immediately; the
    /// adaptive executor polls the returned handle at morsel boundaries
    /// and swaps tiers when it completes. The background compilation
    /// shares the service's code cache, and a panicking or over-budget
    /// optimizing tier surfaces as an `Err` through the handle instead
    /// of wedging the pool — the caller simply keeps executing its
    /// current tier.
    pub fn spawn_compile(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
    ) -> PendingCompile {
        self.request(prepared, backend).background().submit()
    }

    /// [`CompileService::spawn_compile`] with an explicit per-job
    /// budget.
    pub fn spawn_compile_budgeted(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
        budget: CompileBudget,
    ) -> PendingCompile {
        self.request(prepared, backend)
            .budget(budget)
            .background()
            .submit()
    }

    /// The background path behind [`CompileRequest::submit`]: one
    /// worker compiles all modules sequentially (tier-up runs beside a
    /// live query; monopolizing the pool would starve foreground
    /// compiles), consulting and feeding the shared cache.
    fn spawn_background(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
        budget: CompileBudget,
    ) -> PendingCompile {
        let modules = prepared.ir.modules.clone();
        let backend = Arc::clone(backend);
        let cache = Arc::clone(&self.cache);
        let faults = Arc::clone(&self.faults);
        let (tx, rx) = channel::unbounded();
        let job: Job = Box::new(move || {
            let _ = tx.send(compile_all(&modules, &backend, &cache, budget, &faults));
        });
        if let Err(job) = self.pool.submit(job) {
            self.faults.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
            job();
        }
        PendingCompile { rx }
    }
}

/// A builder-style compile request, created by
/// [`CompileService::request`]: the one entry point unifying
/// foreground/background compilation, budget overrides and trace
/// capture. Submission always yields a [`PendingCompile`] ticket; for
/// a foreground request the ticket is already resolved when `submit`
/// returns, so `submit().wait()` does not block.
pub struct CompileRequest<'a> {
    service: &'a CompileService,
    prepared: &'a PreparedQuery,
    backend: &'a Arc<dyn Backend>,
    budget: Option<CompileBudget>,
    background: bool,
    trace: Option<&'a TimeTrace>,
}

impl<'a> CompileRequest<'a> {
    /// Overrides the service's default per-job [`CompileBudget`].
    #[must_use]
    pub fn budget(mut self, budget: CompileBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Compiles on a worker and returns immediately; the caller polls
    /// or waits on the ticket. Background jobs compile the query's
    /// modules sequentially on one worker and record no per-phase
    /// trace ([`TimeTrace`] is deliberately thread-local).
    #[must_use]
    pub fn background(mut self) -> Self {
        self.background = true;
        self
    }

    /// Merges per-phase worker timings into `trace`. Honored by
    /// foreground requests; background requests ignore it.
    #[must_use]
    pub fn trace(mut self, trace: &'a TimeTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Submits the request. Every compile job runs under the request's
    /// (or the service's default) budget inside the fault envelope:
    /// panics caught, deadline overruns degraded to errors, transient
    /// failures retried — see the module docs.
    pub fn submit(self) -> PendingCompile {
        let budget = self.budget.unwrap_or(self.service.default_budget);
        if self.background {
            self.service
                .spawn_background(self.prepared, self.backend, budget)
        } else {
            let disabled;
            let trace = match self.trace {
                Some(t) => t,
                None => {
                    disabled = TimeTrace::disabled();
                    &disabled
                }
            };
            PendingCompile::ready(self.service.compile_fanout(
                self.prepared,
                self.backend,
                budget,
                trace,
            ))
        }
    }
}

/// Compiles one module, preferring the cacheable artifact path.
fn compile_one(
    backend: &dyn Backend,
    module: &Module,
    trace: &TimeTrace,
) -> Result<WorkerOut, BackendError> {
    match backend.compile_artifact(module, trace)? {
        Some(artifact) => Ok(WorkerOut::Artifact(Arc::from(artifact))),
        None => backend.compile(module, trace).map(WorkerOut::Executable),
    }
}

/// [`compile_one`] inside the fault-tolerance envelope: panics caught,
/// the budget deadline checked, transient failures retried with
/// exponential backoff. Runs on a worker thread or, when the pool is
/// unavailable, inline on the caller thread.
fn compile_one_budgeted(
    backend: &dyn Backend,
    module: &Module,
    trace: &TimeTrace,
    budget: CompileBudget,
    faults: &Faults,
) -> Result<WorkerOut, BackendError> {
    let start = Instant::now();
    let mut attempt = 0u32;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| compile_one(backend, module, trace)))
            .unwrap_or_else(|payload| {
                faults.panics_caught.fetch_add(1, Ordering::Relaxed);
                Err(BackendError::panicked(format!(
                    "compile of `{}` panicked: {}",
                    module.name,
                    panic_message(payload.as_ref())
                )))
            });
        // The deadline is checked post hoc — compiles are synchronous —
        // and overrides even success: a tier too slow for its budget
        // must degrade, and its artifact must not enter the cache.
        let overrun = budget
            .deadline
            .is_some_and(|deadline| start.elapsed() > deadline);
        if overrun {
            faults.deadline_overruns.fetch_add(1, Ordering::Relaxed);
            return Err(BackendError::deadline(format!(
                "compile of `{}` exceeded its {:?} budget",
                module.name,
                budget.deadline.unwrap_or_default(),
            )));
        }
        match outcome {
            Ok(out) => return Ok(out),
            Err(e) if e.is_transient() && attempt < budget.max_retries => {
                faults.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = budget.retry_backoff * 2u32.saturating_pow(attempt.min(16));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Sequentially compiles all modules of a query on the current (worker)
/// thread, consulting and feeding the shared cache. Used by background
/// tier-up; the same per-module fault envelope applies, so a panicking
/// optimizing tier reports an error instead of killing the worker.
fn compile_all(
    modules: &[Arc<Module>],
    backend: &Arc<dyn Backend>,
    cache: &CodeCache,
    budget: CompileBudget,
    faults: &Faults,
) -> Result<CompiledQuery, BackendError> {
    let start = Instant::now();
    let trace = TimeTrace::disabled();
    let mut slots = Vec::with_capacity(modules.len());
    for module in modules {
        let key = CacheKey::new(module, backend.as_ref());
        let slot = match cache.lookup(&key) {
            Some(artifact) => Slot::Cached(artifact),
            None => {
                let out = compile_one_budgeted(backend.as_ref(), module, &trace, budget, faults)
                    .map_err(|e| e.in_backend(backend.name()))?;
                if let WorkerOut::Artifact(artifact) = &out {
                    cache.insert(key, Arc::clone(artifact));
                }
                Slot::Fresh(out)
            }
        };
        slots.push(Some(slot));
    }
    assemble(slots, start, backend.name())
}

/// Reassembles compiled slots in pipeline order into a
/// [`CompiledQuery`]; cached and disk artifacts pay only the
/// link/unwind-registration step here. Shared by the foreground
/// fan-out and the background sequential path.
fn assemble(
    slots: Vec<Option<Slot>>,
    start: Instant,
    backend_name: &'static str,
) -> Result<CompiledQuery, BackendError> {
    let mut executables = Vec::with_capacity(slots.len());
    let mut artifacts = Vec::with_capacity(slots.len());
    let mut stats = CompileStats::default();
    for slot in slots {
        let (exe, artifact) = match slot {
            Some(Slot::Cached(artifact)) | Some(Slot::Fresh(WorkerOut::Artifact(artifact))) => {
                (artifact.instantiate()?, Some(artifact))
            }
            Some(Slot::Fresh(WorkerOut::Executable(exe))) => (exe, None),
            None => {
                return Err(BackendError::transient(
                    "compile worker died before replying",
                ));
            }
        };
        stats.merge(exe.compile_stats());
        executables.push(exe);
        artifacts.push(artifact);
    }
    Ok(CompiledQuery {
        executables,
        artifacts,
        compile_time: start.elapsed(),
        compile_stats: stats,
        backend_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A job that panics past the per-job guard kills its worker; the
    /// pool must notice and replace the thread on the next submit.
    #[test]
    fn dead_workers_are_respawned() {
        let faults = Arc::new(Faults::default());
        let pool = WorkerPool::new(2, Arc::clone(&faults));
        assert_eq!(pool.worker_count(), 2);
        // Raw jobs bypass the compile-level catch_unwind, so this
        // panic unwinds through the worker loop and kills the thread.
        for _ in 0..2 {
            pool.submit(Box::new(|| panic!("worker-fatal bug")))
                .map_err(|_| ())
                .expect("submit");
        }
        // Wait for both panicking jobs to take their workers down.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let finished = pool
                .handles
                .lock()
                .iter()
                .filter(|h| h.is_finished())
                .count();
            if finished == 2 || Instant::now() > deadline {
                break;
            }
            std::thread::yield_now();
        }
        // The next submission reaps the corpses and restores capacity.
        let (tx, rx) = channel::unbounded();
        pool.submit(Box::new(move || {
            let _ = tx.send(42u64);
        }))
        .map_err(|_| ())
        .expect("submit after respawn");
        assert_eq!(rx.recv(), Ok(42));
        assert_eq!(pool.worker_count(), 2);
        assert_eq!(faults.snapshot().workers_respawned, 2);
    }

    #[test]
    fn budget_deadline_degrades_slow_compiles() {
        struct Sleeper;
        impl Backend for Sleeper {
            fn name(&self) -> &'static str {
                "Sleeper"
            }
            fn isa(&self) -> qc_target::Isa {
                qc_target::Isa::Tx64
            }
            fn compile(
                &self,
                _m: &Module,
                _t: &TimeTrace,
            ) -> Result<Box<dyn Executable>, BackendError> {
                std::thread::sleep(Duration::from_millis(20));
                Err(BackendError::new("sleeper compiles nothing"))
            }
        }
        let faults = Faults::default();
        let m = Module::new("m");
        let err = compile_one_budgeted(
            &Sleeper,
            &m,
            &TimeTrace::disabled(),
            CompileBudget::with_deadline(Duration::from_millis(1)),
            &faults,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind, qc_backend::BackendErrorKind::Deadline);
        assert_eq!(faults.snapshot().deadline_overruns, 1);
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        struct FlakyThenFail {
            calls: AtomicU64,
        }
        impl Backend for FlakyThenFail {
            fn name(&self) -> &'static str {
                "Flaky"
            }
            fn isa(&self) -> qc_target::Isa {
                qc_target::Isa::Tx64
            }
            fn compile(
                &self,
                _m: &Module,
                _t: &TimeTrace,
            ) -> Result<Box<dyn Executable>, BackendError> {
                let n = self.calls.fetch_add(1, Ordering::Relaxed);
                if n < 2 {
                    Err(BackendError::transient("flaky"))
                } else {
                    // Still an error, but a permanent one: proves the
                    // transient path retried exactly twice.
                    Err(BackendError::new("permanent after retries"))
                }
            }
        }
        let backend = FlakyThenFail {
            calls: AtomicU64::new(0),
        };
        let faults = Faults::default();
        let m = Module::new("m");
        let err = compile_one_budgeted(
            &backend,
            &m,
            &TimeTrace::disabled(),
            CompileBudget {
                deadline: None,
                max_retries: 5,
                retry_backoff: Duration::ZERO,
            },
            &faults,
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind, qc_backend::BackendErrorKind::Permanent);
        assert_eq!(backend.calls.load(Ordering::Relaxed), 3);
        assert_eq!(faults.snapshot().retries, 2);
    }
}
