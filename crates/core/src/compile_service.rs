//! Threaded compilation service: parallel pipeline compiles, an
//! IR-keyed code cache, and background compilation for adaptive
//! tier-up.
//!
//! A query decomposes into independent pipelines, one IR module each;
//! nothing in a back-end compilation reads another pipeline's state, so
//! the service fans the modules of one query out to a persistent worker
//! pool and reassembles the executables in pipeline order. Workers use
//! thread-local [`TimeTrace`]s (the trace type is deliberately not
//! `Send`) and ship immutable [`Report`] snapshots back for merging, so
//! phase attribution survives the fan-out.
//!
//! The cache stores *unlinked* [`CodeArtifact`]s keyed by the module's
//! structural IR hash plus the back-end identity; a warm hit skips code
//! generation entirely and pays only the link/unwind-registration step
//! (see `DESIGN.md`, "Compilation service"). Parameterized re-runs of a
//! prepared query therefore compile in roughly link time.

use crate::engine::{CompiledQuery, EngineError, PreparedQuery};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use qc_backend::{Backend, BackendError, CodeArtifact, CompileStats, Executable};
use qc_ir::{module_structural_hash, Module};
use qc_timing::TimeTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of a [`CompileService`].
#[derive(Debug, Clone, Copy)]
pub struct CompileServiceConfig {
    /// Worker threads in the pool (at least 1).
    pub workers: usize,
    /// Maximum number of cached artifacts; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for CompileServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(1)
            .clamp(1, 8);
        CompileServiceConfig {
            workers,
            cache_capacity: 128,
        }
    }
}

/// Cache counters snapshot, taken with [`CompileService::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a usable artifact.
    pub hits: u64,
    /// Lookups that missed (including when caching is disabled).
    pub misses: u64,
    /// Entries displaced to respect the capacity bound.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Approximate bytes retained by resident artifacts.
    pub resident_bytes: usize,
}

/// Cache key: what must match for cached code to be reusable. The
/// module name is deliberately absent — structurally identical
/// pipelines of differently named queries share code (string literals
/// resolve through the context block at run time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    module_hash: u64,
    backend: &'static str,
    isa: &'static str,
    config: u64,
}

impl CacheKey {
    fn new(module: &Module, backend: &dyn Backend) -> Self {
        CacheKey {
            module_hash: module_structural_hash(module),
            backend: backend.name(),
            isa: backend.isa().name(),
            config: backend.config_fingerprint(),
        }
    }
}

struct CacheEntry {
    artifact: Arc<dyn CodeArtifact>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    tick: u64,
}

/// Bounded LRU over compiled artifacts, shared between the caller
/// thread and the workers.
struct CodeCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CodeCache {
    fn new(capacity: usize) -> Self {
        CodeCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lookup(&self, key: &CacheKey) -> Option<Arc<dyn CodeArtifact>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.artifact))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, artifact: Arc<dyn CodeArtifact>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Concurrent compiles of the same module may race to insert;
        // first writer wins, the duplicate artifact is dropped.
        if inner.map.contains_key(&key) {
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            CacheEntry {
                artifact,
                last_used: tick,
            },
        );
    }

    fn counters(&self) -> CacheCounters {
        let inner = self.inner.lock();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            resident_bytes: inner.map.values().map(|e| e.artifact.size_bytes()).sum(),
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Persistent worker threads consuming compile jobs from an MPMC
/// channel. Dropping the pool closes the channel and joins the workers.
struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("qc-compile-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn compile worker")
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            handles,
        }
    }

    fn submit(&self, job: Job) {
        let sent = self.job_tx.as_ref().expect("pool alive").send(job);
        assert!(sent.is_ok(), "compile workers alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.job_tx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// What a worker hands back for one module.
enum WorkerOut {
    /// A relinkable artifact (also goes into the cache).
    Artifact(Arc<dyn CodeArtifact>),
    /// A directly compiled executable (back-end without artifact
    /// support); bypasses the cache.
    Executable(Box<dyn Executable>),
}

/// One slot of the in-order reassembly buffer.
enum Slot {
    Cached(Arc<dyn CodeArtifact>),
    Fresh(WorkerOut),
}

/// A compilation started with [`CompileService::spawn_compile`],
/// running on a worker while the caller keeps executing.
pub struct PendingCompile {
    rx: Receiver<Result<CompiledQuery, BackendError>>,
}

impl PendingCompile {
    /// Returns the finished compilation if it is ready, without
    /// blocking. Returns `None` while the worker is still compiling;
    /// at most one call ever returns `Some`.
    pub fn try_take(&mut self) -> Option<Result<CompiledQuery, BackendError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                Some(Err(BackendError::new("compile worker disconnected")))
            }
        }
    }

    /// Blocks until the compilation finishes.
    ///
    /// # Errors
    /// Propagates the background compilation's [`BackendError`].
    pub fn wait(self) -> Result<CompiledQuery, BackendError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(BackendError::new("compile worker disconnected")))
    }
}

/// The compilation service. One instance per engine (or process) owns
/// the worker pool and the code cache; it is backend-agnostic — the
/// cache key carries the back-end identity.
pub struct CompileService {
    pool: WorkerPool,
    cache: Arc<CodeCache>,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompileService({} workers, {:?})",
            self.pool.handles.len(),
            self.cache.counters()
        )
    }
}

impl Default for CompileService {
    fn default() -> Self {
        Self::new(CompileServiceConfig::default())
    }
}

impl CompileService {
    /// Creates the service, spawning its worker threads.
    pub fn new(config: CompileServiceConfig) -> Self {
        CompileService {
            pool: WorkerPool::new(config.workers),
            cache: Arc::new(CodeCache::new(config.cache_capacity)),
        }
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Compiles every pipeline of `prepared` with `backend`, fanning
    /// cache misses out to the worker pool and reassembling the
    /// executables in pipeline order. Per-phase timings from the
    /// workers are merged into `trace` in pipeline order, so the merged
    /// trace is deterministic regardless of completion order.
    ///
    /// # Errors
    /// Returns [`EngineError::Backend`] when any module is rejected.
    pub fn compile(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, EngineError> {
        let start = Instant::now();
        let modules = &prepared.ir.modules;
        let mut slots: Vec<Option<Slot>> = modules.iter().map(|_| None).collect();

        // Probe the cache on the caller thread; misses go to workers.
        let mut misses = Vec::new();
        for (i, module) in modules.iter().enumerate() {
            let key = CacheKey::new(module, backend.as_ref());
            match self.cache.lookup(&key) {
                Some(artifact) => slots[i] = Some(Slot::Cached(artifact)),
                None => misses.push((i, key, Arc::clone(module))),
            }
        }

        let record = trace.is_enabled();
        let (tx, rx) = channel::unbounded();
        let n_misses = misses.len();
        for (i, key, module) in misses {
            let backend = Arc::clone(backend);
            let tx = tx.clone();
            self.pool.submit(Box::new(move || {
                let local = if record {
                    TimeTrace::new()
                } else {
                    TimeTrace::disabled()
                };
                let out = compile_one(backend.as_ref(), &module, &local);
                let report = record.then(|| local.report());
                let _ = tx.send((i, key, out, report));
            }));
        }
        drop(tx);

        // Collect every reply before acting on any of them, then sort
        // by pipeline index: trace merging and cache insertion happen
        // in a deterministic order.
        let mut replies = Vec::with_capacity(n_misses);
        for _ in 0..n_misses {
            replies.push(rx.recv().expect("compile worker died"));
        }
        replies.sort_by_key(|r| r.0);
        let mut first_err = None;
        for (i, key, out, report) in replies {
            if let Some(r) = &report {
                trace.merge(r);
            }
            match out {
                Ok(WorkerOut::Artifact(artifact)) => {
                    self.cache.insert(key, Arc::clone(&artifact));
                    slots[i] = Some(Slot::Fresh(WorkerOut::Artifact(artifact)));
                }
                Ok(out) => slots[i] = Some(Slot::Fresh(out)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(EngineError::Backend(e));
        }

        // Reassemble in pipeline order; cached artifacts pay only the
        // link/unwind-registration step here.
        let mut executables = Vec::with_capacity(slots.len());
        let mut stats = CompileStats::default();
        for slot in slots {
            let exe = match slot.expect("every slot filled") {
                Slot::Cached(artifact) => artifact.instantiate()?,
                Slot::Fresh(WorkerOut::Artifact(artifact)) => artifact.instantiate()?,
                Slot::Fresh(WorkerOut::Executable(exe)) => exe,
            };
            stats.merge(exe.compile_stats());
            executables.push(exe);
        }
        Ok(CompiledQuery {
            executables,
            compile_time: start.elapsed(),
            compile_stats: stats,
            backend_name: backend.name(),
        })
    }

    /// Starts compiling every pipeline of `prepared` on a worker and
    /// returns immediately; the adaptive executor polls the returned
    /// handle at morsel boundaries and swaps tiers when it completes.
    /// The background compilation shares the service's code cache.
    pub fn spawn_compile(
        &self,
        prepared: &PreparedQuery,
        backend: &Arc<dyn Backend>,
    ) -> PendingCompile {
        let modules = prepared.ir.modules.clone();
        let backend = Arc::clone(backend);
        let cache = Arc::clone(&self.cache);
        let (tx, rx) = channel::unbounded();
        self.pool.submit(Box::new(move || {
            let _ = tx.send(compile_all(&modules, &backend, &cache));
        }));
        PendingCompile { rx }
    }
}

/// Compiles one module, preferring the cacheable artifact path.
fn compile_one(
    backend: &dyn Backend,
    module: &Module,
    trace: &TimeTrace,
) -> Result<WorkerOut, BackendError> {
    match backend.compile_artifact(module, trace)? {
        Some(artifact) => Ok(WorkerOut::Artifact(Arc::from(artifact))),
        None => backend.compile(module, trace).map(WorkerOut::Executable),
    }
}

/// Sequentially compiles all modules of a query on the current (worker)
/// thread, consulting and feeding the shared cache.
fn compile_all(
    modules: &[Arc<Module>],
    backend: &Arc<dyn Backend>,
    cache: &CodeCache,
) -> Result<CompiledQuery, BackendError> {
    let start = Instant::now();
    let trace = TimeTrace::disabled();
    let mut executables = Vec::with_capacity(modules.len());
    let mut stats = CompileStats::default();
    for module in modules {
        let key = CacheKey::new(module, backend.as_ref());
        let exe = match cache.lookup(&key) {
            Some(artifact) => artifact.instantiate()?,
            None => match compile_one(backend.as_ref(), module, &trace)? {
                WorkerOut::Artifact(artifact) => {
                    cache.insert(key, Arc::clone(&artifact));
                    artifact.instantiate()?
                }
                WorkerOut::Executable(exe) => exe,
            },
        };
        stats.merge(exe.compile_stats());
        executables.push(exe);
    }
    Ok(CompiledQuery {
        executables,
        compile_time: start.elapsed(),
        compile_stats: stats,
        backend_name: backend.name(),
    })
}
