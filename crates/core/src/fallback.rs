//! Graceful degradation: a configurable back-end fallback chain.
//!
//! The paper's trade-off is fast-but-fragile optimizing tiers vs. cheap
//! always-available ones (DirectEmit, the interpreter). A production
//! engine only banks that trade-off if a failing, panicking, or
//! too-slow tier *degrades* a query instead of killing it: when a tier
//! errors out, the service transparently recompiles the affected
//! pipelines on the next tier down the chain and records the downgrade
//! in the compile stats and [`TimeTrace`]. The interpreter accepts
//! every verified module, so a chain ending in it cannot fail for
//! supported queries.

use crate::compile_service::{CompileBudget, CompileService};
use crate::engine::{CompiledQuery, EngineError, PreparedQuery};
use qc_backend::{Backend, BackendError};
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An ordered list of back-end tiers, most desirable first. Compilation
/// walks the chain until a tier compiles the whole query within budget.
#[derive(Clone)]
pub struct FallbackChain {
    tiers: Vec<Arc<dyn Backend>>,
}

impl std::fmt::Debug for FallbackChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.tiers.iter().map(|t| t.name()).collect();
        write!(f, "FallbackChain({})", names.join(" → "))
    }
}

impl FallbackChain {
    /// Builds a chain from explicit tiers, most desirable first.
    ///
    /// # Panics
    /// Panics if `tiers` is empty (an empty chain can compile nothing).
    pub fn new(tiers: Vec<Arc<dyn Backend>>) -> Self {
        assert!(!tiers.is_empty(), "fallback chain needs at least one tier");
        FallbackChain { tiers }
    }

    /// The standard degradation ladder for `isa`:
    /// LVM-opt → LVM-cheap → DirectEmit (TX64 only) → interpreter.
    pub fn standard(isa: Isa) -> Self {
        let mut tiers: Vec<Arc<dyn Backend>> = vec![
            Arc::from(crate::backends::lvm_opt(isa)),
            Arc::from(crate::backends::lvm_cheap(isa)),
        ];
        if isa == Isa::Tx64 {
            tiers.push(Arc::from(crate::backends::direct_emit()));
        }
        tiers.push(Arc::from(crate::backends::interpreter()));
        FallbackChain { tiers }
    }

    /// The tiers, most desirable first.
    pub fn tiers(&self) -> &[Arc<dyn Backend>] {
        &self.tiers
    }

    /// The tier strictly below the named tier — the runaway governor's
    /// downgrade target. A name not in the chain maps to the last
    /// (cheapest) tier; the last tier itself has nothing below it.
    pub fn tier_below(&self, name: &str) -> Option<&Arc<dyn Backend>> {
        match self.tiers.iter().position(|t| t.name() == name) {
            Some(i) => self.tiers.get(i + 1),
            None => self.tiers.last(),
        }
    }
}

/// One tier's failure while walking a [`FallbackChain`].
#[derive(Debug, Clone)]
pub struct TierFailure {
    /// Name of the tier that failed.
    pub backend: &'static str,
    /// Why it failed (error, caught panic, or deadline overrun).
    pub error: BackendError,
    /// Wall-clock time burned in the failed tier.
    pub spent: Duration,
}

/// What [`CompileService::compile_with_fallback`] did: which tier
/// served the query and which tiers were skipped over.
#[derive(Debug, Clone, Default)]
pub struct FallbackReport {
    /// Index into the chain of the tier that succeeded.
    pub tier_used: usize,
    /// Name of the tier that succeeded.
    pub backend_name: &'static str,
    /// Failures of every higher tier, in chain order.
    pub failures: Vec<TierFailure>,
}

impl FallbackReport {
    /// Whether any downgrade happened (the first tier did not serve).
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }
}

impl CompileService {
    /// Compiles `prepared` by walking `chain` tier by tier under
    /// `budget` until one tier compiles every pipeline. Per-tier
    /// failures (including caught panics and deadline overruns — the
    /// per-job fault envelope of
    /// [`compile_budgeted`](CompileService::compile_budgeted) applies
    /// within each tier) are recorded, not fatal:
    ///
    /// * the winning tier's [`CompiledQuery::compile_stats`] counters
    ///   carry `fallback_downgrades` plus one `fallback_from_<tier>`
    ///   entry per skipped tier;
    /// * `trace` records the time burned in each failed tier under
    ///   `fallback/<tier>`;
    /// * the service's [`fault_stats`](CompileService::fault_stats)
    ///   `downgrades` counter is bumped per skipped tier.
    ///
    /// # Errors
    /// Returns the last tier's [`EngineError::Backend`] only when every
    /// tier fails; planning errors propagate immediately.
    pub fn compile_with_fallback(
        &self,
        prepared: &PreparedQuery,
        chain: &FallbackChain,
        budget: CompileBudget,
        trace: &TimeTrace,
    ) -> Result<(CompiledQuery, FallbackReport), EngineError> {
        let mut failures: Vec<TierFailure> = Vec::new();
        for (idx, tier) in chain.tiers().iter().enumerate() {
            let tier_start = Instant::now();
            match self.compile_budgeted(prepared, tier, budget, trace) {
                Ok(mut compiled) => {
                    if !failures.is_empty() {
                        self.faults()
                            .downgrades
                            .fetch_add(failures.len() as u64, Ordering::Relaxed);
                        compiled
                            .compile_stats
                            .bump("fallback_downgrades", failures.len() as u64);
                        for f in &failures {
                            compiled
                                .compile_stats
                                .bump(&format!("fallback_from_{}", f.backend), 1);
                            trace.record(&format!("fallback/{}", f.backend), f.spent);
                            // The query still pays for the failed tier's
                            // compile attempts.
                            compiled.compile_time += f.spent;
                        }
                    }
                    let report = FallbackReport {
                        tier_used: idx,
                        backend_name: tier.name(),
                        failures,
                    };
                    return Ok((compiled, report));
                }
                Err(EngineError::Backend(e)) => {
                    failures.push(TierFailure {
                        backend: tier.name(),
                        error: e,
                        spent: tier_start.elapsed(),
                    });
                }
                // Plan/storage/trap errors are not tier faults; a
                // cheaper tier cannot fix them.
                Err(other) => return Err(other),
            }
        }
        let summary = failures
            .iter()
            .map(|f| format!("{}: {}", f.backend, f.error))
            .collect::<Vec<_>>()
            .join("; ");
        Err(EngineError::Backend(BackendError::new(format!(
            "every fallback tier failed: {summary}"
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_chain_shape() {
        let tx = FallbackChain::standard(Isa::Tx64);
        let names: Vec<_> = tx.tiers().iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec!["LVM-opt", "LVM-cheap", "DirectEmit", "Interpreter"]
        );
        let ta = FallbackChain::standard(Isa::Ta64);
        let names: Vec<_> = ta.tiers().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["LVM-opt", "LVM-cheap", "Interpreter"]);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_chain_is_rejected() {
        let _ = FallbackChain::new(Vec::new());
    }
}
