//! Query preparation, compilation, and morsel-wise execution.

use crate::morsel_exec::{ExecTally, QueryExecution, StepProgress};
use qc_backend::{Backend, BackendError, CodeArtifact, CompileStats, Executable};
use qc_codegen::{generate, GeneratedQuery};
use qc_plan::{PhysicalPlan, PlanError, PlanNode, RowLayout};
use qc_runtime::{RtString, RuntimeState, SqlValue};
use qc_storage::{ColumnType, Database};
use qc_target::{ExecStats, Trap};
use qc_timing::TimeTrace;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Error produced by engine operations.
#[derive(Debug)]
pub enum EngineError {
    /// Planning/decomposition failed.
    Plan(PlanError),
    /// A back-end rejected a module.
    Backend(BackendError),
    /// Execution trapped.
    Trap(Trap),
    /// A storage-layer invariant broke between planning and execution
    /// (e.g. a planned table is gone from the database).
    Storage(String),
    /// The wall-clock deadline of a [`QueryBudget`] passed. Carries the
    /// partial work accounted up to the morsel boundary where execution
    /// stopped.
    DeadlineExceeded {
        /// Wall-clock time spent before the budget check tripped.
        elapsed: Duration,
        /// The configured deadline.
        limit: Duration,
        /// Cycles/instructions charged before execution stopped.
        partial: ExecTally,
    },
    /// A deterministic [`QueryBudget`] bound ran out (model cycles or
    /// result rows). Execution stops at the next morsel boundary.
    BudgetExhausted {
        /// Which bound tripped (`"model cycles"` / `"result rows"`).
        what: &'static str,
        /// Amount consumed when the check tripped.
        used: u64,
        /// The configured bound.
        limit: u64,
        /// Cycles/instructions charged before execution stopped.
        partial: ExecTally,
    },
    /// The query was cancelled through its [`CancelToken`].
    Cancelled {
        /// Cycles/instructions charged before execution stopped.
        partial: ExecTally,
    },
    /// A morsel worker panicked and the single retry pass could not
    /// recover the query (or panicked again). The process survives; the
    /// query fails with this typed error.
    WorkerPanic(String),
    /// A configuration was rejected (see
    /// [`crate::SchedulerConfig::validate`]).
    Config(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Backend(e) => write!(f, "{e}"),
            EngineError::Trap(t) => write!(f, "execution trapped: {t}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
            EngineError::DeadlineExceeded {
                elapsed,
                limit,
                partial,
            } => write!(
                f,
                "deadline exceeded: {elapsed:?} elapsed of {limit:?} budget \
                 ({} cycles charged)",
                partial.cycles
            ),
            EngineError::BudgetExhausted {
                what,
                used,
                limit,
                partial,
            } => write!(
                f,
                "budget exhausted: {used} {what} of {limit} allowed \
                 ({} cycles charged)",
                partial.cycles
            ),
            EngineError::Cancelled { partial } => {
                write!(f, "query cancelled ({} cycles charged)", partial.cycles)
            }
            EngineError::WorkerPanic(msg) => write!(f, "morsel worker panicked: {msg}"),
            EngineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

/// A shared cooperative cancellation flag. Clone the token, hand one
/// copy to [`QueryBudget::cancelled_by`], and call
/// [`CancelToken::cancel`] from any thread: every executing worker
/// observes the flag at its next morsel claim and the query fails with
/// [`EngineError::Cancelled`] within one morsel.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Execution-side resource bounds for one query, checked at every
/// morsel claim (serial stepper and parallel workers alike), so a
/// tripped budget stops the query within one morsel. The default is
/// unlimited.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Wall-clock deadline from execution start (serving SLA guard).
    pub deadline: Option<Duration>,
    /// Deterministic model-cycle cap across all workers.
    pub max_model_cycles: Option<u64>,
    /// Cap on materialized result rows.
    pub max_result_rows: Option<u64>,
    /// Cooperative cancellation flag.
    pub cancel: Option<CancelToken>,
}

impl QueryBudget {
    /// No bounds at all (the `Default`).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the model-cycle cap.
    #[must_use]
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_model_cycles = Some(cycles);
        self
    }

    /// Sets the result-row cap.
    #[must_use]
    pub fn with_max_rows(mut self, rows: u64) -> Self {
        self.max_result_rows = Some(rows);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn cancelled_by(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether every bound is absent (the fast path skips checks).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_model_cycles.is_none()
            && self.max_result_rows.is_none()
            && self.cancel.is_none()
    }

    /// One budget check at a morsel boundary: `started` is the
    /// execution start, `tally` the work charged so far, `rows` the
    /// result rows materialized so far.
    pub(crate) fn check(
        &self,
        started: Instant,
        tally: ExecTally,
        rows: u64,
    ) -> Result<(), EngineError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(EngineError::Cancelled { partial: tally });
            }
        }
        if let Some(limit) = self.deadline {
            let elapsed = started.elapsed();
            if elapsed >= limit {
                return Err(EngineError::DeadlineExceeded {
                    elapsed,
                    limit,
                    partial: tally,
                });
            }
        }
        if let Some(limit) = self.max_model_cycles {
            if tally.cycles >= limit {
                return Err(EngineError::BudgetExhausted {
                    what: "model cycles",
                    used: tally.cycles,
                    limit,
                    partial: tally,
                });
            }
        }
        if let Some(limit) = self.max_result_rows {
            if rows > limit {
                return Err(EngineError::BudgetExhausted {
                    what: "result rows",
                    used: rows,
                    limit,
                    partial: tally,
                });
            }
        }
        Ok(())
    }
}

impl Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}
impl From<BackendError> for EngineError {
    fn from(e: BackendError) -> Self {
        EngineError::Backend(e)
    }
}
impl From<Trap> for EngineError {
    fn from(t: Trap) -> Self {
        EngineError::Trap(t)
    }
}

/// A planned query: physical pipelines plus their generated IR.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Query name (used in module names).
    pub name: String,
    /// The pipeline decomposition.
    pub plan: PhysicalPlan,
    /// Generated IR, one module per pipeline.
    pub ir: GeneratedQuery,
}

impl PreparedQuery {
    /// Total IR instruction count across all pipelines (the adaptive
    /// compiler's code-size heuristic input).
    pub fn ir_size(&self) -> usize {
        self.ir
            .modules
            .iter()
            .flat_map(|m| m.functions())
            .map(qc_ir::Function::num_insts)
            .sum()
    }
}

/// A compiled query: one executable per pipeline.
pub struct CompiledQuery {
    /// Executables in pipeline order.
    pub executables: Vec<Box<dyn Executable>>,
    /// Reusable code artifacts in pipeline order, when the back-end
    /// produces them (`None` for executable-only back-ends). The
    /// morsel-parallel executor instantiates one executable per worker
    /// from these, so every worker runs the same machine code.
    pub artifacts: Vec<Option<Arc<dyn CodeArtifact>>>,
    /// Wall-clock compile time (sum over pipelines).
    pub compile_time: Duration,
    /// Merged compile statistics.
    pub compile_stats: CompileStats,
    /// Name of the back-end used.
    pub backend_name: &'static str,
}

impl CompiledQuery {
    /// Folds a background-compiled `replacement` tier into this query
    /// in place: compile time and statistics of the replaced tier are
    /// merged so the totals cover both tiers (the accounting contract
    /// of [`Engine::execute_with_hook`]).
    pub(crate) fn adopt_replacement(&mut self, mut replacement: CompiledQuery) {
        replacement.compile_time += self.compile_time;
        replacement.compile_stats.merge(&self.compile_stats);
        *self = replacement;
    }
}

impl fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledQuery({} pipelines, {:?}, {})",
            self.executables.len(),
            self.compile_time,
            self.backend_name
        )
    }
}

/// Snapshot handed to an execution hook after each morsel (see
/// [`Engine::execute_with_hook`]).
#[derive(Debug, Clone, Copy)]
pub struct MorselEvent {
    /// Index of the pipeline currently running.
    pub pipeline: usize,
    /// Morsels completed so far across all pipelines.
    pub morsels_done: u64,
    /// Deterministic cycles consumed so far, accumulated across any
    /// earlier executable swaps.
    pub cycles_so_far: u64,
}

/// Result of executing a query.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Output rows.
    pub rows: Vec<Vec<SqlValue>>,
    /// Deterministic execution cost (cycles/instructions). Under
    /// morsel-parallel execution this is the total work across all
    /// workers, not elapsed model time.
    pub exec_stats: ExecStats,
    /// Model-time critical path: serial sections plus, per parallel
    /// pipeline, the busiest worker's cycles. Equals
    /// `exec_stats.cycles` on the single-threaded path; the ratio of
    /// the two is the model-time speedup parallel execution would see
    /// on real cores.
    pub critical_path_cycles: u64,
    /// Wall-clock compile time.
    pub compile_time: Duration,
    /// Merged compile statistics.
    pub compile_stats: CompileStats,
}

/// Execution-side tuning knobs for [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Rows per morsel for base-table scans. Smaller morsels mean more
    /// tier-up/swap opportunities and finer parallel work units at the
    /// cost of more per-morsel call overhead.
    pub morsel_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { morsel_size: 2048 }
    }
}

/// The execution engine over one database.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'db> {
    db: &'db Database,
    config: EngineConfig,
}

impl<'db> Engine<'db> {
    /// Creates an engine over `db` with default configuration.
    pub fn new(db: &'db Database) -> Self {
        Engine::with_config(db, EngineConfig::default())
    }

    /// Creates an engine over `db` with explicit configuration.
    pub fn with_config(db: &'db Database, config: EngineConfig) -> Self {
        assert!(config.morsel_size > 0, "morsel size must be positive");
        Engine { db, config }
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Rows per morsel for base-table scans.
    pub fn morsel_size(&self) -> usize {
        self.config.morsel_size
    }

    /// Plans a query and generates its IR.
    ///
    /// # Errors
    /// Returns [`EngineError::Plan`] for schema/type errors.
    #[deprecated(note = "use `Session::statement` (cached) or `Session::prepare` instead")]
    pub fn prepare(&self, plan: &PlanNode, name: &str) -> Result<PreparedQuery, EngineError> {
        self.prepare_internal(plan, name)
    }

    pub(crate) fn prepare_internal(
        &self,
        plan: &PlanNode,
        name: &str,
    ) -> Result<PreparedQuery, EngineError> {
        let catalog = |t: &str| {
            self.db
                .table(t)
                .map(|t| t.schema.iter().map(|(n, ty)| (n.to_string(), ty)).collect())
        };
        let phys = PhysicalPlan::decompose(plan, &catalog)?;
        let ir = generate(&phys, name);
        Ok(PreparedQuery {
            name: name.to_string(),
            plan: phys,
            ir,
        })
    }

    /// Compiles a prepared query with `backend`, measuring wall-clock time.
    ///
    /// # Errors
    /// Returns [`EngineError::Backend`] when a module is rejected.
    #[deprecated(note = "use `QueryRun::direct` (same semantics) or `QueryRun::compile` instead")]
    pub fn compile(
        &self,
        prepared: &PreparedQuery,
        backend: &dyn Backend,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, EngineError> {
        self.compile_internal(prepared, backend, trace)
    }

    pub(crate) fn compile_internal(
        &self,
        prepared: &PreparedQuery,
        backend: &dyn Backend,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, EngineError> {
        let start = Instant::now();
        let mut executables = Vec::with_capacity(prepared.ir.modules.len());
        let mut artifacts = Vec::with_capacity(prepared.ir.modules.len());
        let mut stats = CompileStats::default();
        for module in &prepared.ir.modules {
            // Prefer the artifact path: it yields a handle the
            // morsel-parallel executor can instantiate per worker.
            // Timed compiles take the one-shot path instead, because
            // artifact instantiation defers the final link outside the
            // trace and would drop that phase from the breakdowns.
            let artifact = if trace.is_enabled() {
                None
            } else {
                backend.compile_artifact(module, trace)?
            };
            let (exe, artifact) = match artifact {
                Some(artifact) => {
                    let artifact: Arc<dyn CodeArtifact> = Arc::from(artifact);
                    (artifact.instantiate()?, Some(artifact))
                }
                None => (backend.compile(module, trace)?, None),
            };
            stats.merge(exe.compile_stats());
            executables.push(exe);
            artifacts.push(artifact);
        }
        Ok(CompiledQuery {
            executables,
            artifacts,
            compile_time: start.elapsed(),
            compile_stats: stats,
            backend_name: backend.name(),
        })
    }

    /// Executes a compiled query, returning decoded rows and cycle costs.
    ///
    /// # Errors
    /// Returns [`EngineError::Trap`] when generated code traps.
    #[deprecated(note = "use `QueryRun::execute` or `QueryRun::execute_compiled` instead")]
    pub fn execute(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_internal(prepared, compiled)
    }

    pub(crate) fn execute_internal(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_with_hook_internal(prepared, compiled, &mut |_| None)
    }

    /// Executes a compiled query, consulting `hook` after every morsel.
    ///
    /// When the hook returns a replacement [`CompiledQuery`] (e.g. the
    /// optimizing tier finished compiling in the background), the swap
    /// happens at that morsel boundary: the *next* morsel — and every
    /// later pipeline — runs the replacement executables. Pipeline
    /// state lives in the runtime context block, not in module code, so
    /// a mid-pipeline swap is safe; `setup` is not re-run. Compile time
    /// and statistics of the replaced query are merged into the
    /// replacement so the returned totals cover both tiers, and
    /// execution cycles are accumulated across the swap.
    ///
    /// # Errors
    /// Returns [`EngineError::Trap`] when generated code traps.
    #[deprecated(note = "use `QueryRun::execute_compiled_with_hook` instead")]
    pub fn execute_with_hook(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_with_hook_internal(prepared, compiled, hook)
    }

    pub(crate) fn execute_with_hook_internal(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_budgeted_internal(prepared, compiled, &QueryBudget::unlimited(), hook)
    }

    pub(crate) fn execute_budgeted_internal(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        budget: &QueryBudget,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        let mut exec = QueryExecution::with_budget(self, prepared, budget.clone())?;
        while let StepProgress::Ran(event) = exec.step(self, prepared, compiled, 1)? {
            if let Some(replacement) = hook(&event) {
                compiled.adopt_replacement(replacement);
            }
        }
        exec.into_result(prepared, compiled)
    }

    /// Prepares, compiles, and executes a plan in one call. Pass a
    /// [`TimeTrace`] to collect the per-phase compile-time breakdown,
    /// or `None` to skip tracing overhead.
    ///
    /// # Errors
    /// Propagates planning, compilation, and execution errors.
    #[deprecated(note = "use `Session::prepare(plan)?.execute()` instead")]
    pub fn run(
        &self,
        plan: &PlanNode,
        backend: &dyn Backend,
        trace: Option<&TimeTrace>,
    ) -> Result<ExecutionResult, EngineError> {
        let prepared = self.prepare_internal(plan, "q")?;
        let disabled = TimeTrace::disabled();
        let trace = trace.unwrap_or(&disabled);
        let mut compiled = self.compile_internal(&prepared, backend, trace)?;
        self.execute_internal(&prepared, &mut compiled)
    }
}

pub(crate) fn decode_rows(
    state: &RuntimeState,
    buf: u64,
    layout: &RowLayout,
) -> Vec<Vec<SqlValue>> {
    let buffer = state.buffer(buf);
    let mut rows = Vec::with_capacity(buffer.len());
    for i in 0..buffer.len() {
        let bytes = buffer.row_bytes(i);
        let mut row = Vec::with_capacity(layout.fields.len());
        for f in &layout.fields {
            let off = f.offset as usize;
            let v = match f.ty {
                ColumnType::I32 | ColumnType::Date => {
                    let raw = i64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
                    SqlValue::I32(raw as i32)
                }
                ColumnType::I64 => SqlValue::I64(i64::from_le_bytes(
                    bytes[off..off + 8].try_into().expect("8 bytes"),
                )),
                ColumnType::Decimal(s) => {
                    let raw =
                        i128::from_le_bytes(bytes[off..off + 16].try_into().expect("16 bytes"));
                    SqlValue::Decimal(raw, s)
                }
                ColumnType::F64 => SqlValue::F64(f64::from_le_bytes(
                    bytes[off..off + 8].try_into().expect("8 bytes"),
                )),
                ColumnType::Bool => {
                    let raw = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
                    SqlValue::Bool(raw != 0)
                }
                ColumnType::Str => {
                    let s =
                        RtString::from_bytes(bytes[off..off + 16].try_into().expect("16 bytes"));
                    SqlValue::Str(String::from_utf8_lossy(s.as_slice()).into_owned())
                }
            };
            row.push(v);
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends;
    use qc_plan::reference;
    use qc_plan::{col, lit_dec, lit_i64, lit_str, AggFunc};

    fn check_against_reference(plan: &PlanNode, db: &Database) {
        let session = crate::Session::new(db);
        let expected = reference::execute(plan, db).expect("reference execution");
        let all: Vec<Box<dyn qc_backend::Backend>> = vec![
            backends::interpreter(),
            backends::direct_emit(),
            backends::clift(qc_target::Isa::Tx64),
            backends::clift(qc_target::Isa::Ta64),
            backends::lvm_cheap(qc_target::Isa::Tx64),
            backends::lvm_opt(qc_target::Isa::Tx64),
            backends::lvm_cheap(qc_target::Isa::Ta64),
            backends::lvm_opt(qc_target::Isa::Ta64),
            backends::cgen(qc_target::Isa::Tx64),
            backends::cgen(qc_target::Isa::Ta64),
        ];
        for backend in all {
            let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
            let got = session
                .prepare(plan)
                .expect("prepare")
                .backend(Arc::clone(&backend))
                .execute()
                .expect("engine execution");
            assert_eq!(
                reference::normalize(&got.rows),
                reference::normalize(&expected),
                "{} disagrees with reference",
                backend.name()
            );
            assert!(got.exec_stats.cycles > 0);
        }
    }

    #[test]
    fn scan_filter_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("lineitem", &["l_orderkey", "l_extendedprice"])
            .filter(col("l_extendedprice").gt(lit_dec(5_000_000, 2)));
        check_against_reference(&plan, &db);
    }

    #[test]
    fn map_arithmetic_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("lineitem", &["l_extendedprice", "l_discount"]).map(vec![(
            "revenue",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )]);
        check_against_reference(&plan, &db);
    }

    #[test]
    fn join_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("orders", &["o_orderkey", "o_custkey"]).hash_join(
            PlanNode::scan("customer", &["c_custkey", "c_mktsegment"]),
            &["o_custkey"],
            &["c_custkey"],
            &["c_mktsegment"],
        );
        check_against_reference(&plan, &db);
    }

    #[test]
    fn group_by_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("lineitem", &["l_returnflag", "l_quantity", "l_orderkey"])
            .group_by(
                &["l_returnflag"],
                vec![
                    ("n", AggFunc::CountStar),
                    ("qty", AggFunc::Sum(col("l_quantity"))),
                    ("maxk", AggFunc::Max(col("l_orderkey"))),
                    ("avg_qty", AggFunc::Avg(col("l_quantity"))),
                ],
            );
        check_against_reference(&plan, &db);
    }

    #[test]
    fn sort_limit_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("orders", &["o_orderkey", "o_totalprice"])
            .sort(&[("o_totalprice", false), ("o_orderkey", true)], Some(7));
        let session = crate::Session::new(&db);
        let expected = reference::execute(&plan, &db).unwrap();
        let got = session.prepare(&plan).unwrap().execute().unwrap();
        // Order matters here (sorted output with a unique tiebreaker).
        assert_eq!(got.rows.len(), expected.len());
        for (g, e) in got.rows.iter().zip(&expected) {
            assert_eq!(
                g.iter().map(ToString::to_string).collect::<Vec<_>>(),
                e.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn string_predicates_match_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("customer", &["c_custkey", "c_mktsegment", "c_name"])
            .filter(col("c_mktsegment").eq(lit_str("BUILDING")))
            .filter(col("c_name").starts_with(lit_str("Customer#")));
        check_against_reference(&plan, &db);
    }

    #[test]
    fn multi_join_agg_sort_pipeline_matches_reference() {
        let db = qc_storage::gen_hlike(0.03);
        let plan = PlanNode::scan(
            "lineitem",
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
        )
        .hash_join(
            PlanNode::scan("supplier", &["s_suppkey", "s_nationkey"]),
            &["l_suppkey"],
            &["s_suppkey"],
            &["s_nationkey"],
        )
        .hash_join(
            PlanNode::scan("nation", &["n_nationkey", "n_name"]),
            &["s_nationkey"],
            &["n_nationkey"],
            &["n_name"],
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(&["n_name"], vec![("revenue", AggFunc::Sum(col("rev")))])
        .sort(&[("revenue", false), ("n_name", true)], None);
        check_against_reference(&plan, &db);
    }

    #[test]
    fn empty_result_is_ok() {
        let db = qc_storage::gen_hlike(0.02);
        let plan =
            PlanNode::scan("orders", &["o_orderkey"]).filter(col("o_orderkey").lt(lit_i64(-1)));
        let session = crate::Session::new(&db);
        let got = session.prepare(&plan).unwrap().execute().unwrap();
        assert!(got.rows.is_empty());
    }
}
