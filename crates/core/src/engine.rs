//! Query preparation, compilation, and morsel-wise execution.

use qc_backend::{Backend, BackendError, CompileStats, Executable};
use qc_codegen::{generate, GeneratedQuery};
use qc_plan::{CtxEntry, PhysicalPlan, PlanError, PlanNode, RowLayout, Source};
use qc_runtime::{RtString, RuntimeState, SqlValue};
use qc_storage::{ColumnType, Database};
use qc_target::{ExecStats, Trap};
use qc_timing::TimeTrace;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Error produced by engine operations.
#[derive(Debug)]
pub enum EngineError {
    /// Planning/decomposition failed.
    Plan(PlanError),
    /// A back-end rejected a module.
    Backend(BackendError),
    /// Execution trapped.
    Trap(Trap),
    /// A storage-layer invariant broke between planning and execution
    /// (e.g. a planned table is gone from the database).
    Storage(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Backend(e) => write!(f, "{e}"),
            EngineError::Trap(t) => write!(f, "execution trapped: {t}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}
impl From<BackendError> for EngineError {
    fn from(e: BackendError) -> Self {
        EngineError::Backend(e)
    }
}
impl From<Trap> for EngineError {
    fn from(t: Trap) -> Self {
        EngineError::Trap(t)
    }
}

/// A planned query: physical pipelines plus their generated IR.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Query name (used in module names).
    pub name: String,
    /// The pipeline decomposition.
    pub plan: PhysicalPlan,
    /// Generated IR, one module per pipeline.
    pub ir: GeneratedQuery,
}

impl PreparedQuery {
    /// Total IR instruction count across all pipelines (the adaptive
    /// compiler's code-size heuristic input).
    pub fn ir_size(&self) -> usize {
        self.ir
            .modules
            .iter()
            .flat_map(|m| m.functions())
            .map(qc_ir::Function::num_insts)
            .sum()
    }
}

/// A compiled query: one executable per pipeline.
pub struct CompiledQuery {
    /// Executables in pipeline order.
    pub executables: Vec<Box<dyn Executable>>,
    /// Wall-clock compile time (sum over pipelines).
    pub compile_time: Duration,
    /// Merged compile statistics.
    pub compile_stats: CompileStats,
    /// Name of the back-end used.
    pub backend_name: &'static str,
}

impl fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledQuery({} pipelines, {:?}, {})",
            self.executables.len(),
            self.compile_time,
            self.backend_name
        )
    }
}

/// Snapshot handed to an execution hook after each morsel (see
/// [`Engine::execute_with_hook`]).
#[derive(Debug, Clone, Copy)]
pub struct MorselEvent {
    /// Index of the pipeline currently running.
    pub pipeline: usize,
    /// Morsels completed so far across all pipelines.
    pub morsels_done: u64,
    /// Deterministic cycles consumed so far, accumulated across any
    /// earlier executable swaps.
    pub cycles_so_far: u64,
}

fn sum_exec_stats(executables: &[Box<dyn Executable>]) -> (u64, u64) {
    executables
        .iter()
        .map(|e| e.exec_stats())
        .fold((0, 0), |(c, i), s| (c + s.cycles, i + s.insts))
}

/// Result of executing a query.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Output rows.
    pub rows: Vec<Vec<SqlValue>>,
    /// Deterministic execution cost (cycles/instructions).
    pub exec_stats: ExecStats,
    /// Wall-clock compile time.
    pub compile_time: Duration,
    /// Merged compile statistics.
    pub compile_stats: CompileStats,
}

/// The execution engine over one database.
#[derive(Debug, Clone, Copy)]
pub struct Engine<'db> {
    db: &'db Database,
    /// Rows per morsel for base-table scans.
    pub morsel_size: usize,
}

impl<'db> Engine<'db> {
    /// Creates an engine over `db`.
    pub fn new(db: &'db Database) -> Self {
        Engine {
            db,
            morsel_size: 2048,
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// Plans a query and generates its IR.
    ///
    /// # Errors
    /// Returns [`EngineError::Plan`] for schema/type errors.
    pub fn prepare(&self, plan: &PlanNode, name: &str) -> Result<PreparedQuery, EngineError> {
        let catalog = |t: &str| {
            self.db
                .table(t)
                .map(|t| t.schema.iter().map(|(n, ty)| (n.to_string(), ty)).collect())
        };
        let phys = PhysicalPlan::decompose(plan, &catalog)?;
        let ir = generate(&phys, name);
        Ok(PreparedQuery {
            name: name.to_string(),
            plan: phys,
            ir,
        })
    }

    /// Compiles a prepared query with `backend`, measuring wall-clock time.
    ///
    /// # Errors
    /// Returns [`EngineError::Backend`] when a module is rejected.
    pub fn compile(
        &self,
        prepared: &PreparedQuery,
        backend: &dyn Backend,
        trace: &TimeTrace,
    ) -> Result<CompiledQuery, EngineError> {
        let start = Instant::now();
        let mut executables = Vec::with_capacity(prepared.ir.modules.len());
        let mut stats = CompileStats::default();
        for module in &prepared.ir.modules {
            let exe = backend.compile(module, trace)?;
            stats.merge(exe.compile_stats());
            executables.push(exe);
        }
        Ok(CompiledQuery {
            executables,
            compile_time: start.elapsed(),
            compile_stats: stats,
            backend_name: backend.name(),
        })
    }

    /// Executes a compiled query, returning decoded rows and cycle costs.
    ///
    /// # Errors
    /// Returns [`EngineError::Trap`] when generated code traps.
    pub fn execute(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_with_hook(prepared, compiled, &mut |_| None)
    }

    /// Executes a compiled query, consulting `hook` after every morsel.
    ///
    /// When the hook returns a replacement [`CompiledQuery`] (e.g. the
    /// optimizing tier finished compiling in the background), the swap
    /// happens at that morsel boundary: the *next* morsel — and every
    /// later pipeline — runs the replacement executables. Pipeline
    /// state lives in the runtime context block, not in module code, so
    /// a mid-pipeline swap is safe; `setup` is not re-run. Compile time
    /// and statistics of the replaced query are merged into the
    /// replacement so the returned totals cover both tiers, and
    /// execution cycles are accumulated across the swap.
    ///
    /// # Errors
    /// Returns [`EngineError::Trap`] when generated code traps.
    pub fn execute_with_hook(
        &self,
        prepared: &PreparedQuery,
        compiled: &mut CompiledQuery,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        let mut state = RuntimeState::new();
        let plan = &prepared.plan;

        // Build and fill the query context block.
        let mut ctx = vec![0u8; plan.ctx_size().max(8)];
        for entry in &plan.ctx {
            let off = plan.ctx_offset(entry) as usize;
            match entry {
                CtxEntry::ColumnBase { table, column } => {
                    let t = self.db.table(table).ok_or_else(|| {
                        EngineError::Storage(format!(
                            "table `{table}` vanished between planning and execution"
                        ))
                    })?;
                    let base = t
                        .try_column_by_name(column)
                        .ok_or_else(|| {
                            EngineError::Storage(format!(
                                "column `{column}` vanished from table `{table}`"
                            ))
                        })?
                        .base_addr();
                    ctx[off..off + 8].copy_from_slice(&base.to_le_bytes());
                }
                CtxEntry::StrConst(i) => {
                    let s = state.intern_string(&plan.str_literals[*i]);
                    ctx[off..off + 8].copy_from_slice(&s.lo.to_le_bytes());
                    ctx[off + 8..off + 16].copy_from_slice(&s.hi.to_le_bytes());
                }
                _ => {} // handles are written by generated setup functions
            }
        }
        let ctx_addr = ctx.as_ptr() as u64;

        // Executable swaps discard the replaced tier's counters, so
        // cycles are accumulated relative to a per-tier baseline.
        let mut acc = ExecStats::default();
        let (mut cycles_base, mut insts_base) = sum_exec_stats(&compiled.executables);
        let mut morsels_done = 0u64;

        for pipe_idx in 0..plan.pipelines.len() {
            let pipe = &plan.pipelines[pipe_idx];
            compiled.executables[pipe_idx].call(&mut state, "setup", &[ctx_addr])?;
            // Determine the scan range.
            let (total, morsel) = match &pipe.source {
                Source::Table { name, .. } => {
                    let rows = self
                        .db
                        .table(name)
                        .map(qc_storage::Table::row_count)
                        .ok_or_else(|| {
                            EngineError::Storage(format!(
                                "scan table `{name}` vanished between planning and execution"
                            ))
                        })?;
                    (rows as u64, self.morsel_size as u64)
                }
                Source::Buffer { buffer, limit, .. } => {
                    let off = plan.ctx_offset(buffer) as usize;
                    let handle = u64::from_le_bytes(ctx[off..off + 8].try_into().expect("8 bytes"));
                    let len = state.buffer(handle).len() as u64;
                    let len = match limit {
                        Some(l) => len.min(*l as u64),
                        None => len,
                    };
                    (len, len.max(1)) // buffer scans run as one morsel
                }
            };
            let mut start = 0u64;
            while start < total {
                let count = morsel.min(total - start);
                compiled.executables[pipe_idx].call(
                    &mut state,
                    "main",
                    &[ctx_addr, start, count],
                )?;
                start += count;
                morsels_done += 1;

                let (cycles_now, _) = sum_exec_stats(&compiled.executables);
                let event = MorselEvent {
                    pipeline: pipe_idx,
                    morsels_done,
                    cycles_so_far: acc.cycles + (cycles_now - cycles_base),
                };
                if let Some(mut replacement) = hook(&event) {
                    let (cyc, ins) = sum_exec_stats(&compiled.executables);
                    acc.cycles += cyc - cycles_base;
                    acc.insts += ins - insts_base;
                    replacement.compile_time += compiled.compile_time;
                    replacement.compile_stats.merge(&compiled.compile_stats);
                    *compiled = replacement;
                    let (cb, ib) = sum_exec_stats(&compiled.executables);
                    cycles_base = cb;
                    insts_base = ib;
                }
            }
            compiled.executables[pipe_idx].call(&mut state, "finish", &[ctx_addr])?;
        }

        // Decode the output buffer.
        let out_off = plan.ctx_offset(&CtxEntry::OutputBuf) as usize;
        let out_handle = u64::from_le_bytes(ctx[out_off..out_off + 8].try_into().expect("8 bytes"));
        let rows = decode_rows(&state, out_handle, &plan.output);

        let (cycles_after, insts_after) = sum_exec_stats(&compiled.executables);
        Ok(ExecutionResult {
            rows,
            exec_stats: ExecStats {
                cycles: acc.cycles + (cycles_after - cycles_base),
                insts: acc.insts + (insts_after - insts_base),
            },
            compile_time: compiled.compile_time,
            compile_stats: compiled.compile_stats.clone(),
        })
    }

    /// Prepares, compiles, and executes a plan in one call. Pass a
    /// [`TimeTrace`] to collect the per-phase compile-time breakdown,
    /// or `None` to skip tracing overhead.
    ///
    /// # Errors
    /// Propagates planning, compilation, and execution errors.
    pub fn run(
        &self,
        plan: &PlanNode,
        backend: &dyn Backend,
        trace: Option<&TimeTrace>,
    ) -> Result<ExecutionResult, EngineError> {
        let prepared = self.prepare(plan, "q")?;
        let disabled = TimeTrace::disabled();
        let trace = trace.unwrap_or(&disabled);
        let mut compiled = self.compile(&prepared, backend, trace)?;
        self.execute(&prepared, &mut compiled)
    }
}

fn decode_rows(state: &RuntimeState, buf: u64, layout: &RowLayout) -> Vec<Vec<SqlValue>> {
    let buffer = state.buffer(buf);
    let mut rows = Vec::with_capacity(buffer.len());
    for i in 0..buffer.len() {
        let bytes = buffer.row_bytes(i);
        let mut row = Vec::with_capacity(layout.fields.len());
        for f in &layout.fields {
            let off = f.offset as usize;
            let v = match f.ty {
                ColumnType::I32 | ColumnType::Date => {
                    let raw = i64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
                    SqlValue::I32(raw as i32)
                }
                ColumnType::I64 => SqlValue::I64(i64::from_le_bytes(
                    bytes[off..off + 8].try_into().expect("8 bytes"),
                )),
                ColumnType::Decimal(s) => {
                    let raw =
                        i128::from_le_bytes(bytes[off..off + 16].try_into().expect("16 bytes"));
                    SqlValue::Decimal(raw, s)
                }
                ColumnType::F64 => SqlValue::F64(f64::from_le_bytes(
                    bytes[off..off + 8].try_into().expect("8 bytes"),
                )),
                ColumnType::Bool => {
                    let raw = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
                    SqlValue::Bool(raw != 0)
                }
                ColumnType::Str => {
                    let s =
                        RtString::from_bytes(bytes[off..off + 16].try_into().expect("16 bytes"));
                    SqlValue::Str(String::from_utf8_lossy(s.as_slice()).into_owned())
                }
            };
            row.push(v);
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends;
    use qc_plan::reference;
    use qc_plan::{col, lit_dec, lit_i64, lit_str, AggFunc};

    fn check_against_reference(plan: &PlanNode, db: &Database) {
        let engine = Engine::new(db);
        let expected = reference::execute(plan, db).expect("reference execution");
        let all: Vec<Box<dyn qc_backend::Backend>> = vec![
            backends::interpreter(),
            backends::direct_emit(),
            backends::clift(qc_target::Isa::Tx64),
            backends::clift(qc_target::Isa::Ta64),
            backends::lvm_cheap(qc_target::Isa::Tx64),
            backends::lvm_opt(qc_target::Isa::Tx64),
            backends::lvm_cheap(qc_target::Isa::Ta64),
            backends::lvm_opt(qc_target::Isa::Ta64),
            backends::cgen(qc_target::Isa::Tx64),
            backends::cgen(qc_target::Isa::Ta64),
        ];
        for backend in all {
            let got = engine
                .run(plan, backend.as_ref(), None)
                .expect("engine execution");
            assert_eq!(
                reference::normalize(&got.rows),
                reference::normalize(&expected),
                "{} disagrees with reference",
                backend.name()
            );
            assert!(got.exec_stats.cycles > 0);
        }
    }

    #[test]
    fn scan_filter_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("lineitem", &["l_orderkey", "l_extendedprice"])
            .filter(col("l_extendedprice").gt(lit_dec(5_000_000, 2)));
        check_against_reference(&plan, &db);
    }

    #[test]
    fn map_arithmetic_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("lineitem", &["l_extendedprice", "l_discount"]).map(vec![(
            "revenue",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )]);
        check_against_reference(&plan, &db);
    }

    #[test]
    fn join_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("orders", &["o_orderkey", "o_custkey"]).hash_join(
            PlanNode::scan("customer", &["c_custkey", "c_mktsegment"]),
            &["o_custkey"],
            &["c_custkey"],
            &["c_mktsegment"],
        );
        check_against_reference(&plan, &db);
    }

    #[test]
    fn group_by_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("lineitem", &["l_returnflag", "l_quantity", "l_orderkey"])
            .group_by(
                &["l_returnflag"],
                vec![
                    ("n", AggFunc::CountStar),
                    ("qty", AggFunc::Sum(col("l_quantity"))),
                    ("maxk", AggFunc::Max(col("l_orderkey"))),
                    ("avg_qty", AggFunc::Avg(col("l_quantity"))),
                ],
            );
        check_against_reference(&plan, &db);
    }

    #[test]
    fn sort_limit_matches_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("orders", &["o_orderkey", "o_totalprice"])
            .sort(&[("o_totalprice", false), ("o_orderkey", true)], Some(7));
        let engine = Engine::new(&db);
        let expected = reference::execute(&plan, &db).unwrap();
        let backend = backends::interpreter();
        let got = engine.run(&plan, backend.as_ref(), None).unwrap();
        // Order matters here (sorted output with a unique tiebreaker).
        assert_eq!(got.rows.len(), expected.len());
        for (g, e) in got.rows.iter().zip(&expected) {
            assert_eq!(
                g.iter().map(ToString::to_string).collect::<Vec<_>>(),
                e.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn string_predicates_match_reference() {
        let db = qc_storage::gen_hlike(0.02);
        let plan = PlanNode::scan("customer", &["c_custkey", "c_mktsegment", "c_name"])
            .filter(col("c_mktsegment").eq(lit_str("BUILDING")))
            .filter(col("c_name").starts_with(lit_str("Customer#")));
        check_against_reference(&plan, &db);
    }

    #[test]
    fn multi_join_agg_sort_pipeline_matches_reference() {
        let db = qc_storage::gen_hlike(0.03);
        let plan = PlanNode::scan(
            "lineitem",
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
        )
        .hash_join(
            PlanNode::scan("supplier", &["s_suppkey", "s_nationkey"]),
            &["l_suppkey"],
            &["s_suppkey"],
            &["s_nationkey"],
        )
        .hash_join(
            PlanNode::scan("nation", &["n_nationkey", "n_name"]),
            &["s_nationkey"],
            &["n_nationkey"],
            &["n_name"],
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(&["n_name"], vec![("revenue", AggFunc::Sum(col("rev")))])
        .sort(&[("revenue", false), ("n_name", true)], None);
        check_against_reference(&plan, &db);
    }

    #[test]
    fn empty_result_is_ok() {
        let db = qc_storage::gen_hlike(0.02);
        let plan =
            PlanNode::scan("orders", &["o_orderkey"]).filter(col("o_orderkey").lt(lit_i64(-1)));
        let engine = Engine::new(&db);
        let backend = backends::interpreter();
        let got = engine.run(&plan, backend.as_ref(), None).unwrap();
        assert!(got.rows.is_empty());
    }
}
