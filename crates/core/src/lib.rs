//! The query-compilation engine: plan → IR → back-end → execution.
//!
//! This is the reproduction's equivalent of Umbra's execution layer
//! (paper Sec. III): queries are decomposed into pipelines, each pipeline
//! compiled as its own module by a pluggable [`qc_backend::Backend`], and executed
//! morsel-wise. Wall-clock compile time is measured around back-end
//! compilation (the paper's primary metric); execution is accounted in
//! deterministic cycles.
//!
//! # Example
//!
//! ```
//! use qc_engine::Session;
//! use qc_plan::{col, lit_i64, PlanNode};
//!
//! let db = qc_storage::gen_hlike(0.02);
//! let session = Session::new(&db);
//! let plan = PlanNode::scan("orders", &["o_orderkey", "o_custkey"])
//!     .filter(col("o_custkey").lt(lit_i64(5)));
//! let result = session.prepare(&plan).unwrap().execute().unwrap();
//! assert!(!result.rows.is_empty());
//! ```

// The engine sits above panicky layers and owns the fault-tolerance
// story (catch_unwind isolation, budgets, fallback chain); a stray
// `.unwrap()` here would undo it, so the lint is a hard error outside
// tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod adaptive;
mod artifact_store;
mod compile_service;
mod engine;
mod fallback;
// The serving path proper additionally bans non-test `.expect()`: these
// two modules sit inside the execution fault envelope, where a stray
// expect would turn a contained per-query fault into a process abort.
#[cfg_attr(not(test), deny(clippy::expect_used))]
mod morsel_exec;
#[cfg_attr(not(test), deny(clippy::expect_used))]
mod scheduler;
mod session;

pub use adaptive::{AdaptiveExecution, AdaptiveOutcome, BackgroundReport};
pub use artifact_store::{ArtifactKey, ArtifactStore, ArtifactStoreConfig, ArtifactStoreCounters};
pub use compile_service::{
    CacheCounters, CompileBudget, CompileRequest, CompileService, CompileServiceConfig,
    FaultCounters, PendingCompile,
};
pub use engine::{
    CancelToken, CompiledQuery, Engine, EngineConfig, EngineError, ExecutionResult, MorselEvent,
    PreparedQuery, QueryBudget,
};
pub use fallback::{FallbackChain, FallbackReport, TierFailure};
pub use morsel_exec::{ExecTally, MorselExecConfig, MorselExecutor, MorselSchedule};
pub use scheduler::{
    BreakerPolicy, OutcomeStatus, QueryOutcome, QueryScheduler, RunawayPolicy, SchedulerConfig,
    ServeReport, SessionRequest, ShedPolicy,
};
pub use session::{PreparedStatement, QueryRun, Session, SessionConfig, StatementCacheStats};

/// Constructors for all back-ends, used by examples and the bench harness.
pub mod backends {
    use qc_backend::Backend;
    use qc_target::Isa;

    /// The bytecode interpreter.
    pub fn interpreter() -> Box<dyn Backend> {
        Box::new(qc_interp::InterpBackend::new())
    }

    /// DirectEmit: the single-pass compiler (TX64 only).
    pub fn direct_emit() -> Box<dyn Backend> {
        Box::new(qc_direct::DirectBackend::new())
    }

    /// The Cranelift-analog fast compiler.
    pub fn clift(isa: Isa) -> Box<dyn Backend> {
        Box::new(qc_clift::CliftBackend::new(isa))
    }

    /// The Cranelift-analog with configurable extension instructions
    /// (Table II ablation).
    pub fn clift_with(isa: Isa, ext: qc_clift::CliftExtensions) -> Box<dyn Backend> {
        Box::new(qc_clift::CliftBackend::with_extensions(isa, ext))
    }

    /// The LLVM-analog in cheap mode (-O0 + FastISel).
    pub fn lvm_cheap(isa: Isa) -> Box<dyn Backend> {
        Box::new(qc_lvm::LvmBackend::new(isa, qc_lvm::OptMode::Cheap))
    }

    /// The LLVM-analog in optimized mode (-O2 + SelectionDAG).
    pub fn lvm_opt(isa: Isa) -> Box<dyn Backend> {
        Box::new(qc_lvm::LvmBackend::new(isa, qc_lvm::OptMode::Optimized))
    }

    /// The LLVM-analog with full option control (GlobalISel, pair
    /// representation, TargetMachine caching ablations).
    pub fn lvm_with(options: qc_lvm::LvmOptions) -> Box<dyn Backend> {
        Box::new(qc_lvm::LvmBackend::with_options(options))
    }

    /// The GCC/C-analog back-end (C source → minicc → minias → minild).
    pub fn cgen(isa: Isa) -> Box<dyn Backend> {
        Box::new(qc_cgen::CgenBackend::new(isa))
    }

    /// All back-ends available for an ISA, in the paper's Table III order.
    pub fn all_for(isa: Isa) -> Vec<Box<dyn Backend>> {
        let mut v: Vec<Box<dyn Backend>> = vec![interpreter()];
        if isa == Isa::Tx64 {
            v.push(direct_emit());
        }
        v.push(clift(isa));
        v.push(lvm_cheap(isa));
        v.push(lvm_opt(isa));
        v.push(cgen(isa));
        v
    }
}
