//! Persistent, content-addressed artifact store: the disk tier (L2)
//! below the in-memory LRU code cache (L1).
//!
//! The in-memory cache dies with the process, so a fleet re-pays every
//! cold compile after every deploy. This store keeps *unlinked*
//! [`CodeArtifact`]s on disk, keyed by the structural IR hash of the
//! module plus the back-end/ISA/config fingerprint — the same key the
//! LRU uses, so a warm restart (fresh process, populated directory)
//! skips parse/plan/codegen for every previously seen query shape and
//! pays only the link/unwind-registration step.
//!
//! # On-disk format
//!
//! One file per artifact, `qca-<keyhash>-<modulehash>.qca`:
//!
//! ```text
//! magic   b"QCAS"
//! version u32 LE            (STORE_FORMAT_VERSION)
//! key     module_hash u64, config u64, backend str, isa str
//! payload len u64, fnv1a-64 checksum u64, bytes
//! ```
//!
//! Strings are length-prefixed (u64 LE). The payload is
//! [`CodeArtifact::serialize`] output ([`NativeArtifact`]'s unlinked
//! image plus compile stats).
//!
//! # Failure policy
//!
//! The store **never** fails a compile:
//!
//! * writes go to a process/sequence-unique temp file in the same
//!   directory and are published with an atomic `rename`, so readers
//!   (including other processes sharing the directory) can never
//!   observe a torn file;
//! * loads verify magic, version, the full key, and the payload
//!   checksum; any mismatch counts as a *corrupt rejection*, the file
//!   is removed best-effort, and the caller recompiles through the
//!   normal path (the fallback chain and fault counters already model
//!   this);
//! * an unwritable or uncreatable directory degrades the store to
//!   pass-through: loads count misses, stores are no-ops, and no error
//!   reaches the query path.

use parking_lot::Mutex;
use qc_backend::{CodeArtifact, NativeArtifact};
use qc_ir::fnv1a_64;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: [u8; 4] = *b"QCAS";

/// Version of the artifact-file envelope; bumped on incompatible
/// changes so stale files are rejected (and cleaned up) instead of
/// misparsed.
const STORE_FORMAT_VERSION: u32 = 1;

/// Identity of a reusable piece of machine code: what must match for a
/// stored artifact to be valid for a compile request. Mirrors the
/// in-memory cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Structural IR hash of the module (`qc_ir::module_structural_hash`).
    pub module_hash: u64,
    /// Back-end name (`Backend::name`).
    pub backend: &'static str,
    /// Target ISA name (`Isa::name`).
    pub isa: &'static str,
    /// Back-end configuration fingerprint (`Backend::config_fingerprint`).
    pub config: u64,
}

impl ArtifactKey {
    /// Hash of the non-module key fields, used in the file name so two
    /// back-ends compiling the same module never share a file.
    fn key_hash(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.backend.len() + self.isa.len() + 16);
        bytes.extend_from_slice(&(self.backend.len() as u64).to_le_bytes());
        bytes.extend_from_slice(self.backend.as_bytes());
        bytes.extend_from_slice(&(self.isa.len() as u64).to_le_bytes());
        bytes.extend_from_slice(self.isa.as_bytes());
        bytes.extend_from_slice(&self.config.to_le_bytes());
        fnv1a_64(&bytes)
    }

    /// File name of this key's artifact within the store directory.
    fn file_name(&self) -> String {
        format!("qca-{:016x}-{:016x}.qca", self.key_hash(), self.module_hash)
    }
}

/// Configuration of an [`ArtifactStore`].
#[derive(Debug, Clone)]
pub struct ArtifactStoreConfig {
    /// Directory holding the artifact files (created if missing). All
    /// schedulers/services of a fleet node point at the same directory.
    pub dir: PathBuf,
    /// Size budget for the directory; exceeding it evicts the
    /// least-recently-modified artifacts after each write. `None`
    /// disables eviction.
    pub max_bytes: Option<u64>,
}

impl ArtifactStoreConfig {
    /// Store under `dir` with no size budget.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ArtifactStoreConfig {
            dir: dir.into(),
            max_bytes: None,
        }
    }

    /// Sets the directory size budget.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }
}

/// Counter snapshot of an [`ArtifactStore`], taken with
/// [`ArtifactStore::counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactStoreCounters {
    /// Loads that returned a verified artifact.
    pub hits: u64,
    /// Loads that found no (usable) file, including loads against a
    /// disabled store.
    pub misses: u64,
    /// Artifacts written (published via rename).
    pub writes: u64,
    /// Files rejected by magic/version/key/checksum verification and
    /// removed.
    pub corrupt_rejected: u64,
    /// Files evicted to respect the size budget.
    pub evictions: u64,
}

/// Disk-backed content-addressed artifact store. See the module docs.
pub struct ArtifactStore {
    dir: PathBuf,
    max_bytes: Option<u64>,
    /// Why the store is pass-through, when it is.
    disabled: Option<String>,
    /// Serializes budget-eviction scans within this process.
    evict_lock: Mutex<()>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ArtifactStore({}, {:?})",
            self.dir.display(),
            self.counters()
        )
    }
}

impl ArtifactStore {
    /// Opens (creating if needed) the store at `config.dir`.
    ///
    /// Never fails: when the directory cannot be created or is not
    /// writable, the store opens in pass-through mode — loads miss,
    /// stores no-op — and [`ArtifactStore::disabled_reason`] says why.
    pub fn open(config: ArtifactStoreConfig) -> ArtifactStore {
        let disabled = Self::probe(&config.dir).err();
        ArtifactStore {
            dir: config.dir,
            max_bytes: config.max_bytes,
            disabled,
            evict_lock: Mutex::new(()),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Creates the directory and proves it writable with a probe file.
    fn probe(dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let probe = dir.join(format!(".qc-probe-{}", std::process::id()));
        fs::write(&probe, b"probe").map_err(|e| format!("{} not writable: {e}", dir.display()))?;
        let _ = fs::remove_file(&probe);
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether the store persists anything (false in pass-through mode).
    pub fn is_enabled(&self) -> bool {
        self.disabled.is_none()
    }

    /// Why the store degraded to pass-through, if it did.
    pub fn disabled_reason(&self) -> Option<&str> {
        self.disabled.as_deref()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> ArtifactStoreCounters {
        ArtifactStoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt_rejected: self.corrupt.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Loads and verifies the artifact stored under `key`, or `None`
    /// on a miss. A file failing verification is counted, removed
    /// best-effort, and reported as a miss — the caller recompiles.
    pub fn load(&self, key: &ArtifactKey) -> Option<Arc<dyn CodeArtifact>> {
        if self.disabled.is_some() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.dir.join(key.file_name());
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_file(&bytes, Some(key)) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(artifact))
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `artifact` under `key` (atomic temp-file + rename),
    /// then enforces the size budget. No-ops — silently, by design —
    /// when the store is pass-through or the artifact kind does not
    /// serialize (e.g. interpreter bytecode).
    pub fn store(&self, key: &ArtifactKey, artifact: &dyn CodeArtifact) {
        if self.disabled.is_some() {
            return;
        }
        let Some(payload) = artifact.serialize() else {
            return;
        };
        let bytes = encode_file(key, &payload);
        let tmp = self.dir.join(format!(
            ".qca-tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, &bytes).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        let path = self.dir.join(key.file_name());
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget();
    }

    /// Evicts least-recently-modified artifacts until the directory
    /// fits the budget. Within-process scans are serialized; across
    /// processes eviction is racy but safe (a vanished file is just a
    /// future miss).
    fn enforce_budget(&self) {
        let Some(budget) = self.max_bytes else { return };
        let _guard = self.evict_lock.lock();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(PathBuf, u64, std::time::SystemTime)> = entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "qca"))
            .filter_map(|e| {
                let md = e.metadata().ok()?;
                Some((e.path(), md.len(), md.modified().ok()?))
            })
            .collect();
        let mut total: u64 = files.iter().map(|f| f.1).sum();
        if total <= budget {
            return;
        }
        files.sort_by_key(|f| f.2);
        for (path, len, _) in files {
            if total <= budget {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Offline integrity scan: parses and checksums every artifact file
    /// in the directory, returning `(intact, corrupt)` counts without
    /// mutating anything. Used by tests and the warm-restart harness to
    /// prove concurrent writers never publish torn files.
    pub fn fsck(&self) -> (usize, usize) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        let (mut intact, mut corrupt) = (0, 0);
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "qca") {
                continue;
            }
            match fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| decode_file(&bytes, None))
            {
                Ok(_) => intact += 1,
                Err(_) => corrupt += 1,
            }
        }
        (intact, corrupt)
    }
}

/// Builds one artifact file: envelope (magic, version, key) + checksummed
/// payload.
fn encode_file(key: &ArtifactKey, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    let push_str = |out: &mut Vec<u8>, s: &str| {
        push_u64(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    };
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    push_u64(&mut out, key.module_hash);
    push_u64(&mut out, key.config);
    push_str(&mut out, key.backend);
    push_str(&mut out, key.isa);
    push_u64(&mut out, payload.len() as u64);
    push_u64(&mut out, fnv1a_64(payload));
    out.extend_from_slice(payload);
    out
}

/// Verifies and decodes one artifact file. With `expect_key`, the
/// embedded key must match exactly (a file-name hash collision or a
/// renamed file is treated as corrupt rather than served).
fn decode_file(bytes: &[u8], expect_key: Option<&ArtifactKey>) -> Result<NativeArtifact, String> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| "truncated".to_string())?;
        let s = &bytes[*at..end];
        *at = end;
        Ok(s)
    };
    let take_u64 = |at: &mut usize| -> Result<u64, String> {
        Ok(u64::from_le_bytes(take(at, 8)?.try_into().expect("8")))
    };
    if take(&mut at, 4)? != MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4"));
    if version != STORE_FORMAT_VERSION {
        return Err(format!("unsupported store version {version}"));
    }
    let module_hash = take_u64(&mut at)?;
    let config = take_u64(&mut at)?;
    let backend_len = take_u64(&mut at)? as usize;
    let backend = String::from_utf8(take(&mut at, backend_len)?.to_vec())
        .map_err(|_| "non-UTF-8 backend name".to_string())?;
    let isa_len = take_u64(&mut at)? as usize;
    let isa = String::from_utf8(take(&mut at, isa_len)?.to_vec())
        .map_err(|_| "non-UTF-8 ISA name".to_string())?;
    if let Some(key) = expect_key {
        if module_hash != key.module_hash
            || config != key.config
            || backend != key.backend
            || isa != key.isa
        {
            return Err("key mismatch".into());
        }
    }
    let payload_len = usize::try_from(take_u64(&mut at)?).map_err(|_| "oversized".to_string())?;
    let checksum = take_u64(&mut at)?;
    let payload = take(&mut at, payload_len)?;
    if at != bytes.len() {
        return Err("trailing bytes".into());
    }
    if fnv1a_64(payload) != checksum {
        return Err("checksum mismatch".into());
    }
    NativeArtifact::deserialize(payload).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_backend::CompileStats;
    use qc_target::{ImageBuilder, Isa, Tx64Assembler};

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qc-store-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifact() -> NativeArtifact {
        let mut asm = Tx64Assembler::new();
        asm.ret();
        let (code, relocs) = asm.finish();
        let mut ib = ImageBuilder::new(Isa::Tx64);
        ib.add_function("f", code, relocs);
        NativeArtifact::new(ib, CompileStats::default())
    }

    fn key(h: u64) -> ArtifactKey {
        ArtifactKey {
            module_hash: h,
            backend: "TestBackend",
            isa: "TX64",
            config: 7,
        }
    }

    #[test]
    fn store_then_load_roundtrip() {
        let store = ArtifactStore::open(ArtifactStoreConfig::at(unique_dir("roundtrip")));
        assert!(store.is_enabled());
        assert!(store.load(&key(1)).is_none());
        store.store(&key(1), &sample_artifact());
        let got = store.load(&key(1)).expect("hit after store");
        got.instantiate().expect("instantiate");
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.writes), (1, 1, 1));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let dir = unique_dir("keymismatch");
        let store = ArtifactStore::open(ArtifactStoreConfig::at(dir.clone()));
        store.store(&key(1), &sample_artifact());
        // Rename the file onto a different key's slot: the embedded key
        // no longer matches and the load must reject it.
        let from = dir.join(key(1).file_name());
        let to = dir.join(key(2).file_name());
        fs::rename(from, to).expect("rename");
        assert!(store.load(&key(2)).is_none());
        assert_eq!(store.counters().corrupt_rejected, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unwritable_dir_degrades_to_passthrough() {
        // A plain file in place of the directory: create_dir_all fails.
        let path = std::env::temp_dir().join(format!("qc-store-file-{}", std::process::id()));
        fs::write(&path, b"not a directory").expect("file");
        let store = ArtifactStore::open(ArtifactStoreConfig::at(path.clone()));
        assert!(!store.is_enabled());
        assert!(store.disabled_reason().is_some());
        store.store(&key(1), &sample_artifact());
        assert!(store.load(&key(1)).is_none());
        let c = store.counters();
        assert_eq!((c.misses, c.writes), (1, 0));
        let _ = fs::remove_file(&path);
    }
}
