//! The prepared-statement session: one façade over preparation,
//! compilation, caching, and execution.
//!
//! A [`Session`] owns the pieces a serving process keeps alive between
//! queries — the [`CompileService`] with its two-tier artifact cache,
//! a prepared-statement cache keyed by canonical plan text, and a
//! default back-end — and exposes one builder-style entry point:
//!
//! ```
//! use qc_engine::Session;
//! use qc_plan::{col, lit_i64, PlanNode};
//!
//! let db = qc_storage::gen_hlike(0.02);
//! let session = Session::new(&db);
//! let plan = PlanNode::scan("orders", &["o_orderkey", "o_custkey"])
//!     .filter(col("o_custkey").lt(lit_i64(5)));
//! let result = session.prepare(&plan).unwrap().workers(1).execute().unwrap();
//! assert!(!result.rows.is_empty());
//! ```
//!
//! Statements are keyed by [`PlanNode::canonical_text`] — the engine's
//! stand-in for SQL text — so re-preparing the same plan skips
//! planning and IR generation entirely. A [`PreparedStatement`] is a
//! cheap clonable handle (`String` + `Arc`) with no borrow of the
//! session or database: it survives across [`Engine`] instances, and
//! [`Session::reopen`] carries the whole statement cache, compile
//! service, and persistent artifact store over to a new database
//! snapshot, so a reopened session re-runs its statements in roughly
//! link time.

use crate::artifact_store::ArtifactStoreConfig;
use crate::compile_service::{CompileBudget, CompileService, CompileServiceConfig};
use crate::engine::{
    CompiledQuery, Engine, EngineConfig, EngineError, ExecutionResult, MorselEvent, PreparedQuery,
    QueryBudget,
};
use crate::morsel_exec::{MorselExecConfig, MorselExecutor, MorselSchedule};
use crate::ArtifactStore;
use parking_lot::Mutex;
use qc_backend::Backend;
use qc_plan::PlanNode;
use qc_storage::Database;
use qc_timing::TimeTrace;
use std::collections::HashMap;
use std::sync::Arc;

/// Module name used for all session-prepared statements. The code
/// cache keys on the *structural* IR hash, which excludes module names
/// (and generated function names are fixed per pipeline role), so a
/// constant name costs nothing and keeps cache keys stable across
/// sessions and processes.
const STATEMENT_NAME: &str = "q";

/// Counters of the prepared-statement cache, taken with
/// [`Session::statement_cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatementCacheStats {
    /// Lookups answered from the cache (planning + codegen skipped).
    pub hits: u64,
    /// Lookups that had to plan and generate IR.
    pub misses: u64,
    /// Statements displaced to respect the capacity bound.
    pub evictions: u64,
    /// Statements currently resident.
    pub entries: usize,
}

struct StmtEntry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

struct StatementCacheInner {
    map: HashMap<String, StmtEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Bounded LRU of prepared statements keyed by canonical plan text.
/// Shared (behind `Arc`) between a session, its reopened descendants,
/// and any scheduler serving on top of it.
pub(crate) struct StatementCache {
    inner: Mutex<StatementCacheInner>,
    capacity: usize,
}

impl StatementCache {
    pub(crate) fn new(capacity: usize) -> Self {
        StatementCache {
            inner: Mutex::new(StatementCacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity,
        }
    }

    /// Returns the cached statement for `plan`, preparing and caching
    /// it on a miss. `capacity == 0` degrades to pass-through: every
    /// call prepares, nothing is retained, the miss is still counted.
    pub(crate) fn get_or_prepare(
        &self,
        engine: &Engine<'_>,
        plan: &PlanNode,
    ) -> Result<PreparedStatement, EngineError> {
        let text = plan.canonical_text();
        if self.capacity > 0 {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&text) {
                entry.last_used = tick;
                let prepared = Arc::clone(&entry.prepared);
                inner.hits += 1;
                return Ok(PreparedStatement { text, prepared });
            }
        }
        // Prepare outside the lock: planning + codegen can be slow, and
        // a concurrent duplicate prepare is harmless (first insert wins).
        let prepared = Arc::new(engine.prepare_internal(plan, STATEMENT_NAME)?);
        let mut inner = self.inner.lock();
        inner.misses += 1;
        if self.capacity == 0 {
            return Ok(PreparedStatement { text, prepared });
        }
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&text) {
            if inner.map.len() >= self.capacity {
                if let Some(victim) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    inner.map.remove(&victim);
                    inner.evictions += 1;
                }
            }
            inner.map.insert(
                text.clone(),
                StmtEntry {
                    prepared: Arc::clone(&prepared),
                    last_used: tick,
                },
            );
        }
        Ok(PreparedStatement { text, prepared })
    }

    pub(crate) fn stats(&self) -> StatementCacheStats {
        let inner = self.inner.lock();
        StatementCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

/// A prepared statement: canonical plan text plus the planned and
/// IR-generated query. Cheap to clone (`String` + `Arc`), `'static`,
/// and independent of any [`Engine`] borrow — a statement prepared in
/// one session can be executed by a [`Session::reopen`]ed one over a
/// fresh [`Database`] snapshot.
#[derive(Clone)]
pub struct PreparedStatement {
    text: String,
    pub(crate) prepared: Arc<PreparedQuery>,
}

impl PreparedStatement {
    /// The canonical plan text this statement was cached under.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The planned pipelines and generated IR.
    pub fn query(&self) -> &PreparedQuery {
        &self.prepared
    }

    /// Total IR instruction count (the tiering heuristic input).
    pub fn ir_size(&self) -> usize {
        self.prepared.ir_size()
    }
}

impl std::fmt::Debug for PreparedStatement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PreparedStatement({} pipelines, {:?})",
            self.prepared.plan.pipelines.len(),
            self.text
        )
    }
}

/// Configuration of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Execution-side knobs (morsel size).
    pub engine: EngineConfig,
    /// Compilation-service knobs (workers, in-memory cache capacity,
    /// default budget).
    pub compile: CompileServiceConfig,
    /// Persistent artifact store (L2) under the in-memory code cache.
    /// `None` keeps compilation purely in-memory; `Some` makes compiled
    /// code survive process restarts. An unusable directory degrades to
    /// pass-through rather than failing the session.
    pub artifact_store: Option<ArtifactStoreConfig>,
    /// Prepared statements retained; 0 disables statement caching.
    pub statement_cache_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            engine: EngineConfig::default(),
            compile: CompileServiceConfig::default(),
            artifact_store: None,
            statement_cache_capacity: 64,
        }
    }
}

impl SessionConfig {
    /// Default configuration plus a persistent artifact store.
    pub fn with_artifact_store(store: ArtifactStoreConfig) -> Self {
        SessionConfig {
            artifact_store: Some(store),
            ..Default::default()
        }
    }
}

/// A query session over one database: the prepared-statement API.
///
/// Construction order of the run builder:
/// `session.prepare(&plan)?.backend(b).workers(4).execute()`.
/// See the module docs for the full picture.
pub struct Session<'db> {
    engine: Engine<'db>,
    service: Arc<CompileService>,
    statements: Arc<StatementCache>,
    default_backend: Arc<dyn Backend>,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Session({:?}, default {}, {:?})",
            self.engine,
            self.default_backend.name(),
            self.statements.stats()
        )
    }
}

impl<'db> Session<'db> {
    /// Creates a session over `db` with default configuration: no
    /// persistent store, interpreter as the default back-end.
    pub fn new(db: &'db Database) -> Self {
        Session::with_config(db, SessionConfig::default())
    }

    /// Creates a session over `db` with explicit configuration. Opening
    /// never fails: an unusable artifact-store directory degrades the
    /// store to pass-through (visible via
    /// [`ArtifactStore::disabled_reason`]).
    pub fn with_config(db: &'db Database, config: SessionConfig) -> Self {
        let store = config
            .artifact_store
            .map(|c| Arc::new(ArtifactStore::open(c)));
        let service = Arc::new(CompileService::with_store(config.compile, store));
        Session {
            engine: Engine::with_config(db, config.engine),
            service,
            statements: Arc::new(StatementCache::new(config.statement_cache_capacity)),
            default_backend: Arc::from(crate::backends::interpreter()),
        }
    }

    /// Replaces the default back-end used by runs that do not pick one
    /// explicitly.
    #[must_use]
    pub fn default_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.default_backend = backend;
        self
    }

    /// Reopens the session over another database snapshot, carrying the
    /// compile service (and its persistent store), the statement cache,
    /// and the default back-end over — prepared statements and compiled
    /// code survive; only the execution engine is rebound.
    pub fn reopen<'b>(&self, db: &'b Database) -> Session<'b> {
        Session {
            engine: Engine::with_config(
                db,
                EngineConfig {
                    morsel_size: self.engine.morsel_size(),
                },
            ),
            service: Arc::clone(&self.service),
            statements: Arc::clone(&self.statements),
            default_backend: Arc::clone(&self.default_backend),
        }
    }

    /// The execution engine bound to this session's database.
    pub fn engine(&self) -> &Engine<'db> {
        &self.engine
    }

    /// The compilation service (worker pool, code cache, fault layer).
    pub fn compile_service(&self) -> &Arc<CompileService> {
        &self.service
    }

    /// Counters of the prepared-statement cache.
    pub fn statement_cache_stats(&self) -> StatementCacheStats {
        self.statements.stats()
    }

    /// The shared statement cache, for schedulers serving on top of
    /// this session.
    pub(crate) fn statements(&self) -> &Arc<StatementCache> {
        &self.statements
    }

    /// Plans `plan` (or returns the cached statement for it) without
    /// building a run.
    ///
    /// # Errors
    /// Returns [`EngineError::Plan`] for schema/type errors.
    pub fn statement(&self, plan: &PlanNode) -> Result<PreparedStatement, EngineError> {
        self.statements.get_or_prepare(&self.engine, plan)
    }

    /// Builds a run of an already prepared statement — including one
    /// prepared by an earlier session incarnation (see
    /// [`Session::reopen`]).
    pub fn run(&self, statement: PreparedStatement) -> QueryRun<'_, 'db> {
        QueryRun {
            session: self,
            statement,
            backend: None,
            trace: None,
            workers: 1,
            schedule: MorselSchedule::Stealing,
            budget: None,
            query_budget: None,
            direct: false,
        }
    }

    /// Plans `plan` (consulting the statement cache) and builds a run:
    /// `session.prepare(&plan)?.backend(b).workers(4).execute()`.
    ///
    /// # Errors
    /// Returns [`EngineError::Plan`] for schema/type errors.
    pub fn prepare(&self, plan: &PlanNode) -> Result<QueryRun<'_, 'db>, EngineError> {
        Ok(self.run(self.statement(plan)?))
    }
}

/// A builder-style query run over a [`Session`], created by
/// [`Session::prepare`] or [`Session::run`]. Defaults: the session's
/// default back-end, no trace, single-threaded execution, the compile
/// service's default budget.
pub struct QueryRun<'s, 'db> {
    session: &'s Session<'db>,
    statement: PreparedStatement,
    backend: Option<Arc<dyn Backend>>,
    trace: Option<&'s TimeTrace>,
    workers: usize,
    schedule: MorselSchedule,
    budget: Option<CompileBudget>,
    query_budget: Option<QueryBudget>,
    direct: bool,
}

impl<'s, 'db> QueryRun<'s, 'db> {
    /// Compiles with `backend` instead of the session default.
    #[must_use]
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Collects the per-phase compile-time breakdown into `trace`.
    #[must_use]
    pub fn trace(mut self, trace: &'s TimeTrace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Executes morsel-parallel with `workers` threads (`0` and `1`
    /// both mean the exact serial path).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Morsel claim discipline for parallel execution.
    #[must_use]
    pub fn schedule(mut self, schedule: MorselSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the compile service's default [`CompileBudget`].
    #[must_use]
    pub fn budget(mut self, budget: CompileBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Bounds *execution* with a [`QueryBudget`]: wall-clock deadline,
    /// model-cycle cap, result-row cap, and/or a cancellation token,
    /// each checked at every morsel claim.
    #[must_use]
    pub fn query_budget(mut self, budget: QueryBudget) -> Self {
        self.query_budget = Some(budget);
        self
    }

    /// Compiles directly on the calling thread, bypassing the compile
    /// service — no worker fan-out, no code cache, no persistent store,
    /// no fault envelope. This is the measurement path: benchmarks use
    /// it so every iteration pays the full, uncached compile and traced
    /// compiles keep the link phase inside the trace.
    #[must_use]
    pub fn direct(mut self) -> Self {
        self.direct = true;
        self
    }

    /// The statement this run executes.
    pub fn statement(&self) -> &PreparedStatement {
        &self.statement
    }

    /// Compiles the statement without executing it.
    ///
    /// # Errors
    /// Returns [`EngineError::Backend`] when a module is rejected.
    pub fn compile(&self) -> Result<CompiledQuery, EngineError> {
        let backend = self
            .backend
            .clone()
            .unwrap_or_else(|| Arc::clone(&self.session.default_backend));
        if self.direct {
            let disabled;
            let trace = match self.trace {
                Some(t) => t,
                None => {
                    disabled = TimeTrace::disabled();
                    &disabled
                }
            };
            return self.session.engine.compile_internal(
                self.statement.query(),
                backend.as_ref(),
                trace,
            );
        }
        let mut request = self
            .session
            .service
            .request(self.statement.query(), &backend);
        if let Some(trace) = self.trace {
            request = request.trace(trace);
        }
        if let Some(budget) = self.budget {
            request = request.budget(budget);
        }
        Ok(request.submit().wait()?)
    }

    /// Compiles and executes the statement.
    ///
    /// # Errors
    /// Propagates compilation and execution errors.
    pub fn execute(&self) -> Result<ExecutionResult, EngineError> {
        let mut compiled = self.compile()?;
        self.execute_compiled(&mut compiled)
    }

    /// Executes an already compiled query (e.g. one compiled by an
    /// earlier run of the same statement).
    ///
    /// # Errors
    /// Returns [`EngineError::Trap`] when generated code traps.
    pub fn execute_compiled(
        &self,
        compiled: &mut CompiledQuery,
    ) -> Result<ExecutionResult, EngineError> {
        self.execute_compiled_with_hook(compiled, &mut |_| None)
    }

    /// Executes an already compiled query, consulting `hook` after
    /// every morsel; a replacement returned by the hook is swapped in
    /// at that morsel boundary with compile time and statistics merged
    /// (the adaptive tier-up contract).
    ///
    /// # Errors
    /// Returns [`EngineError::Trap`] when generated code traps.
    pub fn execute_compiled_with_hook(
        &self,
        compiled: &mut CompiledQuery,
        hook: &mut dyn FnMut(&MorselEvent) -> Option<CompiledQuery>,
    ) -> Result<ExecutionResult, EngineError> {
        let exec = MorselExecutor::new(MorselExecConfig {
            workers: self.workers,
            schedule: self.schedule,
        });
        let budget = self.query_budget.clone().unwrap_or_default();
        exec.execute_budgeted(
            &self.session.engine,
            self.statement.query(),
            compiled,
            &budget,
            hook,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_plan::{col, lit_i64};

    fn plan_a() -> PlanNode {
        PlanNode::scan("orders", &["o_orderkey", "o_custkey"])
            .filter(col("o_custkey").lt(lit_i64(100)))
    }

    #[test]
    fn statement_cache_hits_on_identical_plans() {
        let db = qc_storage::gen_hlike(0.02);
        let session = Session::new(&db);
        let s1 = session.statement(&plan_a()).expect("prepare");
        let s2 = session.statement(&plan_a()).expect("prepare");
        assert!(Arc::ptr_eq(&s1.prepared, &s2.prepared));
        let stats = session.statement_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_plans_get_distinct_statements() {
        let db = qc_storage::gen_hlike(0.02);
        let session = Session::new(&db);
        let s1 = session.statement(&plan_a()).expect("prepare");
        let other = PlanNode::scan("orders", &["o_orderkey", "o_custkey"])
            .filter(col("o_custkey").lt(lit_i64(101)));
        let s2 = session.statement(&other).expect("prepare");
        assert_ne!(s1.text(), s2.text());
        assert!(!Arc::ptr_eq(&s1.prepared, &s2.prepared));
    }

    #[test]
    fn zero_capacity_statement_cache_is_passthrough() {
        let db = qc_storage::gen_hlike(0.02);
        let session = Session::with_config(
            &db,
            SessionConfig {
                statement_cache_capacity: 0,
                ..Default::default()
            },
        );
        let _ = session.statement(&plan_a()).expect("prepare");
        let _ = session.statement(&plan_a()).expect("prepare");
        let stats = session.statement_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
        // And the run path still executes fine.
        let got = session.prepare(&plan_a()).expect("prepare").execute();
        assert!(got.is_ok());
    }

    #[test]
    fn statement_cache_evicts_least_recently_used() {
        let db = qc_storage::gen_hlike(0.02);
        let session = Session::with_config(
            &db,
            SessionConfig {
                statement_cache_capacity: 2,
                ..Default::default()
            },
        );
        let plans: Vec<PlanNode> = (0..3)
            .map(|i| {
                PlanNode::scan("orders", &["o_orderkey", "o_custkey"])
                    .filter(col("o_custkey").lt(lit_i64(i)))
            })
            .collect();
        for p in &plans {
            session.statement(p).expect("prepare");
        }
        let stats = session.statement_cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // plans[0] was evicted: preparing it again is a miss.
        session.statement(&plans[0]).expect("prepare");
        assert_eq!(session.statement_cache_stats().misses, 4);
    }

    #[test]
    fn reopen_carries_statements_and_compiled_code() {
        let db = qc_storage::gen_hlike(0.02);
        let session = Session::new(&db);
        let stmt = session.statement(&plan_a()).expect("prepare");
        let backend: Arc<dyn Backend> = Arc::from(crate::backends::clift(qc_target::Isa::Tx64));
        let r1 = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend))
            .execute()
            .expect("run 1");

        // A fresh database snapshot, a rebound engine — same statement
        // handle, and the compile is now a pure cache hit.
        let db2 = qc_storage::gen_hlike(0.02);
        let session2 = session.reopen(&db2);
        let before = session2.compile_service().cache_stats();
        let r2 = session2
            .run(stmt)
            .backend(backend)
            .execute()
            .expect("run 2");
        let after = session2.compile_service().cache_stats();
        assert_eq!(
            qc_plan::reference::normalize(&r1.rows),
            qc_plan::reference::normalize(&r2.rows)
        );
        assert!(after.hits > before.hits, "reopen lost the code cache");
        assert_eq!(session2.statement_cache_stats().misses, 1);
    }
}
