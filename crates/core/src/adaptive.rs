//! Adaptive back-end selection (paper Sec. III-C).
//!
//! Umbra starts every compilation with the low-latency DirectEmit back-end;
//! after a function has executed a few times, a heuristic on code size and
//! observed cost decides whether an optimized (LLVM) compilation pays off.
//! Morsel-driven execution makes switching trivial: the next morsel simply
//! calls the newly compiled function.

use crate::engine::{Engine, EngineError, ExecutionResult, PreparedQuery};
use qc_backend::Backend;
use qc_timing::TimeTrace;

/// Outcome of an adaptive execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveOutcome {
    /// The cheap tier was sufficient.
    StayedCheap,
    /// The query was recompiled with the optimizing tier.
    TieredUp,
}

/// Adaptive two-tier execution: a cheap tier compiles immediately; the
/// optimizing tier is used when the size×work heuristic predicts a win.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveExecution {
    /// Estimated executions of the query (morsels × repetitions).
    pub expected_executions: u64,
    /// Cycles-per-IR-instruction threshold above which optimized
    /// compilation is considered beneficial.
    pub benefit_threshold: u64,
}

impl Default for AdaptiveExecution {
    fn default() -> Self {
        AdaptiveExecution {
            expected_executions: 1,
            benefit_threshold: 20_000,
        }
    }
}

impl AdaptiveExecution {
    /// Creates the policy with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's "simple heuristic on the code size and benefit": decide
    /// whether the optimizing tier should be started for a query of
    /// `ir_size` IR instructions that cost `observed_cycles` in the cheap
    /// tier.
    pub fn should_tier_up(&self, ir_size: usize, observed_cycles: u64) -> bool {
        // Optimized compilation cost grows with code size; benefit grows
        // with executed work. Tier up when remaining work dwarfs it.
        let est_compile_cost = (ir_size as u64) * self.benefit_threshold;
        observed_cycles.saturating_mul(self.expected_executions) > est_compile_cost
    }

    /// Runs a prepared query adaptively: executes in the cheap tier, then
    /// (if the heuristic fires) recompiles with the optimizing tier and
    /// re-executes.
    ///
    /// Returns the final result, the outcome, and the total compile time
    /// spent across tiers.
    ///
    /// # Errors
    /// Propagates compilation and execution errors.
    pub fn run(
        &self,
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        cheap: &dyn Backend,
        optimized: &dyn Backend,
    ) -> Result<(ExecutionResult, AdaptiveOutcome), EngineError> {
        let trace = TimeTrace::disabled();
        let mut compiled = engine.compile(prepared, cheap, &trace)?;
        let first = engine.execute(prepared, &mut compiled)?;
        if !self.should_tier_up(prepared.ir_size(), first.exec_stats.cycles) {
            return Ok((first, AdaptiveOutcome::StayedCheap));
        }
        let mut opt = engine.compile(prepared, optimized, &trace)?;
        let mut second = engine.execute(prepared, &mut opt)?;
        second.compile_time += first.compile_time;
        Ok((second, AdaptiveOutcome::TieredUp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_scales_with_work_and_size() {
        let policy = AdaptiveExecution::default();
        // Small query, little work: stay cheap.
        assert!(!policy.should_tier_up(1000, 100_000));
        // Same query, huge work: tier up.
        assert!(policy.should_tier_up(1000, 100_000_000));
        // Many expected repetitions shift the tradeoff.
        let hot = AdaptiveExecution {
            expected_executions: 1000,
            ..Default::default()
        };
        assert!(hot.should_tier_up(1000, 100_000));
    }
}
