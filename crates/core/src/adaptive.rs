//! Adaptive back-end selection (paper Sec. III-C).
//!
//! Umbra starts every compilation with the low-latency DirectEmit back-end;
//! after a function has executed a few times, a heuristic on code size and
//! observed cost decides whether an optimized (LLVM) compilation pays off.
//! Morsel-driven execution makes switching trivial: the next morsel simply
//! calls the newly compiled function.

use crate::compile_service::{CompileService, PendingCompile};
use crate::engine::{Engine, EngineError, ExecutionResult, PreparedQuery};
use qc_backend::{Backend, BackendError};
use qc_timing::TimeTrace;
use std::sync::Arc;

/// Outcome of an adaptive execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveOutcome {
    /// The cheap tier was sufficient.
    StayedCheap,
    /// The query was recompiled with the optimizing tier.
    TieredUp,
}

/// What happened during [`AdaptiveExecution::run_background`].
#[derive(Debug)]
pub struct BackgroundReport {
    /// Whether the optimizing tier took over.
    pub outcome: AdaptiveOutcome,
    /// Morsel count at which the executables were swapped, if they were.
    pub swapped_at_morsel: Option<u64>,
    /// Error from the background compilation, if it failed (execution
    /// then completes in the cheap tier instead of aborting).
    pub background_error: Option<BackendError>,
}

/// Adaptive two-tier execution: a cheap tier compiles immediately; the
/// optimizing tier is used when the size×work heuristic predicts a win.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveExecution {
    /// Estimated executions of the query (morsels × repetitions).
    pub expected_executions: u64,
    /// Cycles-per-IR-instruction threshold above which optimized
    /// compilation is considered beneficial.
    pub benefit_threshold: u64,
}

impl Default for AdaptiveExecution {
    fn default() -> Self {
        AdaptiveExecution {
            expected_executions: 1,
            benefit_threshold: 20_000,
        }
    }
}

impl AdaptiveExecution {
    /// Creates the policy with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's "simple heuristic on the code size and benefit": decide
    /// whether the optimizing tier should be started for a query of
    /// `ir_size` IR instructions that cost `observed_cycles` in the cheap
    /// tier.
    pub fn should_tier_up(&self, ir_size: usize, observed_cycles: u64) -> bool {
        // Optimized compilation cost grows with code size; benefit grows
        // with executed work. Tier up when remaining work dwarfs it.
        let est_compile_cost = (ir_size as u64) * self.benefit_threshold;
        observed_cycles.saturating_mul(self.expected_executions) > est_compile_cost
    }

    /// Runs a prepared query adaptively: executes in the cheap tier, then
    /// (if the heuristic fires) recompiles with the optimizing tier and
    /// re-executes.
    ///
    /// Returns the final result, the outcome, and the total compile time
    /// spent across tiers.
    ///
    /// # Errors
    /// Propagates compilation and execution errors.
    pub fn run(
        &self,
        engine: &Engine<'_>,
        prepared: &PreparedQuery,
        cheap: &dyn Backend,
        optimized: &dyn Backend,
    ) -> Result<(ExecutionResult, AdaptiveOutcome), EngineError> {
        let trace = TimeTrace::disabled();
        let mut compiled = engine.compile_internal(prepared, cheap, &trace)?;
        let first = engine.execute_internal(prepared, &mut compiled)?;
        if !self.should_tier_up(prepared.ir_size(), first.exec_stats.cycles) {
            return Ok((first, AdaptiveOutcome::StayedCheap));
        }
        let mut opt = engine.compile_internal(prepared, optimized, &trace)?;
        let mut second = engine.execute_internal(prepared, &mut opt)?;
        second.compile_time += first.compile_time;
        second.compile_stats.merge(&first.compile_stats);
        Ok((second, AdaptiveOutcome::TieredUp))
    }

    /// Runs a prepared query with *background* tier-up: the cheap tier
    /// compiles and starts executing immediately; the optimizing tier is
    /// compiled on a [`CompileService`] worker and swapped in at the next
    /// morsel boundary once it is ready. The first morsel is never blocked
    /// by the optimizing compile.
    ///
    /// `swap_after_morsels` forces a deterministic schedule for testing:
    /// the background compile starts right away and the swap happens at
    /// exactly that morsel boundary (blocking for the worker if needed).
    /// With `None`, the size×work heuristic decides when to start the
    /// background compile and the swap happens as soon as it finishes.
    ///
    /// If the background compilation fails, execution completes in the
    /// cheap tier and the error is reported in the [`BackgroundReport`].
    ///
    /// # Errors
    /// Propagates cheap-tier compilation and execution errors.
    pub fn run_background(
        &self,
        engine: &Engine<'_>,
        service: &CompileService,
        prepared: &PreparedQuery,
        cheap: &Arc<dyn Backend>,
        optimized: &Arc<dyn Backend>,
        swap_after_morsels: Option<u64>,
    ) -> Result<(ExecutionResult, BackgroundReport), EngineError> {
        let trace = TimeTrace::disabled();
        let mut compiled = service.compile(prepared, cheap, &trace)?;

        let mut pending: Option<PendingCompile> = None;
        let mut swapped_at: Option<u64> = None;
        let mut background_error: Option<BackendError> = None;
        let policy = *self;
        let ir_size = prepared.ir_size();

        let result = engine.execute_with_hook_internal(prepared, &mut compiled, &mut |event| {
            if swapped_at.is_some() || background_error.is_some() {
                return None;
            }
            if pending.is_none() {
                let fire = match swap_after_morsels {
                    Some(_) => true,
                    None => policy.should_tier_up(ir_size, event.cycles_so_far),
                };
                if fire {
                    pending = Some(service.spawn_compile(prepared, optimized));
                }
            }
            let ready = match swap_after_morsels {
                // Deterministic schedule: block for the worker so the
                // swap lands at exactly boundary `n`.
                Some(n) if event.morsels_done >= n => pending.take().map(PendingCompile::wait),
                Some(_) => None,
                // Heuristic schedule: swap as soon as the worker is done.
                None => pending.as_mut().and_then(PendingCompile::try_take),
            };
            match ready {
                Some(Ok(replacement)) => {
                    swapped_at = Some(event.morsels_done);
                    Some(replacement)
                }
                Some(Err(e)) => {
                    background_error = Some(e);
                    None
                }
                None => None,
            }
        })?;

        let report = BackgroundReport {
            outcome: if swapped_at.is_some() {
                AdaptiveOutcome::TieredUp
            } else {
                AdaptiveOutcome::StayedCheap
            },
            swapped_at_morsel: swapped_at,
            background_error,
        };
        Ok((result, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_scales_with_work_and_size() {
        let policy = AdaptiveExecution::default();
        // Small query, little work: stay cheap.
        assert!(!policy.should_tier_up(1000, 100_000));
        // Same query, huge work: tier up.
        assert!(policy.should_tier_up(1000, 100_000_000));
        // Many expected repetitions shift the tradeoff.
        let hot = AdaptiveExecution {
            expected_executions: 1000,
            ..Default::default()
        };
        assert!(hot.should_tier_up(1000, 100_000));
    }
}
