//! Cross-back-end differential tests: every back-end must produce
//! bit-identical result multisets to the plan-level reference evaluator,
//! on workload queries and on randomized plans.

use qc_engine::{backends, Session};
use qc_plan::reference;
use qc_plan::{col, lit_dec, lit_i32, lit_i64, AggFunc, Expr, PlanNode};
use qc_target::Isa;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn all_backends() -> Vec<Arc<dyn qc_backend::Backend>> {
    let mut v = backends::all_for(Isa::Tx64);
    v.extend(backends::all_for(Isa::Ta64));
    v.into_iter().map(Arc::from).collect()
}

#[test]
fn hlike_queries_agree_across_all_backends() {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    // A representative subset across operator shapes (full suites run in
    // the bench harness).
    let suite = qc_workloads::hlike_suite();
    let picks = [0usize, 2, 4, 5, 12, 16, 21];
    for &i in &picks {
        let q = &suite[i];
        let expected = reference::execute(&q.plan, &db).expect("reference");
        let expected_norm = reference::normalize(&expected);
        for backend in all_backends() {
            let got = session
                .prepare(&q.plan)
                .map(|run| run.backend(Arc::clone(&backend)))
                .and_then(|run| run.execute())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", backend.name(), q.name));
            assert_eq!(
                reference::normalize(&got.rows),
                expected_norm,
                "{} disagrees on {}",
                backend.name(),
                q.name
            );
        }
    }
}

#[test]
fn dslike_queries_agree_across_all_backends() {
    let db = qc_storage::gen_dslike(0.05);
    let session = Session::new(&db);
    let suite = qc_workloads::dslike_suite();
    for q in suite.iter().step_by(17) {
        let expected = reference::execute(&q.plan, &db).expect("reference");
        let expected_norm = reference::normalize(&expected);
        for backend in all_backends() {
            let got = session
                .prepare(&q.plan)
                .map(|run| run.backend(Arc::clone(&backend)))
                .and_then(|run| run.execute())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", backend.name(), q.name));
            assert_eq!(
                reference::normalize(&got.rows),
                expected_norm,
                "{} disagrees on {}",
                backend.name(),
                q.name
            );
        }
    }
}

/// Random plan generator over the H-like schema.
fn random_plan(rng: &mut StdRng) -> PlanNode {
    let mut plan = PlanNode::scan(
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
        ],
    );
    for _ in 0..rng.gen_range(0..3u32) {
        let pred: Expr = match rng.gen_range(0..4u32) {
            0 => col("l_quantity").lt(lit_dec(rng.gen_range(100..5000), 2)),
            1 => col("l_shipdate").ge(lit_i32(rng.gen_range(8000..10500))),
            2 => col("l_orderkey").gt(lit_i64(rng.gen_range(0..500))),
            _ => col("l_discount").le(lit_dec(rng.gen_range(0..10), 2)),
        };
        plan = plan.filter(pred);
    }
    if rng.gen_bool(0.6) {
        plan = plan.hash_join(
            PlanNode::scan("part", &["p_partkey", "p_size"]),
            &["l_partkey"],
            &["p_partkey"],
            &["p_size"],
        );
    }
    if rng.gen_bool(0.5) {
        plan = plan.map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )]);
    }
    if rng.gen_bool(0.7) {
        let mut aggs = vec![("n", AggFunc::CountStar)];
        if rng.gen_bool(0.7) {
            aggs.push(("q", AggFunc::Sum(col("l_quantity"))));
        }
        if rng.gen_bool(0.4) {
            aggs.push(("hi", AggFunc::Max(col("l_orderkey"))));
        }
        plan = plan.group_by(&["l_shipdate"], aggs);
        if rng.gen_bool(0.5) {
            plan = plan.sort(&[("n", false), ("l_shipdate", true)], Some(11));
        }
    }
    plan
}

#[test]
fn randomized_plans_agree_across_all_backends() {
    let db = qc_storage::gen_hlike(0.03);
    let session = Session::new(&db);
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..12 {
        let plan = random_plan(&mut rng);
        let expected = reference::execute(&plan, &db).expect("reference");
        let checksum = reference::checksum(&expected);
        for backend in all_backends() {
            let got = session
                .prepare(&plan)
                .map(|run| run.backend(Arc::clone(&backend)))
                .and_then(|run| run.execute())
                .unwrap_or_else(|e| panic!("case {case}, {}: {e}", backend.name()));
            assert_eq!(
                reference::checksum(&got.rows),
                checksum,
                "case {case}: {} checksum mismatch",
                backend.name()
            );
        }
    }
}

#[test]
fn overflow_traps_surface_identically() {
    let db = qc_storage::gen_hlike(0.02);
    let session = Session::new(&db);
    // Force a decimal overflow in every back-end.
    let plan = PlanNode::scan("lineitem", &["l_extendedprice"]).map(vec![(
        "boom",
        col("l_extendedprice").mul(lit_dec(i128::MAX / 100_000, 0)),
    )]);
    assert!(reference::execute(&plan, &db).is_err());
    for backend in all_backends() {
        let r = session
            .prepare(&plan)
            .map(|run| run.backend(Arc::clone(&backend)))
            .and_then(|run| run.execute());
        assert!(r.is_err(), "{} did not trap", backend.name());
    }
}
