//! Property-based differential testing: arbitrary straight-line arithmetic
//! functions must behave identically on the interpreter (oracle) and every
//! compiling back-end, including trap behavior.

use proptest::prelude::*;
use qc_backend::Backend;
use qc_engine::backends;
use qc_ir::{CmpOp, FunctionBuilder, Module, Opcode, Signature, Type};
use qc_runtime::RuntimeState;
use qc_target::Isa;
use qc_timing::TimeTrace;

#[derive(Debug, Clone)]
enum Op {
    Const(i64),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddTrap(usize, usize),
    Xor(usize, usize),
    Shl(usize, usize),
    RotR(usize, usize),
    Crc(usize, usize),
    LmF(usize, usize),
    CmpLt(usize, usize),
    Select(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i64>().prop_map(Op::Const),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Add(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Sub(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Mul(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::AddTrap(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Xor(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Shl(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::RotR(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Crc(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::LmF(a, b)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Op::CmpLt(a, b)),
        (0usize..8, 0usize..8, 0usize..8).prop_map(|(c, a, b)| Op::Select(c, a, b)),
    ]
}

fn build_module(ops: &[Op], x: i64, y: i64) -> Module {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let e = b.entry_block();
    b.switch_to(e);
    let mut vals = vec![b.param(0), b.param(1)];
    let _ = (x, y);
    for op in ops {
        let pick = |i: usize| vals[i % vals.len()];
        let v = match op.clone() {
            Op::Const(c) => b.iconst(Type::I64, c as i128),
            Op::Add(a2, b2) => b.add(Type::I64, pick(a2), pick(b2)),
            Op::Sub(a2, b2) => b.sub(Type::I64, pick(a2), pick(b2)),
            Op::Mul(a2, b2) => b.mul(Type::I64, pick(a2), pick(b2)),
            Op::AddTrap(a2, b2) => b.binary(Opcode::SAddTrap, Type::I64, pick(a2), pick(b2)),
            Op::Xor(a2, b2) => b.binary(Opcode::Xor, Type::I64, pick(a2), pick(b2)),
            Op::Shl(a2, b2) => b.binary(Opcode::Shl, Type::I64, pick(a2), pick(b2)),
            Op::RotR(a2, b2) => b.binary(Opcode::RotR, Type::I64, pick(a2), pick(b2)),
            Op::Crc(a2, b2) => b.crc32(pick(a2), pick(b2)),
            Op::LmF(a2, b2) => b.long_mul_fold(pick(a2), pick(b2)),
            Op::CmpLt(a2, b2) => {
                let c = b.icmp(CmpOp::SLt, Type::I64, pick(a2), pick(b2));
                b.zext(Type::I64, c)
            }
            Op::Select(c2, a2, b2) => {
                let zero = b.iconst(Type::I64, 0);
                let c = b.icmp(CmpOp::Ne, Type::I64, pick(c2), zero);
                b.select(Type::I64, c, pick(a2), pick(b2))
            }
        };
        vals.push(v);
    }
    let last = *vals.last().expect("values");
    b.ret(Some(last));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    m
}

fn run_backend(backend: &dyn Backend, m: &Module, x: i64, y: i64) -> Result<u64, String> {
    let mut exe = backend
        .compile(m, &TimeTrace::disabled())
        .map_err(|e| e.to_string())?;
    let mut state = RuntimeState::new();
    exe.call(&mut state, "f", &[x as u64, y as u64])
        .map(|r| r[0])
        .map_err(|t| format!("trap: {t}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn straightline_functions_agree(
        ops in prop::collection::vec(op_strategy(), 1..24),
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        let m = build_module(&ops, x, y);
        qc_ir::verify_module(&m).expect("valid module");
        let oracle = run_backend(backends::interpreter().as_ref(), &m, x, y);
        let oracle_trap = oracle.is_err();
        let mut all: Vec<Box<dyn Backend>> = vec![backends::direct_emit()];
        for isa in [Isa::Tx64, Isa::Ta64] {
            all.push(backends::clift(isa));
            all.push(backends::lvm_cheap(isa));
            all.push(backends::lvm_opt(isa));
            all.push(backends::cgen(isa));
        }
        for backend in all {
            let got = run_backend(backend.as_ref(), &m, x, y);
            match (&oracle, &got) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{} value mismatch", backend.name()),
                (Err(_), Err(_)) => {} // both trapped (overflow)
                _ => prop_assert!(
                    false,
                    "{}: oracle trap={} got {:?}",
                    backend.name(),
                    oracle_trap,
                    got
                ),
            }
        }
    }
}
