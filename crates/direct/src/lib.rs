//! DirectEmit: the single-pass machine-code back-end (paper Sec. VII).
//!
//! Two passes total, exactly as the paper describes:
//!
//! 1. an **analysis pass** computing the dominator tree, natural loops, and
//!    block-granularity liveness (liveness dominates its cost — Fig. 5),
//! 2. a **code generation pass** that walks blocks in reverse post-order
//!    and emits TX64 machine code instruction by instruction, allocating
//!    registers greedily on the fly.
//!
//! Every SSA value has a reserved stack home; values that are live across
//! blocks (or across calls) are stored through to their home when defined,
//! while block-local values stay in registers. Φ-nodes are resolved on
//! edges through a small temporary area. DWARF-CFI-style unwind entries
//! are produced in parallel with the code and cover only call sites
//! ("synchronous unwinding", Sec. VII-A2). The encoder favors fixed-width
//! imm32/disp32 encodings — fewer branches in the encoder at the cost of
//! slightly larger code (Sec. VII-A2).
//!
//! Like Umbra's DirectEmit, the back-end supports only one target (TX64)
//! and rejects irreducible control flow.

pub mod codegen;

use qc_backend::{
    Backend, BackendError, CodeArtifact, CompileStats, Executable, NativeArtifact, NativeExecutable,
};
use qc_ir::{Cfg, DomTree, Liveness, Loops, Module, ReversePostorder};
use qc_runtime::resolve_runtime;
use qc_target::{ImageBuilder, Isa};
use qc_timing::TimeTrace;

/// The DirectEmit back-end.
#[derive(Debug, Default)]
pub struct DirectBackend;

impl DirectBackend {
    /// Creates the back-end.
    pub fn new() -> Self {
        DirectBackend
    }
}

impl Backend for DirectBackend {
    fn name(&self) -> &'static str {
        "DirectEmit"
    }

    fn isa(&self) -> Isa {
        Isa::Tx64
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        let (image, mut stats) =
            build_parts(module, trace).map_err(|e| e.in_backend(self.name()))?;
        let _t = trace.scope("link");
        let linked = image
            .link(&|name| resolve_runtime(name))
            .map_err(|e| BackendError::new(e.to_string()).in_backend(self.name()))?;
        stats.code_bytes = linked.len();
        Ok(Box::new(NativeExecutable::new(linked, stats)))
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        let (image, stats) = build_parts(module, trace).map_err(|e| e.in_backend(self.name()))?;
        Ok(Some(Box::new(NativeArtifact::new(image, stats))))
    }
}

/// Runs both DirectEmit passes over every function, producing the
/// unlinked image; `compile` links it immediately, `compile_artifact`
/// defers linking to instantiation.
fn build_parts(
    module: &Module,
    trace: &TimeTrace,
) -> Result<(ImageBuilder, CompileStats), BackendError> {
    let mut image = ImageBuilder::new(Isa::Tx64);
    let mut stats = CompileStats::default();
    for func in module.functions() {
        // --- Analysis pass ---
        let analysis = {
            let _t = trace.scope("analysis");
            let cfg = {
                let _t = trace.scope("cfg");
                Cfg::compute(func)
            };
            let rpo = {
                let _t = trace.scope("cfg");
                ReversePostorder::compute(func, &cfg)
            };
            let (dt, loops) = {
                let _t = trace.scope("domtree_loops");
                let dt = DomTree::compute(func, &cfg, &rpo);
                let loops = Loops::compute(func, &cfg, &rpo, &dt);
                (dt, loops)
            };
            if loops.is_irreducible() {
                return Err(BackendError::new(format!(
                    "DirectEmit cannot compile irreducible control flow in @{}",
                    func.name
                )));
            }
            let live = {
                let _t = trace.scope("liveness");
                Liveness::compute(func, &cfg)
            };
            let _ = dt;
            codegen::Analysis {
                cfg,
                rpo,
                loops,
                live,
            }
        };

        // --- Code generation pass ---
        {
            let _t = trace.scope("codegen");
            codegen::emit_function(func, module, &analysis, &mut image, &mut stats)?;
        }
    }
    stats.functions = module.len();
    Ok((image, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{CmpOp, FunctionBuilder, Opcode, Signature, Type};
    use qc_runtime::RuntimeState;
    use qc_target::Trap;

    fn run_one(
        build: impl FnOnce(&mut FunctionBuilder),
        sig: Signature,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let mut b = FunctionBuilder::new("f", sig);
        build(&mut b);
        let f = b.finish();
        qc_ir::verify_function(&f).unwrap();
        let mut m = Module::new("m");
        m.push_function(f);
        let mut exe = DirectBackend::new()
            .compile(&m, &TimeTrace::disabled())
            .unwrap();
        let mut state = RuntimeState::new();
        exe.call(&mut state, "f", args)
    }

    #[test]
    fn straight_line_arithmetic() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let s = b.add(Type::I64, x, y);
                let d = b.mul(Type::I64, s, s);
                let c = b.iconst(Type::I64, 10);
                let q = b.binary(Opcode::SDiv, Type::I64, d, c);
                b.ret(Some(q));
            },
            sig,
            &[30, 12],
        )
        .unwrap();
        assert_eq!(r[0], (42i64 * 42 / 10) as u64);
    }

    #[test]
    fn loop_with_phis_runs() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                let header = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                b.switch_to(entry);
                let zero = b.iconst(Type::I64, 0);
                b.jump(header);
                b.switch_to(header);
                let i = b.phi(Type::I64, vec![(entry, zero)]);
                let s = b.phi(Type::I64, vec![(entry, zero)]);
                let n = b.param(0);
                let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
                b.branch(c, body, exit);
                b.switch_to(body);
                let s2 = b.add(Type::I64, s, i);
                let one = b.iconst(Type::I64, 1);
                let i2 = b.add(Type::I64, i, one);
                b.phi_add_incoming(i, body, i2);
                b.phi_add_incoming(s, body, s2);
                b.jump(header);
                b.switch_to(exit);
                b.ret(Some(s));
            },
            sig,
            &[1000],
        )
        .unwrap();
        assert_eq!(r[0], 499_500);
    }

    #[test]
    fn phi_swap_is_parallel() {
        // Swap two values through phis repeatedly: (a, b) -> (b, a).
        let sig = Signature::new(vec![Type::I64, Type::I64, Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                let header = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                b.switch_to(entry);
                let zero = b.iconst(Type::I64, 0);
                b.jump(header);
                b.switch_to(header);
                let i = b.phi(Type::I64, vec![(entry, zero)]);
                let x = b.phi(Type::I64, vec![(entry, b.param(0))]);
                let y = b.phi(Type::I64, vec![(entry, b.param(1))]);
                let n = b.param(2);
                let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
                b.branch(c, body, exit);
                b.switch_to(body);
                let one = b.iconst(Type::I64, 1);
                let i2 = b.add(Type::I64, i, one);
                b.phi_add_incoming(i, body, i2);
                b.phi_add_incoming(x, body, y); // swap!
                b.phi_add_incoming(y, body, x);
                b.jump(header);
                b.switch_to(exit);
                b.ret(Some(x));
            },
            sig,
            &[111, 222, 3],
        )
        .unwrap();
        assert_eq!(r[0], 222, "three swaps leave y in x");
    }

    #[test]
    fn i128_add_and_overflow_trap() {
        let sig = Signature::new(vec![Type::I64], Type::I128);
        let build = |b: &mut FunctionBuilder| {
            let e = b.entry_block();
            b.switch_to(e);
            let x = b.param(0);
            let w = b.sext(Type::I128, x);
            let s = b.binary(Opcode::SAddTrap, Type::I128, w, w);
            b.ret(Some(s));
        };
        let r = run_one(build, sig.clone(), &[u64::MAX >> 1]).unwrap();
        assert_eq!(r[0], (u64::MAX >> 1) * 2);
        assert_eq!(r[1], 0);
        // i128::MAX via doubling would trap — emulate with i64 max sext.
        let sig2 = Signature::new(vec![Type::I128], Type::I128);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let x = b.param(0);
                let s = b.binary(Opcode::SAddTrap, Type::I128, x, x);
                b.ret(Some(s));
            },
            sig2,
            &[u64::MAX, i64::MAX as u64],
        );
        assert_eq!(r.unwrap_err(), Trap::Overflow);
    }

    #[test]
    fn i128_mul_via_runtime_helper() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I128);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let wx = b.sext(Type::I128, x);
                let wy = b.sext(Type::I128, y);
                let p = b.binary(Opcode::SMulTrap, Type::I128, wx, wy);
                b.ret(Some(p));
            },
            sig,
            &[1 << 40, 1 << 40],
        )
        .unwrap();
        assert_eq!(r[0], 0);
        assert_eq!(r[1], 1 << 16);
    }

    #[test]
    fn crc32_and_lmulfold_match_model() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let c = b.crc32(x, y);
                let m = b.long_mul_fold(c, y);
                b.ret(Some(m));
            },
            sig,
            &[5, 999],
        )
        .unwrap();
        let c = qc_target::crc32c_u64(5, 999);
        assert_eq!(r[0], qc_runtime::long_mul_fold(c, 999));
    }

    #[test]
    fn narrow_widths_and_sext() {
        let sig = Signature::new(vec![Type::I32, Type::I32], Type::I64);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let s = b.add(Type::I32, x, y); // wraps at 32 bits
                let w = b.sext(Type::I64, s);
                b.ret(Some(w));
            },
            sig,
            &[i32::MAX as u64, 1],
        )
        .unwrap();
        assert_eq!(r[0] as i64, i32::MIN as i64);
    }

    #[test]
    fn select_and_bool_handling() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let c = b.icmp(CmpOp::ULt, Type::I64, x, y);
                let m = b.select(Type::I64, c, x, y); // min
                b.ret(Some(m));
            },
            sig,
            &[77, 33],
        )
        .unwrap();
        assert_eq!(r[0], 33);
    }

    #[test]
    fn runtime_calls_and_unwind_registered() {
        let sig = Signature::new(vec![], Type::I64);
        let r = run_one(
            |b| {
                let ext = b.declare_ext_func(qc_ir::ExtFuncDecl {
                    name: "rt_alloc".into(),
                    sig: Signature::new(vec![Type::I64], Type::Ptr),
                });
                let e = b.entry_block();
                b.switch_to(e);
                let sz = b.iconst(Type::I64, 32);
                let p = b.call(ext, vec![sz]).unwrap();
                let v = b.iconst(Type::I64, 4242);
                b.store(Type::I64, p, v, 16);
                let back = b.load(Type::I64, p, 16);
                b.ret(Some(back));
            },
            sig,
            &[],
        )
        .unwrap();
        assert_eq!(r[0], 4242);
    }

    #[test]
    fn rejects_irreducible_cfg() {
        let mut bd = FunctionBuilder::new("irr", Signature::new(vec![Type::Bool], Type::Void));
        let entry = bd.entry_block();
        let a = bd.create_block();
        let b = bd.create_block();
        let exit = bd.create_block();
        bd.switch_to(entry);
        let c = bd.param(0);
        bd.branch(c, a, b);
        bd.switch_to(a);
        bd.branch(c, b, exit);
        bd.switch_to(b);
        bd.branch(c, a, exit);
        bd.switch_to(exit);
        bd.ret(None);
        let mut m = Module::new("m");
        m.push_function(bd.finish());
        let err = match DirectBackend::new().compile(&m, &TimeTrace::disabled()) {
            Err(e) => e,
            Ok(_) => panic!("expected irreducible rejection"),
        };
        assert!(err.message.contains("irreducible"), "{err}");
    }

    #[test]
    fn deep_expression_pressure_spills_correctly() {
        // Chain long enough to exceed the register pool.
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let x = b.param(0);
                let mut vals = vec![x];
                for i in 0..30 {
                    let c = b.iconst(Type::I64, i + 1);
                    let v = b.add(Type::I64, vals[vals.len() - 1], c);
                    vals.push(v);
                }
                // Sum all intermediates to keep them live.
                let mut acc = vals[0];
                for &v in &vals[1..] {
                    acc = b.add(Type::I64, acc, v);
                }
                b.ret(Some(acc));
            },
            sig,
            &[0],
        )
        .unwrap();
        // vals[i] = sum(1..=i); total = sum over i of that.
        let expected: i64 = (0..=30).map(|i| (1..=i).sum::<i64>()).sum();
        assert_eq!(r[0] as i64, expected);
    }
}
