//! The single code-generation pass.

use qc_backend::{BackendError, CompileStats};
use qc_ir::{
    Block, CastOp, Cfg, CmpOp, Function, InstData, Liveness, Loops, Module, Opcode,
    ReversePostorder, Type, Value, ValueDef,
};
use qc_target::{
    AluOp, Cond, FReg, ImageBuilder, MemArg, Reg, SymbolRef, Tx64Assembler, UnwindEntry, Width,
    TX64_ABI,
};

/// Results of the analysis pass consumed by code generation.
pub struct Analysis {
    /// CFG (predecessors/successors).
    pub cfg: Cfg,
    /// Reverse post-order (the emission order).
    pub rpo: ReversePostorder,
    /// Natural loops (spill heuristic).
    pub loops: Loops,
    /// Block-granularity liveness.
    pub live: Liveness,
}

fn ty_width(ty: Type) -> Width {
    match ty {
        Type::Bool | Type::I8 => Width::W8,
        Type::I16 => Width::W16,
        Type::I32 => Width::W32,
        _ => Width::W64,
    }
}

fn alu_of(op: Opcode) -> AluOp {
    match op {
        Opcode::Add | Opcode::SAddTrap | Opcode::SAddOvf => AluOp::Add,
        Opcode::Sub | Opcode::SSubTrap | Opcode::SSubOvf => AluOp::Sub,
        Opcode::Mul | Opcode::SMulTrap | Opcode::SMulOvf => AluOp::Mul,
        Opcode::And => AluOp::And,
        Opcode::Or => AluOp::Or,
        Opcode::Xor => AluOp::Xor,
        Opcode::Shl => AluOp::Shl,
        Opcode::LShr => AluOp::Shr,
        Opcode::AShr => AluOp::Sar,
        Opcode::RotR => AluOp::Rotr,
        _ => unreachable!("not a plain ALU op"),
    }
}

fn cond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::SLt => Cond::Lt,
        CmpOp::SLe => Cond::Le,
        CmpOp::SGt => Cond::Gt,
        CmpOp::SGe => Cond::Ge,
        CmpOp::ULt => Cond::B,
        CmpOp::ULe => Cond::Be,
        CmpOp::UGt => Cond::A,
        CmpOp::UGe => Cond::Ae,
    }
}

fn fcond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::SLt | CmpOp::ULt => Cond::B,
        CmpOp::SLe | CmpOp::ULe => Cond::Be,
        CmpOp::SGt | CmpOp::UGt => Cond::A,
        CmpOp::SGe | CmpOp::UGe => Cond::Ae,
    }
}

#[derive(Clone)]
struct RegCache {
    /// reg -> (value, half)
    reg_val: Vec<Option<(Value, u8)>>,
    /// value-half (index v*2+h) -> reg
    val_reg: Vec<Option<Reg>>,
    /// freg -> value
    freg_val: Vec<Option<Value>>,
    /// value -> freg
    val_freg: Vec<Option<FReg>>,
    /// LRU stamps per reg.
    stamp: Vec<u64>,
    fstamp: Vec<u64>,
    tick: u64,
}

struct Emit<'a> {
    asm: Tx64Assembler,
    func: &'a Function,
    module: &'a Module,
    labels: Vec<qc_target::TxLabel>,
    home_off: Vec<u32>,
    needs_home: Vec<bool>,
    stored: Vec<bool>,
    uses_left: Vec<u32>,
    cache: RegCache,
    /// Extra sp displacement while pushing call arguments.
    sp_adjust: i32,
    frame: u32,
    phi_tmp_off: u32,
    stack_slot_off: Vec<u32>,
    pinned: Vec<Reg>,
    has_calls: bool,
}

const SP: Reg = Reg(15);
const SCRATCH: Reg = Reg(14);

impl RegCache {
    fn new(nv: usize) -> Self {
        RegCache {
            reg_val: vec![None; 16],
            val_reg: vec![None; nv * 2],
            freg_val: vec![None; 16],
            val_freg: vec![None; nv],
            stamp: vec![0; 16],
            fstamp: vec![0; 16],
            tick: 0,
        }
    }

    fn clear(&mut self) {
        for r in &mut self.reg_val {
            *r = None;
        }
        for v in &mut self.val_reg {
            *v = None;
        }
        for r in &mut self.freg_val {
            *r = None;
        }
        for v in &mut self.val_freg {
            *v = None;
        }
    }
}

impl<'a> Emit<'a> {
    fn home_mem(&self, v: Value, half: u8) -> MemArg {
        MemArg::base_disp(
            SP,
            (self.home_off[v.index()] + 8 * half as u32) as i32 + self.sp_adjust,
        )
    }

    fn touch(&mut self, r: Reg) {
        self.cache.tick += 1;
        self.cache.stamp[r.index()] = self.cache.tick;
    }

    fn bind(&mut self, v: Value, half: u8, r: Reg) {
        if let Some((old, oh)) = self.cache.reg_val[r.index()] {
            self.cache.val_reg[old.index() * 2 + oh as usize] = None;
        }
        self.cache.reg_val[r.index()] = Some((v, half));
        self.cache.val_reg[v.index() * 2 + half as usize] = Some(r);
        self.touch(r);
    }

    fn unbind_reg(&mut self, r: Reg) {
        if let Some((old, oh)) = self.cache.reg_val[r.index()].take() {
            self.cache.val_reg[old.index() * 2 + oh as usize] = None;
        }
    }

    /// Picks a register for a new value, evicting if necessary.
    fn alloc_reg(&mut self) -> Reg {
        let pool = TX64_ABI.allocatable;
        // Free register?
        for &r in pool {
            if self.cache.reg_val[r.index()].is_none() && !self.pinned.contains(&r) {
                self.touch(r);
                return r;
            }
        }
        // Evict: prefer dead values, then stored values, by LRU.
        let mut best: Option<(u8, u64, Reg)> = None; // (class, stamp, reg)
        for &r in pool {
            if self.pinned.contains(&r) {
                continue;
            }
            let (v, _) = self.cache.reg_val[r.index()].expect("occupied");
            let class = if self.uses_left[v.index()] == 0 {
                0u8
            } else if self.stored[v.index()] {
                1
            } else {
                2
            };
            let key = (class, self.cache.stamp[r.index()], r);
            if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                best = Some(key);
            }
        }
        let (class, _, r) = best.expect("register pool exhausted by pins");
        if class == 2 {
            // Emergency spill to the value's reserved home.
            let (v, half) = self.cache.reg_val[r.index()].expect("occupied");
            let mem = self.home_mem(v, half);
            self.asm.store(Width::W64, r, mem);
            // A pair value spills one half at a time; both halves marked
            // stored only when each half is written. Track per value: mark
            // stored once both halves are out of registers or stored.
            self.spill_other_half(v, half);
            self.stored[v.index()] = true;
        }
        self.unbind_reg(r);
        self.touch(r);
        r
    }

    /// When spilling one half of a pair, the other cached half must be
    /// stored too (stored flag is per value).
    fn spill_other_half(&mut self, v: Value, half: u8) {
        let other = 1 - half;
        if let Some(r2) = self.cache.val_reg[v.index() * 2 + other as usize] {
            let mem = self.home_mem(v, other);
            self.asm.store(Width::W64, r2, mem);
        } else if self.func.value_type(v).reg_count() == 2 && !self.stored[v.index()] {
            // Other half neither cached nor stored: impossible — halves are
            // defined together and stay cached until spilled/stored.
            unreachable!("pair half lost for {v}");
        }
    }

    /// Materializes `v`'s `half` into a register (loading from its home if
    /// not cached).
    fn use_half(&mut self, v: Value, half: u8) -> Reg {
        if let Some(r) = self.cache.val_reg[v.index() * 2 + half as usize] {
            self.touch(r);
            self.pinned.push(r);
            return r;
        }
        assert!(
            self.stored[v.index()],
            "value {v} not cached and not stored (@{})",
            self.func.name
        );
        let r = self.alloc_reg();
        let mem = self.home_mem(v, half);
        self.asm.load(Width::W64, r, mem);
        self.bind(v, half, r);
        self.pinned.push(r);
        r
    }

    /// Materializes a float value into an FP register.
    fn use_float(&mut self, v: Value) -> FReg {
        if let Some(f) = self.cache.val_freg[v.index()] {
            self.cache.tick += 1;
            self.cache.fstamp[f.index()] = self.cache.tick;
            return f;
        }
        assert!(self.stored[v.index()], "float {v} not available");
        let f = self.alloc_freg();
        let mem = self.home_mem(v, 0);
        self.asm.fload(f, mem);
        self.bind_float(v, f);
        f
    }

    fn alloc_freg(&mut self) -> FReg {
        for &f in TX64_ABI.fallocatable {
            if self.cache.freg_val[f.index()].is_none() {
                return f;
            }
        }
        // Evict LRU (floats are always restorable: defs store through).
        let f = *TX64_ABI
            .fallocatable
            .iter()
            .min_by_key(|f| self.cache.fstamp[f.index()])
            .expect("fp pool");
        if let Some(old) = self.cache.freg_val[f.index()].take() {
            if !self.stored[old.index()] {
                let mem = self.home_mem(old, 0);
                self.asm.fstore(f, mem);
                self.stored[old.index()] = true;
            }
            self.cache.val_freg[old.index()] = None;
        }
        f
    }

    fn bind_float(&mut self, v: Value, f: FReg) {
        if let Some(old) = self.cache.freg_val[f.index()] {
            self.cache.val_freg[old.index()] = None;
        }
        self.cache.freg_val[f.index()] = Some(v);
        self.cache.val_freg[v.index()] = Some(f);
        self.cache.tick += 1;
        self.cache.fstamp[f.index()] = self.cache.tick;
    }

    /// Finishes the definition of `v` living in `r` (half 0 given; pairs
    /// call this per half): store-through when it needs a home.
    fn def_half(&mut self, v: Value, half: u8, r: Reg) {
        self.bind(v, half, r);
        if self.needs_home[v.index()] {
            let mem = self.home_mem(v, half);
            self.asm.store(Width::W64, r, mem);
            self.stored[v.index()] = true;
        }
    }

    fn def_float(&mut self, v: Value, f: FReg) {
        self.bind_float(v, f);
        if self.needs_home[v.index()] {
            let mem = self.home_mem(v, 0);
            self.asm.fstore(f, mem);
            self.stored[v.index()] = true;
        }
    }

    fn consume(&mut self, v: Value) {
        self.uses_left[v.index()] = self.uses_left[v.index()].saturating_sub(1);
    }

    /// Stores every cached, unstored value that is still needed (before a
    /// call clobbers the register file), then clears the caches.
    /// Stores every cached, unstored, still-needed value but keeps the
    /// cache bindings (used before branches so both arms agree on memory).
    fn flush_dirty(&mut self) {
        for r in 0..16usize {
            if let Some((v, half)) = self.cache.reg_val[r] {
                if self.uses_left[v.index()] > 0 && !self.stored[v.index()] {
                    let mem = self.home_mem(v, half);
                    self.asm.store(Width::W64, Reg(r as u8), mem);
                    self.spill_other_half(v, half);
                    self.stored[v.index()] = true;
                }
            }
        }
        for f in 0..16usize {
            if let Some(v) = self.cache.freg_val[f] {
                if self.uses_left[v.index()] > 0 && !self.stored[v.index()] {
                    let mem = self.home_mem(v, 0);
                    self.asm.fstore(FReg(f as u8), mem);
                    self.stored[v.index()] = true;
                }
            }
        }
    }

    fn flush_for_call(&mut self) {
        for r in 0..16usize {
            if let Some((v, half)) = self.cache.reg_val[r] {
                if self.uses_left[v.index()] > 0 && !self.stored[v.index()] {
                    let mem = self.home_mem(v, half);
                    self.asm.store(Width::W64, Reg(r as u8), mem);
                    self.spill_other_half(v, half);
                    self.stored[v.index()] = true;
                }
            }
        }
        for f in 0..16usize {
            if let Some(v) = self.cache.freg_val[f] {
                if self.uses_left[v.index()] > 0 && !self.stored[v.index()] {
                    let mem = self.home_mem(v, 0);
                    self.asm.fstore(FReg(f as u8), mem);
                    self.stored[v.index()] = true;
                }
            }
        }
        self.cache.clear();
    }

    fn emit_trap_check(&mut self) {
        let ok = self.asm.new_label();
        self.asm.jcc(Cond::No, ok);
        self.asm.trap(1);
        self.asm.bind(ok);
    }

    /// Loads all argument slots of a runtime call into the arg registers
    /// and stack, then emits the call and rebinds the result.
    fn emit_call(&mut self, symbol: &str, args: &[(Value, u8)], result: Option<Value>) {
        self.flush_for_call();
        let nreg = TX64_ABI.arg_regs.len();
        // Stack args, pushed in reverse so arg i lands at [sp + 8(i-nreg)].
        let extra = args.len().saturating_sub(nreg);
        if extra > 0 {
            for &(v, half) in args[nreg..].iter().rev() {
                let mem = self.home_mem(v, half);
                self.asm.load(Width::W64, SCRATCH, mem);
                self.asm.push(SCRATCH);
                self.sp_adjust += 8;
            }
        }
        for (i, &(v, half)) in args.iter().take(nreg).enumerate() {
            let mem = self.home_mem(v, half);
            self.asm.load(Width::W64, TX64_ABI.arg_regs[i], mem);
        }
        // Runtime addresses are hard-wired: DirectEmit produces no
        // relocations for runtime calls (its own fast encoder + no linker
        // work; only `funcaddr` references remain symbolic).
        match qc_runtime::resolve_runtime(symbol) {
            Some(addr) => {
                self.asm.mov_ri64(SCRATCH, addr as i64);
                self.asm.call_ind(SCRATCH);
            }
            None => self.asm.call_sym(SymbolRef::named(symbol)),
        }
        self.has_calls = true;
        if extra > 0 {
            self.asm
                .alu_ri32(AluOp::Add, Width::W64, false, SP, (extra * 8) as i32);
            self.sp_adjust -= (extra * 8) as i32;
        }
        self.cache.clear();
        if let Some(res) = result {
            let ty = self.func.value_type(res);
            if ty == Type::F64 {
                self.asm.fmov_from_gpr(TX64_ABI.fret, TX64_ABI.ret);
                self.def_float(res, TX64_ABI.fret);
            } else {
                self.def_half(res, 0, TX64_ABI.ret);
                if ty.reg_count() == 2 {
                    self.def_half(res, 1, TX64_ABI.ret_hi);
                }
            }
        }
    }

    /// Emits Φ-resolution copies for the edge `pred -> succ` through the
    /// temporary area (parallel-copy semantics).
    fn emit_edge_copies(&mut self, pred: Block, succ: Block) {
        let mut phis = Vec::new();
        for &inst in self.func.block_insts(succ) {
            if let InstData::Phi { pairs, ty } = self.func.inst(inst) {
                if let Some(&(_, src)) = pairs.iter().find(|&&(b, _)| b == pred) {
                    let dst = self.func.inst_result(inst).expect("phi result");
                    phis.push((src, dst, ty.reg_count()));
                }
            } else {
                break;
            }
        }
        if phis.is_empty() {
            return;
        }
        if phis.len() == 1 {
            let (src, dst, regs) = phis[0];
            for half in 0..regs as u8 {
                self.pinned.clear();
                let r = self.use_half(src, half);
                let mem = self.home_mem(dst, half);
                self.asm.store(Width::W64, r, mem);
            }
            self.consume(src);
            return;
        }
        // Phase A: sources -> temp area.
        for (i, &(src, _, regs)) in phis.iter().enumerate() {
            for half in 0..regs as u8 {
                self.pinned.clear();
                let r = self.use_half(src, half);
                let mem = MemArg::base_disp(
                    SP,
                    (self.phi_tmp_off + (i as u32) * 16 + 8 * half as u32) as i32 + self.sp_adjust,
                );
                self.asm.store(Width::W64, r, mem);
            }
            self.consume(src);
        }
        // Phase B: temp area -> phi homes.
        for (i, &(_, dst, regs)) in phis.iter().enumerate() {
            for half in 0..regs as u8 {
                let tmp = MemArg::base_disp(
                    SP,
                    (self.phi_tmp_off + (i as u32) * 16 + 8 * half as u32) as i32 + self.sp_adjust,
                );
                self.asm.load(Width::W64, SCRATCH, tmp);
                let mem = self.home_mem(dst, half);
                self.asm.store(Width::W64, SCRATCH, mem);
            }
        }
    }

    fn epilogue(&mut self) {
        self.asm
            .alu_ri32(AluOp::Add, Width::W64, false, SP, self.frame as i32);
        self.asm.ret();
    }
}

/// Emits one function into the image.
pub fn emit_function(
    func: &Function,
    module: &Module,
    an: &Analysis,
    image: &mut ImageBuilder,
    stats: &mut CompileStats,
) -> Result<(), BackendError> {
    let nv = func.num_values();

    // Use counts and needs-home flags.
    let mut uses = vec![0u32; nv];
    let mut needs_home = vec![false; nv];
    let mut def_block = vec![Block::new(0); nv];
    for &p in func.params() {
        needs_home[p.index()] = true;
    }
    // Dense side arrays (no hash tables — the DirectEmit idiom).
    let mut def_epoch = vec![u32::MAX; nv];
    let mut def_block_tag = vec![u32::MAX; nv];
    for block in func.blocks() {
        // Per-block call boundary tracking.
        let mut call_epoch = 0u32;
        let tag = block.index() as u32;
        for &inst in func.block_insts(block) {
            let data = func.inst(inst);
            data.for_each_arg(|v| {
                uses[v.index()] += 1;
                if def_block_tag[v.index()] == tag && def_epoch[v.index()] != call_epoch {
                    needs_home[v.index()] = true;
                }
            });
            let is_call = matches!(data, InstData::Call { .. })
                || matches!(
                    data,
                    InstData::Binary {
                        op: Opcode::SMulTrap | Opcode::SDiv | Opcode::SRem | Opcode::Mul,
                        ty: Type::I128,
                        ..
                    }
                );
            if let Some(res) = func.inst_result(inst) {
                def_block[res.index()] = block;
                def_epoch[res.index()] = call_epoch;
                def_block_tag[res.index()] = tag;
                if matches!(data, InstData::Phi { .. }) {
                    needs_home[res.index()] = true;
                }
            }
            if is_call {
                call_epoch += 1;
            }
        }
    }
    for i in 0..nv {
        let v = Value::new(i);
        let live_out = match func.value_def(v) {
            ValueDef::Param(_) => true,
            ValueDef::Inst(_) => an.live.is_live_out(def_block[i], v),
        };
        if live_out {
            needs_home[i] = true;
        }
    }

    // Frame layout: stack slots, phi temp area, value homes.
    let mut frame = 0u32;
    let mut stack_slot_off = Vec::new();
    for s in func.stack_slots() {
        frame = (frame + s.align - 1) & !(s.align - 1);
        stack_slot_off.push(frame);
        frame += s.size;
    }
    let max_phis = func
        .blocks()
        .map(|b| {
            func.block_insts(b)
                .iter()
                .take_while(|&&i| matches!(func.inst(i), InstData::Phi { .. }))
                .count()
        })
        .max()
        .unwrap_or(0) as u32;
    let phi_tmp_off = frame;
    frame += max_phis * 16;
    let mut home_off = vec![0u32; nv];
    for (i, off) in home_off.iter_mut().enumerate() {
        *off = frame;
        frame += 8 * func.value_type(Value::new(i)).reg_count().max(1);
    }
    frame = (frame + 15) & !15;

    let mut e = Emit {
        asm: Tx64Assembler::new(),
        func,
        module,
        labels: Vec::new(),
        home_off,
        needs_home,
        stored: {
            let mut st = vec![false; nv];
            for b in func.blocks() {
                for &i in func.block_insts(b) {
                    if matches!(func.inst(i), InstData::Phi { .. }) {
                        if let Some(r) = func.inst_result(i) {
                            st[r.index()] = true; // edges write the home
                        }
                    }
                }
            }
            st
        },
        uses_left: uses,
        cache: RegCache::new(nv),
        sp_adjust: 0,
        frame,
        phi_tmp_off,
        stack_slot_off,
        pinned: Vec::new(),
        has_calls: false,
    };
    for _ in 0..func.num_blocks() {
        let l = e.asm.new_label();
        e.labels.push(l);
    }

    // Prologue: allocate the frame, store parameters to their homes.
    e.asm
        .alu_ri32(AluOp::Sub, Width::W64, false, SP, frame as i32);
    let mut slot = 0usize;
    for &p in func.params() {
        let regs = func.value_type(p).reg_count();
        for half in 0..regs as u8 {
            let src = if slot < TX64_ABI.arg_regs.len() {
                TX64_ABI.arg_regs[slot]
            } else {
                let mem = MemArg::base_disp(
                    SP,
                    (frame as i32) + 8 * (slot - TX64_ABI.arg_regs.len()) as i32,
                );
                e.asm.load(Width::W64, SCRATCH, mem);
                SCRATCH
            };
            let mem = e.home_mem(p, half);
            e.asm.store(Width::W64, src, mem);
            slot += 1;
        }
        e.stored[p.index()] = true;
    }

    // Emit blocks in reverse post-order.
    for &block in an.rpo.order() {
        let label = e.labels[block.index()];
        e.asm.bind(label);
        e.cache.clear();
        for &inst in func.block_insts(block) {
            e.pinned.clear();
            emit_inst(&mut e, block, inst)?;
        }
    }
    // Unreachable blocks still need their labels bound (no refs exist, but
    // the assembler asserts all labels are resolved only when referenced).
    for block in func.blocks() {
        if !an.rpo.is_reachable(block) {
            // Labels of unreachable blocks are never referenced; nothing to
            // do — bind them defensively at the end.
            let l = e.labels[block.index()];
            // Binding twice is an error; only bind if never bound: the
            // assembler has no query, so track via rpo reachability only.
            e.asm.bind(l);
            e.asm.trap(0);
        }
    }

    let code_len = { e.asm.offset() };
    let has_calls = e.has_calls;
    let (code, relocs) = e.asm.finish();
    stats.bump("machine_insts_bytes", code.len() as u64);
    let off = image.add_function(&func.name, code, relocs);
    if has_calls {
        image.add_unwind(
            off,
            UnwindEntry {
                start: 0,
                end: code_len,
                frame_size: frame,
                synchronous_only: true,
            },
        );
    }
    Ok(())
}

fn emit_inst(e: &mut Emit, block: Block, inst: qc_ir::Inst) -> Result<(), BackendError> {
    let data = e.func.inst(inst).clone();
    let result = e.func.inst_result(inst);
    match data {
        InstData::Phi { .. } => {} // resolved on edges; value lives in its home
        InstData::IConst { ty, imm } => {
            let v = result.expect("const result");
            let r = e.alloc_reg();
            // Keep register values canonical: zero-extended at the width.
            let canon = if ty == Type::I128 || ty.bits() >= 64 {
                imm as u64
            } else {
                (imm as u64) & ((1u64 << ty.bits()) - 1)
            };
            e.asm.mov_ri64(r, canon as i64);
            e.pinned.push(r);
            e.def_half(v, 0, r);
            if ty == Type::I128 {
                let r2 = e.alloc_reg();
                e.asm.mov_ri64(r2, (imm >> 64) as i64);
                e.def_half(v, 1, r2);
            }
        }
        InstData::FConst { imm } => {
            let v = result.expect("const result");
            e.asm.mov_ri64(SCRATCH, imm.to_bits() as i64);
            let f = e.alloc_freg();
            e.asm.fmov_from_gpr(f, SCRATCH);
            e.def_float(v, f);
        }
        InstData::Binary { op, ty, args } => {
            emit_binary(e, op, ty, args, result.expect("binary result"))?;
        }
        InstData::Cmp { op, ty, args } => {
            let v = result.expect("cmp result");
            if ty == Type::I128 {
                emit_cmp128(e, op, args, v);
            } else {
                let a = e.use_half(args[0], 0);
                let b = e.use_half(args[1], 0);
                e.asm.cmp_rr(ty_width(ty), a, b);
                e.consume(args[0]);
                e.consume(args[1]);
                let dst = e.alloc_reg();
                e.asm.setcc(cond_of(op), dst);
                e.def_half(v, 0, dst);
            }
        }
        InstData::FCmp { op, args } => {
            let v = result.expect("fcmp result");
            let a = e.use_float(args[0]);
            let b = e.use_float(args[1]);
            e.asm.fcmp(a, b);
            e.consume(args[0]);
            e.consume(args[1]);
            let dst = e.alloc_reg();
            e.asm.setcc(fcond_of(op), dst);
            e.def_half(v, 0, dst);
        }
        InstData::Cast { op, to, arg } => emit_cast(e, op, to, arg, result.expect("cast"))?,
        InstData::Crc32 { args } => {
            let v = result.expect("crc32 result");
            let a = e.use_half(args[0], 0);
            let b = e.use_half(args[1], 0);
            let dst = e.alloc_reg();
            e.asm.crc32(dst, a, b);
            e.consume(args[0]);
            e.consume(args[1]);
            e.def_half(v, 0, dst);
        }
        InstData::LongMulFold { args } => {
            let v = result.expect("lmulfold result");
            let a = e.use_half(args[0], 0);
            let b = e.use_half(args[1], 0);
            let dst = e.alloc_reg();
            e.asm.mulfull(dst, SCRATCH, a, b);
            e.asm.alu_rr(AluOp::Xor, Width::W64, false, dst, SCRATCH);
            e.consume(args[0]);
            e.consume(args[1]);
            e.def_half(v, 0, dst);
        }
        InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => {
            let v = result.expect("select result");
            if ty == Type::F64 {
                let c = e.use_half(cond, 0);
                e.asm.cmp_ri(Width::W8, c, 0);
                e.consume(cond);
                let t = e.use_float(if_true);
                let f = e.use_float(if_false);
                let dst = e.alloc_freg();
                let skip = e.asm.new_label();
                e.asm.fmov(dst, f);
                let use_true = e.asm.new_label();
                e.asm.jcc(Cond::Ne, use_true);
                e.asm.jmp(skip);
                e.asm.bind(use_true);
                e.asm.fmov(dst, t);
                e.asm.bind(skip);
                e.consume(if_true);
                e.consume(if_false);
                e.def_float(v, dst);
            } else {
                let regs = ty.reg_count();
                let c = e.use_half(cond, 0);
                e.asm.cmp_ri(Width::W8, c, 0);
                e.consume(cond);
                for half in 0..regs as u8 {
                    e.pinned.clear();
                    let t = e.use_half(if_true, half);
                    let f = e.use_half(if_false, half);
                    let dst = e.alloc_reg();
                    let skip = e.asm.new_label();
                    e.asm.mov_rr(dst, f);
                    let use_true = e.asm.new_label();
                    e.asm.jcc(Cond::Ne, use_true);
                    e.asm.jmp(skip);
                    e.asm.bind(use_true);
                    e.asm.mov_rr(dst, t);
                    e.asm.bind(skip);
                    e.def_half(v, half, dst);
                }
                e.consume(if_true);
                e.consume(if_false);
            }
        }
        InstData::Load { ty, ptr, offset } => {
            let v = result.expect("load result");
            let p = e.use_half(ptr, 0);
            e.consume(ptr);
            match ty {
                Type::F64 => {
                    let f = e.alloc_freg();
                    e.asm.fload(f, MemArg::base_disp(p, offset));
                    e.def_float(v, f);
                }
                Type::I128 | Type::String => {
                    let lo = e.alloc_reg();
                    e.asm.load(Width::W64, lo, MemArg::base_disp(p, offset));
                    e.pinned.push(lo);
                    let hi = e.alloc_reg();
                    e.asm.load(Width::W64, hi, MemArg::base_disp(p, offset + 8));
                    e.def_half(v, 0, lo);
                    e.def_half(v, 1, hi);
                }
                _ => {
                    let dst = e.alloc_reg();
                    e.asm.load(ty_width(ty), dst, MemArg::base_disp(p, offset));
                    e.def_half(v, 0, dst);
                }
            }
        }
        InstData::Store {
            ty,
            ptr,
            value,
            offset,
        } => {
            let p = e.use_half(ptr, 0);
            match ty {
                Type::F64 => {
                    let f = e.use_float(value);
                    e.asm.fstore(f, MemArg::base_disp(p, offset));
                }
                Type::I128 | Type::String => {
                    let lo = e.use_half(value, 0);
                    e.asm.store(Width::W64, lo, MemArg::base_disp(p, offset));
                    let hi = e.use_half(value, 1);
                    e.asm
                        .store(Width::W64, hi, MemArg::base_disp(p, offset + 8));
                }
                _ => {
                    let s = e.use_half(value, 0);
                    e.asm.store(ty_width(ty), s, MemArg::base_disp(p, offset));
                }
            }
            e.consume(ptr);
            e.consume(value);
        }
        InstData::Gep {
            base,
            offset,
            index,
            scale,
        } => {
            let v = result.expect("gep result");
            let b = e.use_half(base, 0);
            let mem = match index {
                Some(i) => {
                    let ir = e.use_half(i, 0);
                    e.consume(i);
                    MemArg {
                        base: b,
                        index: Some((ir, scale)),
                        disp: offset as i32,
                    }
                }
                None => MemArg::base_disp(b, offset as i32),
            };
            e.consume(base);
            let dst = e.alloc_reg();
            e.asm.lea(dst, mem);
            e.def_half(v, 0, dst);
        }
        InstData::StackAddr { slot } => {
            let v = result.expect("stackaddr result");
            let dst = e.alloc_reg();
            let off = e.stack_slot_off[slot.index()] as i32 + e.sp_adjust;
            e.asm.lea(dst, MemArg::base_disp(SP, off));
            e.def_half(v, 0, dst);
        }
        InstData::Call { callee, args } => {
            let decl = e.func.ext_func(callee).clone();
            let mut flat = Vec::new();
            for &a in &args {
                let regs = e.func.value_type(a).reg_count();
                for half in 0..regs as u8 {
                    flat.push((a, half));
                }
            }
            // Ensure every argument is stored (flush handles cached ones).
            e.emit_call(&decl.name, &flat, result);
            for &a in &args {
                e.consume(a);
            }
        }
        InstData::FuncAddr { func: fid } => {
            let v = result.expect("funcaddr result");
            let name = e.module.function(fid).name.clone();
            let dst = e.alloc_reg();
            e.asm.mov_ri64_sym(dst, SymbolRef::named(&name));
            e.def_half(v, 0, dst);
        }
        InstData::Jump { dest } => {
            e.emit_edge_copies(block, dest);
            let l = e.labels[dest.index()];
            e.asm.jmp(l);
        }
        InstData::Branch {
            cond,
            then_dest,
            else_dest,
        } => {
            e.flush_dirty();
            let c = e.use_half(cond, 0);
            e.consume(cond);
            e.asm.cmp_ri(Width::W8, c, 0);
            let saved = e.cache.clone();
            let then_tramp = e.asm.new_label();
            e.asm.jcc(Cond::Ne, then_tramp);
            // Else path (fallthrough).
            e.emit_edge_copies(block, else_dest);
            let le = e.labels[else_dest.index()];
            e.asm.jmp(le);
            // Then path (register state as of the branch).
            e.cache = saved;
            e.asm.bind(then_tramp);
            e.emit_edge_copies(block, then_dest);
            let lt = e.labels[then_dest.index()];
            e.asm.jmp(lt);
        }
        InstData::Return { value } => {
            if let Some(v) = value {
                let ty = e.func.value_type(v);
                if ty == Type::F64 {
                    let f = e.use_float(v);
                    e.asm.fmov_to_gpr(TX64_ABI.ret, f);
                } else if ty.reg_count() == 2 {
                    // Route through scratch: lo/hi may alias r0/r1.
                    let lo = e.use_half(v, 0);
                    let hi = e.use_half(v, 1);
                    e.asm.mov_rr(SCRATCH, hi);
                    if lo != TX64_ABI.ret {
                        e.asm.mov_rr(TX64_ABI.ret, lo);
                    }
                    e.asm.mov_rr(TX64_ABI.ret_hi, SCRATCH);
                } else {
                    let lo = e.use_half(v, 0);
                    if lo != TX64_ABI.ret {
                        e.asm.mov_rr(TX64_ABI.ret, lo);
                    }
                }
                e.consume(v);
            }
            e.epilogue();
        }
        InstData::Unreachable => e.asm.trap(0),
    }
    Ok(())
}

fn emit_binary(
    e: &mut Emit,
    op: Opcode,
    ty: Type,
    args: [Value; 2],
    v: Value,
) -> Result<(), BackendError> {
    if ty == Type::F64 {
        let a = e.use_float(args[0]);
        let b = e.use_float(args[1]);
        let dst = e.alloc_freg();
        let fop = match op {
            Opcode::FAdd => qc_target::FaluOp::Add,
            Opcode::FSub => qc_target::FaluOp::Sub,
            Opcode::FMul => qc_target::FaluOp::Mul,
            Opcode::FDiv => qc_target::FaluOp::Div,
            _ => return Err(BackendError::new(format!("float op {op} expected"))),
        };
        e.asm.falu(fop, dst, a, b);
        e.consume(args[0]);
        e.consume(args[1]);
        e.def_float(v, dst);
        return Ok(());
    }
    if ty == Type::I128 {
        return emit_binary128(e, op, args, v);
    }
    let width = ty_width(ty);
    match op {
        Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem => {
            let a = e.use_half(args[0], 0);
            let b = e.use_half(args[1], 0);
            let dst = e.alloc_reg();
            let signed = matches!(op, Opcode::SDiv | Opcode::SRem);
            let rem = matches!(op, Opcode::SRem | Opcode::URem);
            e.asm.div(signed, rem, width, dst, a, b);
            e.consume(args[0]);
            e.consume(args[1]);
            e.def_half(v, 0, dst);
        }
        Opcode::SAddOvf | Opcode::SSubOvf | Opcode::SMulOvf => {
            let a = e.use_half(args[0], 0);
            let b = e.use_half(args[1], 0);
            e.asm.mov_rr(SCRATCH, a);
            e.asm.alu_rr(alu_of(op), width, true, SCRATCH, b);
            e.consume(args[0]);
            e.consume(args[1]);
            let dst = e.alloc_reg();
            e.asm.setcc(Cond::O, dst);
            e.def_half(v, 0, dst);
        }
        _ => {
            let trapping = op.can_trap();
            let a = e.use_half(args[0], 0);
            let b = e.use_half(args[1], 0);
            let dst = e.alloc_reg();
            e.asm.mov_rr(dst, a);
            e.asm.alu_rr(alu_of(op), width, trapping, dst, b);
            if trapping {
                e.emit_trap_check();
            }
            e.consume(args[0]);
            e.consume(args[1]);
            e.def_half(v, 0, dst);
        }
    }
    Ok(())
}

fn emit_binary128(
    e: &mut Emit,
    op: Opcode,
    args: [Value; 2],
    v: Value,
) -> Result<(), BackendError> {
    match op {
        Opcode::Add | Opcode::Sub | Opcode::SAddTrap | Opcode::SSubTrap => {
            let (lo_op, hi_op) = if matches!(op, Opcode::Add | Opcode::SAddTrap) {
                (AluOp::Add, AluOp::Adc)
            } else {
                (AluOp::Sub, AluOp::Sbb)
            };
            let trapping = op.can_trap();
            let alo = e.use_half(args[0], 0);
            let blo = e.use_half(args[1], 0);
            let dlo = e.alloc_reg();
            e.pinned.push(dlo);
            e.asm.mov_rr(dlo, alo);
            e.asm.alu_rr(lo_op, Width::W64, true, dlo, blo);
            let ahi = e.use_half(args[0], 1);
            let bhi = e.use_half(args[1], 1);
            let dhi = e.alloc_reg();
            e.asm.mov_rr(dhi, ahi);
            e.asm.alu_rr(hi_op, Width::W64, true, dhi, bhi);
            if trapping {
                e.emit_trap_check();
            }
            e.consume(args[0]);
            e.consume(args[1]);
            e.def_half(v, 0, dlo);
            e.def_half(v, 1, dhi);
            Ok(())
        }
        Opcode::SMulTrap => {
            let flat = vec![(args[0], 0), (args[0], 1), (args[1], 0), (args[1], 1)];
            e.emit_call("rt_mul128_ovf", &flat, Some(v));
            e.consume(args[0]);
            e.consume(args[1]);
            Ok(())
        }
        Opcode::SDiv => {
            let flat = vec![(args[0], 0), (args[0], 1), (args[1], 0), (args[1], 1)];
            e.emit_call("rt_i128_div", &flat, Some(v));
            e.consume(args[0]);
            e.consume(args[1]);
            Ok(())
        }
        other => Err(BackendError::new(format!(
            "DirectEmit does not support {other} at i128"
        ))),
    }
}

fn emit_cmp128(e: &mut Emit, op: CmpOp, args: [Value; 2], v: Value) {
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let alo = e.use_half(args[0], 0);
            let blo = e.use_half(args[1], 0);
            e.asm.mov_rr(SCRATCH, alo);
            e.asm.alu_rr(AluOp::Xor, Width::W64, false, SCRATCH, blo);
            let ahi = e.use_half(args[0], 1);
            let bhi = e.use_half(args[1], 1);
            let t = e.alloc_reg();
            e.asm.mov_rr(t, ahi);
            e.asm.alu_rr(AluOp::Xor, Width::W64, false, t, bhi);
            e.asm.alu_rr(AluOp::Or, Width::W64, true, t, SCRATCH);
            e.consume(args[0]);
            e.consume(args[1]);
            let dst = e.alloc_reg();
            e.asm.setcc(cond_of(op), dst);
            e.def_half(v, 0, dst);
        }
        _ => {
            // Compute flags of (x - y) over 128 bits via sub/sbb; swap
            // operands for Gt/Le so only Lt/Ge conditions are needed.
            let (x, y, cond) = match op {
                CmpOp::SLt => (args[0], args[1], Cond::Lt),
                CmpOp::SGe => (args[0], args[1], Cond::Ge),
                CmpOp::SGt => (args[1], args[0], Cond::Lt),
                CmpOp::SLe => (args[1], args[0], Cond::Ge),
                CmpOp::ULt => (args[0], args[1], Cond::B),
                CmpOp::UGe => (args[0], args[1], Cond::Ae),
                CmpOp::UGt => (args[1], args[0], Cond::B),
                CmpOp::ULe => (args[1], args[0], Cond::Ae),
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            };
            let xlo = e.use_half(x, 0);
            let ylo = e.use_half(y, 0);
            e.asm.mov_rr(SCRATCH, xlo);
            e.asm.alu_rr(AluOp::Sub, Width::W64, true, SCRATCH, ylo);
            let xhi = e.use_half(x, 1);
            let yhi = e.use_half(y, 1);
            let t = e.alloc_reg();
            e.asm.mov_rr(t, xhi);
            e.asm.alu_rr(AluOp::Sbb, Width::W64, true, t, yhi);
            e.consume(args[0]);
            e.consume(args[1]);
            let dst = e.alloc_reg();
            e.asm.setcc(cond, dst);
            e.def_half(v, 0, dst);
        }
    }
}

fn emit_cast(e: &mut Emit, op: CastOp, to: Type, arg: Value, v: Value) -> Result<(), BackendError> {
    let from = e.func.value_type(arg);
    match op {
        CastOp::Zext => {
            let a = e.use_half(arg, 0);
            let dst = e.alloc_reg();
            e.asm.mov_rr(dst, a);
            e.consume(arg);
            e.def_half(v, 0, dst);
            if to == Type::I128 {
                let hi = e.alloc_reg();
                e.asm.mov_ri(hi, 0);
                e.def_half(v, 1, hi);
            }
        }
        CastOp::Sext => {
            if from == Type::I128 {
                let lo = e.use_half(arg, 0);
                let dlo = e.alloc_reg();
                e.pinned.push(dlo);
                e.asm.mov_rr(dlo, lo);
                let hi = e.use_half(arg, 1);
                let dhi = e.alloc_reg();
                e.asm.mov_rr(dhi, hi);
                e.consume(arg);
                e.def_half(v, 0, dlo);
                e.def_half(v, 1, dhi);
                return Ok(());
            }
            let a = e.use_half(arg, 0);
            let dst = e.alloc_reg();
            if from == Type::I64 || from == Type::Ptr {
                e.asm.mov_rr(dst, a);
            } else {
                e.asm.sext(ty_width(from), dst, a);
            }
            e.consume(arg);
            if to == Type::I128 {
                e.pinned.push(dst);
                let hi = e.alloc_reg();
                e.asm.mov_rr(hi, dst);
                e.asm.alu_ri(AluOp::Sar, Width::W64, false, hi, 63);
                e.def_half(v, 0, dst);
                e.def_half(v, 1, hi);
            } else {
                e.def_half(v, 0, dst);
            }
        }
        CastOp::Trunc => {
            let a = e.use_half(arg, 0);
            let dst = e.alloc_reg();
            e.asm.mov_rr(dst, a);
            match to {
                Type::I64 | Type::Ptr => {}
                t => {
                    // Mask via a width-limited AND with all-ones.
                    e.asm.alu_ri(AluOp::And, ty_width(t), false, dst, -1);
                }
            }
            e.consume(arg);
            e.def_half(v, 0, dst);
        }
        CastOp::SiToF => {
            let a = e.use_half(arg, 0);
            let src = if from == Type::I64 {
                a
            } else if from == Type::I128 {
                return Err(BackendError::new("sitof from i128 unsupported"));
            } else {
                e.asm.sext(ty_width(from), SCRATCH, a);
                SCRATCH
            };
            let f = e.alloc_freg();
            e.asm.cvt_si2f(f, src);
            e.consume(arg);
            e.def_float(v, f);
        }
        CastOp::FToSi => {
            let f = e.use_float(arg);
            let dst = e.alloc_reg();
            e.asm.cvt_f2si(dst, f);
            if to != Type::I64 {
                e.asm.alu_ri(AluOp::And, ty_width(to), false, dst, -1);
            }
            e.consume(arg);
            e.def_half(v, 0, dst);
        }
    }
    Ok(())
}
