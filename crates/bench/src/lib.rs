//! Shared infrastructure for the benchmark harness binaries.
//!
//! One binary per paper table/figure regenerates the corresponding data
//! (see DESIGN.md's experiment index). Compile times are wall-clock;
//! execution is reported in deterministic model cycles, converted to
//! "model seconds" at [`MODEL_HZ`] for compile-vs-run tradeoff plots
//! (Figures 6–7).

use qc_backend::{Backend, CompileStats};
use qc_engine::{EngineError, Session};
use qc_storage::Database;
use qc_timing::{Report, TimeTrace};
use qc_workloads::BenchQuery;
use std::sync::Arc;
use std::time::Duration;

/// Model clock used to convert cycles into seconds (1 model-GHz).
pub const MODEL_HZ: f64 = 1e9;

/// Result of running one query through one back-end.
#[derive(Debug)]
pub struct QueryRun {
    /// Query name.
    pub name: String,
    /// Wall-clock compile time.
    pub compile: Duration,
    /// Execution cycles.
    pub cycles: u64,
    /// Output row count (sanity).
    pub rows: usize,
    /// Merged compile statistics.
    pub stats: CompileStats,
}

/// Aggregate of a suite run.
#[derive(Debug, Default)]
pub struct SuiteRun {
    /// Per-query results.
    pub queries: Vec<QueryRun>,
    /// Functions compiled in total.
    pub functions: usize,
}

impl SuiteRun {
    /// Total wall-clock compile time.
    pub fn total_compile(&self) -> Duration {
        self.queries.iter().map(|q| q.compile).sum()
    }

    /// Total execution cycles.
    pub fn total_cycles(&self) -> u64 {
        self.queries.iter().map(|q| q.cycles).sum()
    }

    /// Total execution time in model seconds.
    pub fn total_exec_secs(&self) -> f64 {
        self.total_cycles() as f64 / MODEL_HZ
    }
}

/// Compiles and executes a whole suite with `backend`, collecting phase
/// timings into `trace`. Compilation uses the direct (uncached,
/// sequential) path so every iteration pays the full compile — this is
/// the paper's measurement configuration, not the serving one.
///
/// # Errors
/// Propagates engine errors (with the offending query named).
pub fn run_suite(
    db: &Database,
    suite: &[BenchQuery],
    backend: &Arc<dyn Backend>,
    trace: &TimeTrace,
) -> Result<SuiteRun, EngineError> {
    let session = Session::new(db);
    let mut out = SuiteRun::default();
    for q in suite {
        let run = session
            .prepare(&q.plan)?
            .backend(Arc::clone(backend))
            .trace(trace)
            .direct();
        let mut compiled = run.compile()?;
        let result = run.execute_compiled(&mut compiled)?;
        out.functions += compiled.compile_stats.functions;
        out.queries.push(QueryRun {
            name: q.name.clone(),
            compile: compiled.compile_time,
            cycles: result.exec_stats.cycles,
            rows: result.rows.len(),
            stats: compiled.compile_stats.clone(),
        });
    }
    Ok(out)
}

/// Compiles a whole suite without executing (compile-time studies).
/// Uses the same direct, uncached compile path as [`run_suite`].
///
/// # Errors
/// Propagates engine errors.
pub fn compile_suite(
    db: &Database,
    suite: &[BenchQuery],
    backend: &Arc<dyn Backend>,
    trace: &TimeTrace,
) -> Result<(Duration, CompileStats), EngineError> {
    let session = Session::new(db);
    let mut total = Duration::ZERO;
    let mut stats = CompileStats::default();
    for q in suite {
        let compiled = session
            .prepare(&q.plan)?
            .backend(Arc::clone(backend))
            .trace(trace)
            .direct()
            .compile()?;
        total += compiled.compile_time;
        stats.merge(&compiled.compile_stats);
    }
    Ok((total, stats))
}

/// Wraps a boxed back-end in the shared handle the session API takes.
pub fn shared(backend: Box<dyn Backend>) -> Arc<dyn Backend> {
    Arc::from(backend)
}

/// Prints a phase-breakdown report scaled to percent, in a stable order.
pub fn print_breakdown(title: &str, report: &Report) {
    println!("== {title} ==");
    print!("{}", report.render());
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Scale-factor / suite-size options shared by the harness binaries, read
/// from environment variables so CI can shrink them:
/// `QC_SF` (default 1.0), `QC_QUERIES` (default: full suite).
pub fn env_sf(default: f64) -> f64 {
    std::env::var("QC_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Truncates a suite according to `QC_QUERIES`.
pub fn env_suite(mut suite: Vec<BenchQuery>) -> Vec<BenchQuery> {
    if let Some(n) = std::env::var("QC_QUERIES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        suite.truncate(n);
    }
    suite
}

/// Percentile summary (nearest-rank) of raw latency samples, shared by
/// the serving and fault-tolerance harnesses.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst sample.
    pub max: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
}

impl LatencyStats {
    /// Computes the summary from raw samples (any order). Returns
    /// `None` for an empty slice.
    pub fn from_samples(samples: &[Duration]) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let rank = (p / 100.0 * sorted.len() as f64).ceil().max(1.0) as usize;
            sorted[rank.min(sorted.len()) - 1]
        };
        let total: Duration = sorted.iter().sum();
        let max = *sorted.last().expect("non-empty samples");
        Some(LatencyStats {
            p50: pick(50.0),
            p95: pick(95.0),
            p99: pick(99.0),
            max,
            mean: total / sorted.len() as u32,
        })
    }

    /// One-line rendering, e.g. for harness summaries.
    pub fn render(&self) -> String {
        format!(
            "p50 {} p95 {} p99 {} max {}",
            secs(self.p50),
            secs(self.p95),
            secs(self.p99),
            secs(self.max)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencyStats::from_samples(&samples).expect("non-empty");
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
    }

    #[test]
    fn latency_empty_and_singleton() {
        assert!(LatencyStats::from_samples(&[]).is_none());
        let one = LatencyStats::from_samples(&[Duration::from_secs(2)]).expect("one");
        assert_eq!(one.p50, Duration::from_secs(2));
        assert_eq!(one.p99, Duration::from_secs(2));
        assert_eq!(one.mean, Duration::from_secs(2));
    }
}
