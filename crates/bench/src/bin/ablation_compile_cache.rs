//! Compile-service ablation: cold vs. warm compilation through the
//! IR-keyed code cache, per back-end. A warm run re-compiles the same
//! suite against a populated cache and should pay only the
//! link/unwind-registration step, so the warm/cold ratio bounds how much
//! of each back-end's compile time is code generation.

use qc_backend::Backend;
use qc_bench::{env_sf, env_suite, secs};
use qc_engine::{backends, CompileService, CompileServiceConfig, Engine};
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let engine = Engine::new(&db);
    let trace = TimeTrace::disabled();
    println!("Compile-service ablation: cold vs. warm code cache (TX64)");
    println!(
        "  {:<12} {:>10} {:>10} {:>7} {:>9}",
        "backend", "cold", "warm", "ratio", "hit-rate"
    );
    for backend in backends::all_for(Isa::Tx64) {
        let backend: Arc<dyn Backend> = Arc::from(backend);
        let service = CompileService::new(CompileServiceConfig {
            cache_capacity: 4096,
            ..Default::default()
        });
        let mut cold = Duration::ZERO;
        let mut warm = Duration::ZERO;
        for pass in 0..2 {
            let total = if pass == 0 { &mut cold } else { &mut warm };
            for q in &suite {
                let prepared = engine.prepare(&q.plan, &q.name).expect("prepare");
                let compiled = service
                    .compile(&prepared, &backend, &trace)
                    .expect("compile");
                *total += compiled.compile_time;
            }
        }
        let stats = service.cache_stats();
        let lookups = stats.hits + stats.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            100.0 * stats.hits as f64 / lookups as f64
        };
        let ratio = if warm.is_zero() {
            f64::INFINITY
        } else {
            cold.as_secs_f64() / warm.as_secs_f64()
        };
        println!(
            "  {:<12} {:>10} {:>10} {:>6.1}x {:>8.1}%",
            backend.name(),
            secs(cold),
            secs(warm),
            ratio,
            hit_rate
        );
    }
}
