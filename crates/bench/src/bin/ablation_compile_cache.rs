//! Compile-service ablation: cold vs. warm compilation through the
//! two-tier artifact cache, per back-end.
//!
//! Three passes per back-end:
//!
//! * **cold** — fresh service, empty in-memory cache (the persistent
//!   store may still answer if a previous *process* populated it; that
//!   is the warm-restart effect this harness exists to show);
//! * **warm-lru** — same service, second pass: pure L1 hits, pays only
//!   the link/unwind-registration step;
//! * **warm-disk** — a fresh service (empty L1) over the same artifact
//!   directory: every compile is an L1 miss served from disk, the cost
//!   profile of a process restart.
//!
//! Set `QC_ARTIFACT_DIR` to persist the store across invocations — a
//! second run then reports `disk_hits > 0` in its cold pass (the CI
//! warm-restart smoke asserts exactly that, grepping the final
//! `artifact-store:` summary line). Without the variable a private
//! temporary directory is used and removed at exit.

use qc_backend::Backend;
use qc_bench::{env_sf, env_suite, secs};
use qc_engine::{backends, ArtifactStoreConfig, Session, SessionConfig};
use qc_storage::Database;
use qc_target::Isa;
use qc_timing::TimeTrace;
use qc_workloads::BenchQuery;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn session_with_store<'db>(db: &'db Database, dir: &Path) -> Session<'db> {
    let mut config = SessionConfig::with_artifact_store(ArtifactStoreConfig::at(dir.to_path_buf()));
    config.compile.cache_capacity = 4096;
    Session::with_config(db, config)
}

fn compile_pass(
    session: &Session<'_>,
    suite: &[BenchQuery],
    backend: &Arc<dyn Backend>,
    trace: &TimeTrace,
) -> Duration {
    let mut total = Duration::ZERO;
    for q in suite {
        let compiled = session
            .prepare(&q.plan)
            .expect("prepare")
            .backend(Arc::clone(backend))
            .trace(trace)
            .compile()
            .expect("compile");
        total += compiled.compile_time;
    }
    total
}

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::disabled();
    let (dir, persistent) = match std::env::var_os("QC_ARTIFACT_DIR") {
        Some(d) => (PathBuf::from(d), true),
        None => (
            std::env::temp_dir().join(format!("qc-ablation-cache-{}", std::process::id())),
            false,
        ),
    };

    println!("Compile-service ablation: cold vs. warm artifact cache (TX64)");
    println!(
        "  artifact dir: {} (persistent: {persistent})",
        dir.display()
    );
    println!(
        "  {:<12} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "backend", "cold", "warm-lru", "warm-disk", "lru-x", "disk-x"
    );

    let mut disk_hits_total = 0u64;
    let mut disk_writes_total = 0u64;
    let mut corrupt_total = 0u64;
    for backend in backends::all_for(Isa::Tx64) {
        let backend: Arc<dyn Backend> = Arc::from(backend);

        // Pass 1+2: one session, cold then warm-LRU.
        let session = session_with_store(&db, &dir);
        let cold = compile_pass(&session, &suite, &backend, &trace);
        let warm_lru = compile_pass(&session, &suite, &backend, &trace);
        let stats = session.compile_service().cache_stats();

        // Pass 3: a fresh service (empty L1) over the same store — the
        // warm-restart profile.
        let restarted = session_with_store(&db, &dir);
        let warm_disk = compile_pass(&restarted, &suite, &backend, &trace);
        let rstats = restarted.compile_service().cache_stats();

        disk_hits_total += stats.disk_hits + rstats.disk_hits;
        disk_writes_total += stats.disk_writes + rstats.disk_writes;
        corrupt_total += stats.disk_corrupt_rejected + rstats.disk_corrupt_rejected;

        let ratio = |base: Duration, v: Duration| {
            if v.is_zero() {
                f64::INFINITY
            } else {
                base.as_secs_f64() / v.as_secs_f64()
            }
        };
        println!(
            "  {:<12} {:>10} {:>10} {:>10} {:>7.1}x {:>7.1}x",
            backend.name(),
            secs(cold),
            secs(warm_lru),
            secs(warm_disk),
            ratio(cold, warm_lru),
            ratio(cold, warm_disk),
        );
    }

    // Machine-readable summary for the CI warm-restart smoke.
    println!("artifact-store: disk_hits={disk_hits_total} disk_writes={disk_writes_total} corrupt_rejected={corrupt_total}");

    if !persistent {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
