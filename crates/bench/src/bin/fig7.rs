//! Figure 7: best back-end per H-like query, minimizing compile + run
//! time, at a small and a large scale factor.
//!
//! Per-query compile times are sub-millisecond, so each suite is run
//! `REPS` times and the median per-query compile time is used (execution
//! cycles are deterministic and identical across runs).

use qc_bench::{env_sf, run_suite, shared, MODEL_HZ};
use qc_engine::backends;
use qc_target::Isa;
use qc_timing::TimeTrace;

const REPS: usize = 5;

fn main() {
    let base_sf = env_sf(1.0);
    let trace = TimeTrace::disabled();
    for (label, sf) in [("sf=small", base_sf), ("sf=large (25x)", base_sf * 25.0)] {
        let db = qc_storage::gen_hlike(sf);
        let suite = qc_workloads::hlike_suite();
        let mut per_query: Vec<(String, Vec<(String, f64)>)> =
            suite.iter().map(|q| (q.name.clone(), Vec::new())).collect();
        for backend in backends::all_for(Isa::Tx64) {
            let backend = shared(backend);
            let mut reps = Vec::new();
            for _ in 0..REPS {
                reps.push(run_suite(&db, &suite, &backend, &trace).expect("suite"));
            }
            for (qi, slot) in per_query.iter_mut().enumerate() {
                let mut compiles: Vec<f64> = reps
                    .iter()
                    .map(|r| r.queries[qi].compile.as_secs_f64())
                    .collect();
                compiles.sort_unstable_by(|a, b| a.partial_cmp(b).expect("ordered"));
                let compile = compiles[compiles.len() / 2];
                let cycles = reps[0].queries[qi].cycles;
                slot.1.push((
                    backend.name().to_string(),
                    compile + cycles as f64 / MODEL_HZ,
                ));
            }
        }
        println!("== Figure 7 ({label}): best back-end per query (compile+run) ==");
        let mut wins: std::collections::BTreeMap<String, usize> = Default::default();
        for (name, entries) in &per_query {
            let best = entries
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("ordered"))
                .expect("entries");
            *wins.entry(best.0.clone()).or_default() += 1;
            println!("  {name}: {} ({:.4}s)", best.0, best.1);
        }
        println!("  wins: {wins:?}");
        println!();
    }
}
