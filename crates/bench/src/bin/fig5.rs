//! Figure 5: DirectEmit compile-time breakdown (analysis vs. codegen;
//! liveness dominating the analysis pass).

use qc_bench::{compile_suite, env_sf, env_suite, print_breakdown, secs, shared};
use qc_engine::backends;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::new();
    let backend = backends::direct_emit();
    let (total, stats) = compile_suite(&db, &suite, &shared(backend), &trace).expect("compile");
    let report = trace.report();
    print_breakdown(
        "Figure 5: DirectEmit compile-time breakdown (TX64)",
        &report,
    );
    println!("total: {}  functions: {}", secs(total), stats.functions);
    let analysis = report.subtree("analysis");
    let live = analysis.fraction("liveness");
    println!(
        "liveness share of analysis: {:.1}%   (paper: ~75%)",
        100.0 * live
    );
}
