//! Table III: compile time and execution performance of all back-ends on
//! the DS-like suite, TX64 and TA64 (DirectEmit is TX64-only).

use qc_bench::{env_sf, env_suite, run_suite, secs, shared};
use qc_engine::backends;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::disabled();
    println!("Table III: DS-like suite, sum over all queries");
    println!(
        "{:<14} {:>12} {:>14} {:>12} {:>14}",
        "back-end", "tx64 comp", "tx64 exec[mc]", "ta64 comp", "ta64 exec[mc]"
    );
    for backend_name in [
        "Interpreter",
        "DirectEmit",
        "Clift",
        "LVM-cheap",
        "LVM-opt",
        "GCC/C",
    ] {
        let mut cells = Vec::new();
        for isa in [Isa::Tx64, Isa::Ta64] {
            let backend = match (backend_name, isa) {
                ("Interpreter", Isa::Tx64) => Some(backends::interpreter()),
                ("Interpreter", Isa::Ta64) => Some(backends::interpreter()),
                ("DirectEmit", Isa::Tx64) => Some(backends::direct_emit()),
                ("DirectEmit", Isa::Ta64) => None,
                ("Clift", _) => Some(backends::clift(isa)),
                ("LVM-cheap", _) => Some(backends::lvm_cheap(isa)),
                ("LVM-opt", _) => Some(backends::lvm_opt(isa)),
                ("GCC/C", _) => Some(backends::cgen(isa)),
                _ => unreachable!(),
            };
            match backend {
                Some(b) => {
                    let r = run_suite(&db, &suite, &shared(b), &trace).expect(backend_name);
                    cells.push((
                        secs(r.total_compile()),
                        format!("{:.3}s", r.total_exec_secs()),
                    ));
                }
                None => cells.push(("—".into(), "—".into())),
            }
        }
        println!(
            "{:<14} {:>12} {:>14} {:>12} {:>14}",
            backend_name, cells[0].0, cells[0].1, cells[1].0, cells[1].1
        );
    }
    println!("\n[mc] = model-cycle seconds at 1 model-GHz (deterministic)");
}
