//! Figure 6: per-query compile time vs. execution time for every back-end
//! (CSV series, one line per query per back-end).

use qc_bench::{env_sf, env_suite, run_suite, shared, MODEL_HZ};
use qc_engine::backends;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::disabled();
    println!("backend,isa,query,compile_secs,exec_model_secs,rows");
    for isa in [Isa::Tx64, Isa::Ta64] {
        for backend in backends::all_for(isa) {
            let backend = shared(backend);
            let r = run_suite(&db, &suite, &backend, &trace).expect("suite");
            for q in &r.queries {
                println!(
                    "{},{},{},{:.6},{:.6},{}",
                    backend.name(),
                    isa,
                    q.name,
                    q.compile.as_secs_f64(),
                    q.cycles as f64 / MODEL_HZ,
                    q.rows
                );
            }
        }
    }
}
