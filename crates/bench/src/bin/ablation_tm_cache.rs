//! Sec. V-A2 ablation: TargetMachine construction cached per thread vs.
//! rebuilt per compilation.

use qc_bench::{compile_suite, env_sf, env_suite, secs, shared};
use qc_engine::backends;
use qc_lvm::{LvmOptions, OptMode};
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    println!("Sec. V-A2 ablation: TargetMachine caching (TX64, cheap mode)");
    for cached in [true, false] {
        let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
        o.cache_target_machine = cached;
        let backend = backends::lvm_with(o);
        let trace = TimeTrace::new();
        let (total, _) = compile_suite(&db, &suite, &shared(backend), &trace).expect("compile");
        let tm = trace.report().total("targetmachine").unwrap_or_default();
        println!(
            "  cached={cached}: compile {} (targetmachine {})",
            secs(total),
            secs(tm)
        );
    }
}
