//! Figure 2: compile-time breakdown of the LLVM-analog on TX64, cheap
//! (-O0 + FastISel) vs. optimized (-O2 + SelectionDAG), plus the FastISel
//! fallback statistics of Sec. V-B3.

use qc_bench::{compile_suite, env_sf, env_suite, print_breakdown, secs, shared};
use qc_engine::backends;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    for (label, backend) in [
        ("cheap (-O0, FastISel)", backends::lvm_cheap(Isa::Tx64)),
        (
            "optimized (-O2, SelectionDAG)",
            backends::lvm_opt(Isa::Tx64),
        ),
    ] {
        let trace = TimeTrace::new();
        let (total, stats) = compile_suite(&db, &suite, &shared(backend), &trace).expect("compile");
        let report = trace.report();
        print_breakdown(&format!("Figure 2: LVM {label} on TX64"), &report);
        println!("total: {}  (functions: {})", secs(total), stats.functions);
        for key in [
            "fallback_calls",
            "fallback_i128",
            "fallback_struct",
            "fallback_intrinsic",
        ] {
            if let Some(v) = stats.counters.get(key) {
                println!("  {key}: {v}");
            }
        }
        println!();
    }
}
