//! Table I: compile-time breakdown of the GCC/C back-end on the DS-like
//! suite (parse share, optimization/codegen, assembler, linker).

use qc_bench::{compile_suite, env_sf, env_suite, print_breakdown, secs, shared};
use qc_engine::backends;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::new();
    let backend = backends::cgen(qc_target::Isa::Tx64);
    let (total, stats) = compile_suite(&db, &suite, &shared(backend), &trace).expect("compile");
    let report = trace.report();
    print_breakdown(
        "Table I: GCC/C compile-time breakdown (TX64, DS-like suite)",
        &report,
    );
    println!("\ntotal wall-clock compile time: {}", secs(total));
    println!("functions compiled: {}", stats.functions);
    let cc1: f64 = ["cc1_parse", "cc1_gimplify", "cc1_optimize", "cc1_codegen"]
        .iter()
        .map(|p| report.fraction(p))
        .sum();
    println!("compiler-proper share: {:.1}%", 100.0 * cc1);
    println!(
        "parse share:           {:.1}%  (paper: ~13%)",
        100.0 * report.fraction("cc1_parse")
    );
    println!(
        "assembler share:       {:.1}%",
        100.0 * report.fraction("as")
    );
    println!(
        "linker share:          {:.1}%",
        100.0 * report.fraction("ld")
    );
}
