//! Sec. V-A2 ablation: Small-PIC vs. large code model. Small-PIC keeps
//! FastISel on the fast path for calls (the large model falls back to
//! SelectionDAG on every call) at the cost of a PLT double-jump — which,
//! as the paper reports, makes no measurable run-time difference.

use qc_bench::{env_sf, env_suite, run_suite, secs, shared};
use qc_engine::backends;
use qc_lvm::{LvmOptions, OptMode};
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    println!("Sec. V-A2 ablation: code model (TX64, cheap mode)");
    let trace = TimeTrace::disabled();
    for small_pic in [true, false] {
        let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
        o.small_pic = small_pic;
        let backend = backends::lvm_with(o);
        let r = run_suite(&db, &suite, &shared(backend), &trace).expect("suite");
        let fallbacks: u64 = r
            .queries
            .iter()
            .flat_map(|q| q.stats.counters.get("fallback_calls"))
            .sum();
        println!(
            "  small_pic={small_pic}: compile {} | exec {:.3}s | call fallbacks {}",
            secs(r.total_compile()),
            r.total_exec_secs(),
            fallbacks
        );
    }
    println!("  (the paper found no measurable run-time difference from the PLT)");
}
