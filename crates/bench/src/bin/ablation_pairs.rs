//! Sec. V-A2 ablation: `{i64,i64}` struct representation vs. two scalar
//! values — compile time and FastISel fallback counts.

use qc_bench::{compile_suite, env_sf, env_suite, secs, shared};
use qc_engine::backends;
use qc_lvm::{LvmOptions, OptMode, PairRepr};
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    println!("Sec. V-A2 ablation: pair representation (TX64)");
    for mode in [OptMode::Cheap, OptMode::Optimized] {
        for repr in [PairRepr::Scalars, PairRepr::Struct] {
            let mut o = LvmOptions::defaults(Isa::Tx64, mode);
            o.pair_repr = repr;
            let backend = backends::lvm_with(o);
            let trace = TimeTrace::disabled();
            let (total, stats) =
                compile_suite(&db, &suite, &shared(backend), &trace).expect("compile");
            let fb: u64 = ["fallback_calls", "fallback_i128", "fallback_struct"]
                .iter()
                .filter_map(|k| stats.counters.get(*k))
                .sum();
            println!(
                "  {:?} {:?}: compile {} | fastisel fallbacks {}",
                mode,
                repr,
                secs(total),
                fb
            );
        }
    }
}
