//! Table II: execution speedup from the Cranelift-analog's added
//! instructions (crc32, overflow arithmetic, combined multiplication):
//! average and maximum speedup across the DS-like suite.

use qc_bench::{env_sf, env_suite, run_suite, shared};
use qc_clift::CliftExtensions;
use qc_engine::backends;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::disabled();
    let base = run_suite(
        &db,
        &suite,
        &shared(backends::clift_with(Isa::Tx64, CliftExtensions::default())),
        &trace,
    )
    .expect("baseline");
    println!("Table II: run-time speedup of CIR extension instructions (TX64)");
    println!("{:<22} {:>10} {:>10}", "disabled instruction", "avg", "max");
    for (label, ext) in [
        (
            "crc32",
            CliftExtensions {
                crc32: false,
                ..Default::default()
            },
        ),
        (
            "overflow arithmetic",
            CliftExtensions {
                overflow_arith: false,
                ..Default::default()
            },
        ),
        (
            "mul with full result",
            CliftExtensions {
                mulfull: false,
                ..Default::default()
            },
        ),
    ] {
        let without = run_suite(
            &db,
            &suite,
            &shared(backends::clift_with(Isa::Tx64, ext)),
            &trace,
        )
        .expect("variant");
        let mut speedups = Vec::new();
        for (b, w) in base.queries.iter().zip(&without.queries) {
            assert_eq!(b.name, w.name);
            if b.cycles > 0 {
                speedups.push(w.cycles as f64 / b.cycles as f64);
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let max = speedups.iter().cloned().fold(0.0f64, f64::max);
        println!("{label:<22} {avg:>9.3}x {max:>9.3}x");
    }
}
