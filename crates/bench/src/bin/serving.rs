//! Multi-query serving benchmark: drives a large batch of concurrent
//! DS-like sessions through the [`qc_engine::QueryScheduler`] (one
//! shared engine, compile service, and code cache) and reports
//! throughput, latency percentiles, worker utilization, and the
//! speedup over a single serving worker. A second section scales one
//! heavy query across [`qc_engine::MorselExecutor`] workers — the
//! intra-query parallelism axis.
//!
//! Every served result is checked byte-for-byte against the serial
//! engine path; any divergence exits non-zero (CI runs this binary as
//! the parallel-correctness smoke test).
//!
//! Flags: `--queries N` (default 1024), `--workers W` (default 4),
//! `--tier-up` (background-optimize long queries), `--max-queue N`
//! (admission queue depth; excess sessions are shed), `--shed
//! reject|oldest` (shed policy when `--max-queue` is set). Env:
//! `QC_SF`. Shed sessions are reported (greppable `shed sessions:`
//! line) and excluded from the byte-identical check — shedding is a
//! correct outcome under overload, not a divergence.

use qc_bench::{env_sf, secs, LatencyStats, MODEL_HZ};
use qc_engine::{
    backends, EngineConfig, MorselSchedule, OutcomeStatus, QueryScheduler, SchedulerConfig,
    ServeReport, Session, SessionConfig, SessionRequest, ShedPolicy,
};
use qc_runtime::SqlValue;
use qc_target::Isa;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn flag_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_queries = flag_usize(&args, "--queries", 1024);
    let workers = flag_usize(&args, "--workers", 4).max(1);
    let tier_up = args.iter().any(|a| a == "--tier-up");
    let max_queue = args
        .iter()
        .position(|a| a == "--max-queue")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let shed_policy = match args
        .iter()
        .position(|a| a == "--shed")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("oldest") => ShedPolicy::DropOldest,
        _ => ShedPolicy::RejectNew,
    };

    let sf = env_sf(0.02);
    let db = qc_storage::gen_dslike(sf);
    let session = Session::new(&db);
    let suite = qc_workloads::dslike_suite();
    let backend: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));

    // Serial reference results, one per distinct query shape.
    println!(
        "Serving benchmark: {n_queries} DS-like sessions, sf={sf}, backend={}",
        backend.name()
    );
    let mut reference: HashMap<String, Vec<Vec<SqlValue>>> = HashMap::new();
    let mut ref_cycles: HashMap<String, u64> = HashMap::new();
    for q in &suite {
        let result = session
            .prepare(&q.plan)
            .and_then(|run| run.backend(Arc::clone(&backend)).execute())
            .unwrap_or_else(|e| panic!("serial reference {} failed: {e}", q.name));
        ref_cycles.insert(q.name.clone(), result.exec_stats.cycles);
        reference.insert(q.name.clone(), result.rows);
    }

    let requests = |n: usize| -> Vec<SessionRequest> {
        (0..n)
            .map(|i| {
                let q = &suite[i % suite.len()];
                SessionRequest::new(q.name.clone(), q.plan.clone())
            })
            .collect()
    };
    let config = |w: usize| SchedulerConfig {
        workers: w,
        admission_limit: 32,
        morsel_credits: 8,
        tier_up_backend: tier_up.then(|| Arc::from(backends::lvm_opt(Isa::Tx64))),
        tier_up_inflight: 2,
        max_queue_depth: max_queue,
        shed_policy,
        ..Default::default()
    };
    let serve = |w: usize| -> ServeReport {
        // A fresh session per run: identical cold-cache conditions for
        // the 1-worker baseline and the W-worker measurement. Serving
        // through the session threads its prepared-statement cache
        // under admission, so repeated plan shapes skip planning too.
        let run_session = Session::new(&db);
        QueryScheduler::try_new(config(w))
            .expect("valid scheduler config")
            .serve_session(&run_session, &backend, requests(n_queries))
    };

    let baseline = serve(1);
    let report = serve(workers);

    let mut divergent = 0usize;
    let mut checked = 0usize;
    let mut shed_total = 0usize;
    for run in [&baseline, &report] {
        for o in &run.outcomes {
            match o.status {
                // Shedding under an explicit queue bound is a correct
                // overload outcome, not a failure.
                OutcomeStatus::Shed => {
                    shed_total += 1;
                    continue;
                }
                OutcomeStatus::Failed | OutcomeStatus::Killed => {
                    let err = o.error.as_deref().unwrap_or("unknown error");
                    eprintln!("session {} failed: {err}", o.name);
                    divergent += 1;
                    continue;
                }
                OutcomeStatus::Ok => {}
            }
            checked += 1;
            let expected = &reference[&o.name];
            if &o.rows != expected {
                eprintln!(
                    "session {} diverged from serial rows ({} vs {} rows)",
                    o.name,
                    o.rows.len(),
                    expected.len()
                );
                divergent += 1;
            }
        }
    }
    if max_queue.is_some() {
        println!(
            "  shed sessions: {shed_total} (policy {:?}, queue depth {})",
            shed_policy,
            max_queue.unwrap_or(0)
        );
    }

    for (label, r) in [("1 worker", &baseline), ("parallel", &report)] {
        // Shed sessions never ran; their zero latency would skew the
        // percentiles downward.
        let latencies: Vec<_> = r
            .outcomes
            .iter()
            .filter(|o| o.status != OutcomeStatus::Shed)
            .map(|o| o.latency)
            .collect();
        let stats = LatencyStats::from_samples(&latencies).expect("non-empty run");
        let tiered = r.outcomes.iter().filter(|o| o.tiered_up).count();
        println!(
            "  {label:<9} ({} workers): {:>8.1} q/s  {}  util {:>5.1}%  wall {}{}",
            r.workers,
            r.throughput_qps(),
            stats.render(),
            100.0 * r.utilization(),
            secs(r.wall),
            if tiered > 0 {
                format!("  tiered-up {tiered}")
            } else {
                String::new()
            }
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "  speedup at {workers} workers: {:.2}x wall, {:.2}x work-distribution (host cores: {cores})",
        report.throughput_qps() / baseline.throughput_qps().max(1e-9),
        report.parallel_speedup(),
    );
    if cores < workers {
        println!(
            "  note: host has {cores} core(s) for {workers} workers; wall-clock speedup is \
             core-bound, work-distribution shows the model-time scheduling parallelism"
        );
    }

    // Intra-query axis: one heavy query across morsel-executor
    // workers. Fine-grained morsels (vs the serving default of 2048)
    // so the heavy scans decompose into enough claims to spread.
    println!("\nIntra-query morsel scaling (heaviest suite query):");
    let heavy = suite
        .iter()
        .max_by_key(|q| ref_cycles[&q.name])
        .expect("non-empty suite");
    let intra_session = Session::with_config(
        &db,
        SessionConfig {
            engine: EngineConfig { morsel_size: 256 },
            ..Default::default()
        },
    );
    let stmt = intra_session.statement(&heavy.plan).expect("prepare");
    let mut serial_cycles = 0u64;
    for w in [1usize, 2, 4] {
        // Static schedule: on a host with fewer cores than workers,
        // work-stealing degenerates to claim-order luck (the first
        // scheduled thread drains the deques), so the deterministic
        // partition is the honest picture of the model-time scaling.
        let run = intra_session
            .run(stmt.clone())
            .backend(Arc::clone(&backend))
            .workers(w)
            .schedule(MorselSchedule::Static)
            .direct();
        let mut compiled = run.compile().expect("compile");
        let t0 = Instant::now();
        let result = run
            .execute_compiled(&mut compiled)
            .expect("parallel execute");
        let wall = t0.elapsed();
        if result.rows != reference[&heavy.name] {
            eprintln!("morsel executor diverged at {w} workers on {}", heavy.name);
            divergent += 1;
        }
        if w == 1 {
            serial_cycles = result.exec_stats.cycles;
        }
        // Critical-path cycles: serial sections plus the busiest
        // worker per parallel pipeline — the model-time lower bound on
        // one core per worker. The ratio to the 1-worker cycles is the
        // speedup this execution would see on real cores.
        println!(
            "  {} @ {w} workers: {:>10} cycles ({:.3} model-s)  critical path {:>10} \
             ({:.2}x model speedup)  wall {}  rows {}",
            heavy.name,
            result.exec_stats.cycles,
            result.exec_stats.cycles as f64 / MODEL_HZ,
            result.critical_path_cycles,
            serial_cycles as f64 / result.critical_path_cycles.max(1) as f64,
            secs(wall),
            result.rows.len()
        );
    }
    if divergent > 0 {
        eprintln!("\n{divergent} session(s) diverged from the serial path");
        std::process::exit(1);
    }
    println!(
        "\nall {} parallel results byte-identical to serial",
        checked + 3
    );
}
