//! Figure 4: compile-time breakdown of the Cranelift-analog on TX64
//! (IRGen, IRPasses, ISelPrepare+ISel, RegAlloc, Emit, Finish).

use qc_bench::{compile_suite, env_sf, env_suite, print_breakdown, secs, shared};
use qc_engine::backends;
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let trace = TimeTrace::new();
    let backend = backends::clift(Isa::Tx64);
    let (total, stats) = compile_suite(&db, &suite, &shared(backend), &trace).expect("compile");
    let report = trace.report();
    print_breakdown("Figure 4: Clift compile-time breakdown (TX64)", &report);
    println!("total: {}  functions: {}", secs(total), stats.functions);
    println!(
        "regalloc share: {:.1}%   (paper: the largest phase)",
        100.0 * report.fraction("regalloc")
    );
}
