//! Figure 3: LLVM-analog compile times on TA64 — FastISel vs. SelectionDAG
//! vs. GlobalISel (cheap and optimized).
//!
//! Phase times per configuration are a few milliseconds, so each
//! configuration is compiled `REPS` times and the median is reported
//! (the paper likewise reports repeated-run statistics).

use std::time::Duration;

use qc_bench::{compile_suite, env_sf, env_suite, secs, shared};
use qc_engine::backends;
use qc_lvm::{LvmOptions, OptMode};
use qc_target::Isa;
use qc_timing::TimeTrace;

const REPS: usize = 7;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let db = qc_storage::gen_dslike(env_sf(1.0));
    let suite = env_suite(qc_workloads::dslike_suite());
    let mut rows = Vec::new();
    for (label, mode, gisel) in [
        ("FastISel (cheap)", OptMode::Cheap, false),
        ("GlobalISel (cheap)", OptMode::Cheap, true),
        ("SelectionDAG (opt)", OptMode::Optimized, false),
        ("GlobalISel (opt)", OptMode::Optimized, true),
    ] {
        let mut o = LvmOptions::defaults(Isa::Ta64, mode);
        o.global_isel = gisel;
        let backend = shared(backends::lvm_with(o));
        let mut totals = Vec::new();
        let mut isels = Vec::new();
        for _ in 0..REPS {
            let trace = TimeTrace::new();
            let (total, _) = compile_suite(&db, &suite, &backend, &trace).expect("compile");
            totals.push(total);
            isels.push(trace.report().total("isel").unwrap_or_default());
        }
        let (total, isel) = (median(totals), median(isels));
        println!(
            "{label:<22} total {:>9}  isel {:>9}",
            secs(total),
            secs(isel)
        );
        rows.push((label, total, isel));
    }
    let isel_of = |l: &str| {
        rows.iter()
            .find(|(n, ..)| *n == l)
            .expect("row")
            .2
            .as_secs_f64()
    };
    println!();
    println!(
        "ISel phase: GlobalISel-cheap / FastISel-cheap = {:.2}x   (paper: ~2.7x slower)",
        isel_of("GlobalISel (cheap)") / isel_of("FastISel (cheap)")
    );
    println!(
        "ISel phase: SelectionDAG-opt / GlobalISel-opt = {:.2}x   (paper: GISel ~1.4x faster)",
        isel_of("SelectionDAG (opt)") / isel_of("GlobalISel (opt)")
    );
}
