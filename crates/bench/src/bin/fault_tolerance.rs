//! Fault-tolerance ablation: compile the suite through the standard
//! fallback chain while a seeded `ChaosBackend` injects panics and
//! errors into the optimizing tiers. Reports which tier served each
//! query, the downgrade/retry/panic counters, and the compile-time
//! overhead the faults added — the price of graceful degradation
//! instead of query failure.
//!
//! A second section exercises the *execution* fault envelope: a seeded
//! [`ChaosExecBackend`] panics inside ~10% of morsel calls while the
//! serving scheduler drives a batch of sessions. The process must not
//! crash, every surviving result must stay byte-identical to the
//! serial reference, and the section reports throughput and latency
//! percentiles under injection.
//!
//! Env knobs: `QC_SF` (scale factor), `QC_QUERIES` (suite prefix),
//! `QC_CHAOS_SEED` (schedule seed), `QC_CHAOS_PERMILLE` (per-call
//! compile-fault probability, default 300 = 30%), `QC_EXEC_PERMILLE`
//! (per-morsel exec-fault probability, default 100 = 10%),
//! `QC_SESSIONS` (serving-section session count, default 256).

use qc_backend::chaos::{ChaosBackend, ChaosExecBackend, ChaosFault, ExecFault};
use qc_bench::{env_sf, env_suite, secs, LatencyStats};
use qc_engine::{
    backends, CompileBudget, CompileService, FallbackChain, OutcomeStatus, QueryScheduler,
    SchedulerConfig, Session, SessionRequest,
};
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;
use std::time::Duration;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // The injected panics unwind through the service's catch_unwind;
    // keep their default-hook backtraces off the report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied());
        if !msg.is_some_and(|m| m.contains("chaos: injected")) {
            default_hook(info);
        }
    }));

    let seed = env_u64("QC_CHAOS_SEED", 0xC4A05);
    let permille = env_u64("QC_CHAOS_PERMILLE", 300).min(1000) as u16;
    let db = qc_storage::gen_hlike(env_sf(0.05));
    let suite = env_suite(qc_workloads::hlike_suite());
    let session = Session::new(&db);
    let service = CompileService::default();
    let trace = TimeTrace::disabled();

    // Top two tiers misbehave: the optimizer panics, the cheap JIT
    // errors out, each on ~permille/1000 of compile calls.
    let clean = FallbackChain::standard(Isa::Tx64);
    let mut tiers = clean.tiers().to_vec();
    tiers[0] = Arc::new(ChaosBackend::seeded(
        Arc::clone(&clean.tiers()[0]),
        seed,
        permille,
        ChaosFault::Panic,
    ));
    tiers[1] = Arc::new(ChaosBackend::seeded(
        Arc::clone(&clean.tiers()[1]),
        seed.wrapping_add(1),
        permille,
        ChaosFault::PermanentError,
    ));
    let chain = FallbackChain::new(tiers);
    let tier_names: Vec<&str> = chain.tiers().iter().map(|t| t.name()).collect();

    println!(
        "Fault-tolerance ablation: seeded chaos (seed={seed:#x}, p={}%) on {}",
        permille as f64 / 10.0,
        tier_names.join(" → ")
    );
    println!(
        "  {:<24} {:>12} {:>11} {:>10}",
        "query", "tier used", "downgrades", "compile"
    );

    let mut served_by = vec![0u64; chain.tiers().len()];
    let mut failed = 0u64;
    let mut clean_time = Duration::ZERO;
    let mut chaos_time = Duration::ZERO;
    let mut clean_lat = Vec::new();
    let mut chaos_lat = Vec::new();
    for q in &suite {
        let prepared = session.statement(&q.plan).expect("prepare");
        let prepared = prepared.query();
        // Clean baseline for the overhead column (cache-cold: the chaos
        // wrappers have distinct fingerprints, so no cross-pollution).
        if let Ok((c, _)) =
            service.compile_with_fallback(prepared, &clean, CompileBudget::default(), &trace)
        {
            clean_time += c.compile_time;
            clean_lat.push(c.compile_time);
        }
        match service.compile_with_fallback(prepared, &chain, CompileBudget::default(), &trace) {
            Ok((compiled, report)) => {
                served_by[report.tier_used] += 1;
                chaos_time += compiled.compile_time;
                chaos_lat.push(compiled.compile_time);
                println!(
                    "  {:<24} {:>12} {:>11} {:>10}",
                    q.name,
                    report.backend_name,
                    report.failures.len(),
                    secs(compiled.compile_time)
                );
            }
            Err(e) => {
                failed += 1;
                println!("  {:<24} FAILED: {e}", q.name);
            }
        }
    }

    println!("\nTier occupancy under chaos:");
    for (name, n) in tier_names.iter().zip(&served_by) {
        println!("  {name:<12} served {n:>3} queries");
    }
    if failed > 0 {
        println!("  {failed} queries failed every tier");
    }
    // Fault injection mostly shows up in tail latency: retries and
    // tier downgrades hit a minority of queries hard.
    for (label, samples) in [("clean", &clean_lat), ("chaotic", &chaos_lat)] {
        if let Some(stats) = LatencyStats::from_samples(samples) {
            println!("Compile latency ({label}): {}", stats.render());
        }
    }

    let f = service.fault_stats();
    println!("\nService fault counters:");
    println!("  panics caught      {:>6}", f.panics_caught);
    println!("  retries            {:>6}", f.retries);
    println!("  deadline overruns  {:>6}", f.deadline_overruns);
    println!("  downgrades         {:>6}", f.downgrades);
    println!("  workers respawned  {:>6}", f.workers_respawned);
    println!("  inline fallbacks   {:>6}", f.inline_fallbacks);
    println!(
        "\nCompile time: clean chain {} vs. chaotic chain {} ({:+.1}% overhead)",
        secs(clean_time),
        secs(chaos_time),
        if clean_time.is_zero() {
            0.0
        } else {
            100.0 * (chaos_time.as_secs_f64() - clean_time.as_secs_f64()) / clean_time.as_secs_f64()
        }
    );

    // ---- Execution-phase chaos: serving under injected morsel panics.
    let exec_permille = env_u64("QC_EXEC_PERMILLE", 100).min(1000) as u16;
    let n_sessions = env_u64("QC_SESSIONS", 256) as usize;
    println!(
        "\nServing under execution chaos: {n_sessions} sessions, {}% of morsel calls panic",
        exec_permille as f64 / 10.0
    );

    // Serial reference on the clean back-end, one result per shape.
    let clean_backend: Arc<dyn qc_backend::Backend> = Arc::from(backends::clift(Isa::Tx64));
    let mut reference = std::collections::HashMap::new();
    for q in &suite {
        let result = session
            .prepare(&q.plan)
            .and_then(|run| run.backend(Arc::clone(&clean_backend)).execute())
            .unwrap_or_else(|e| panic!("serial reference {} failed: {e}", q.name));
        reference.insert(q.name.clone(), result.rows);
    }

    let chaos_exec = Arc::new(ChaosExecBackend::seeded(
        Arc::clone(&clean_backend),
        seed.wrapping_add(2),
        exec_permille,
        ExecFault::Panic,
    ));
    let serve_backend: Arc<dyn qc_backend::Backend> = Arc::clone(&chaos_exec) as _;
    let requests: Vec<SessionRequest> = (0..n_sessions)
        .map(|i| {
            let q = &suite[i % suite.len()];
            SessionRequest::new(q.name.clone(), q.plan.clone())
        })
        .collect();
    let scheduler = QueryScheduler::try_new(SchedulerConfig {
        workers: 4,
        admission_limit: 8,
        morsel_credits: 4,
        ..Default::default()
    })
    .expect("valid scheduler config");
    let serve_session = Session::new(&db);
    let report = scheduler.serve_session(&serve_session, &serve_backend, requests);

    let mut divergent = 0usize;
    for o in &report.outcomes {
        if o.status == OutcomeStatus::Ok && o.rows != reference[&o.name] {
            eprintln!("session {} diverged from serial rows under chaos", o.name);
            divergent += 1;
        }
    }
    let ok = report
        .outcomes
        .iter()
        .filter(|o| o.status == OutcomeStatus::Ok)
        .count();
    let latencies: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.status != OutcomeStatus::Shed)
        .map(|o| o.latency)
        .collect();
    println!(
        "  outcomes: {ok} ok, {} failed, {} shed, {} killed  ({} morsel faults injected)",
        report.failed(),
        report.shed(),
        report.killed(),
        chaos_exec.injected()
    );
    println!(
        "  {:>8.1} q/s  util {:>5.1}%  wall {}",
        report.throughput_qps(),
        100.0 * report.utilization(),
        secs(report.wall)
    );
    if let Some(stats) = LatencyStats::from_samples(&latencies) {
        println!("  latency under injection: {}", stats.render());
    }
    if divergent > 0 {
        eprintln!("\n{divergent} surviving session(s) diverged under execution chaos");
        std::process::exit(1);
    }
    println!(
        "  all {ok} surviving results byte-identical to serial; process survived \
         every injected panic"
    );
}
