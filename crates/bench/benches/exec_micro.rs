//! Criterion micro-benchmarks of the execution substrate itself: raw
//! emulator decode/dispatch rate, runtime-call dispatch overhead, the
//! bytecode interpreter's dispatch loop, and the inline hash sequence —
//! the per-instruction costs underneath every cycle number in
//! EXPERIMENTS.md.
//!
//! These measure *host* wall-clock of the substrate, not model cycles:
//! emulating compiled code costs host time per decoded instruction, so
//! the interpreter can beat the emulated back-ends here even though its
//! deterministic cycle cost (the paper's metric) is far higher.

use criterion::{criterion_group, criterion_main, Criterion};
use qc_backend::Backend;
use qc_ir::{CmpOp, FunctionBuilder, Module, Opcode, Signature, Type};
use qc_runtime::RuntimeState;
use qc_target::Isa;
use qc_timing::TimeTrace;

/// `fn f(x, n)`: a counted loop running `n` times with eight ALU ops per
/// iteration — a pure decode/dispatch workload with no memory traffic.
fn alu_loop_module() -> Module {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let entry = b.entry_block();
    let lp = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let x = b.param(0);
    let n = b.param(1);
    let zero = b.iconst(Type::I64, 0);
    b.jump(lp);
    b.switch_to(lp);
    let i = b.phi(Type::I64, vec![(entry, zero)]);
    let acc = b.phi(Type::I64, vec![(entry, x)]);
    let t1 = b.add(Type::I64, acc, i);
    let t2 = b.binary(Opcode::Xor, Type::I64, t1, x);
    let t3 = b.binary(Opcode::RotR, Type::I64, t2, i);
    let t4 = b.mul(Type::I64, t3, x);
    let t5 = b.sub(Type::I64, t4, i);
    let t6 = b.binary(Opcode::Shl, Type::I64, t5, i);
    let t7 = b.binary(Opcode::Or, Type::I64, t6, x);
    let t8 = b.add(Type::I64, t7, acc);
    b.phi_add_incoming(acc, lp, t8);
    let one = b.iconst(Type::I64, 1);
    let i2 = b.add(Type::I64, i, one);
    b.phi_add_incoming(i, lp, i2);
    let c = b.icmp(CmpOp::SLt, Type::I64, i2, n);
    b.branch(c, lp, exit);
    b.switch_to(exit);
    b.ret(Some(t8));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    m
}

/// `fn f(n)`: calls `rt_alloc` in a loop — runtime dispatch overhead.
fn rt_call_loop_module() -> Module {
    let sig = Signature::new(vec![Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let entry = b.entry_block();
    let lp = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let n = b.param(0);
    let zero = b.iconst(Type::I64, 0);
    let callee = b.declare_ext_func(qc_ir::ExtFuncDecl {
        name: "rt_alloc".to_string(),
        sig: Signature::new(vec![Type::I64], Type::Ptr),
    });
    b.jump(lp);
    b.switch_to(lp);
    let i = b.phi(Type::I64, vec![(entry, zero)]);
    let sixteen = b.iconst(Type::I64, 16);
    let _p = b.call(callee, vec![sixteen]);
    let one = b.iconst(Type::I64, 1);
    let i2 = b.add(Type::I64, i, one);
    b.phi_add_incoming(i, lp, i2);
    let c = b.icmp(CmpOp::SLt, Type::I64, i2, n);
    b.branch(c, lp, exit);
    b.switch_to(exit);
    b.ret(Some(i2));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    m
}

/// `fn f(x, n)`: the paper's Listing-2 hash sequence (crc32 ×2 +
/// long-mul-fold) in a loop.
fn hash_loop_module() -> Module {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let mut b = FunctionBuilder::new("f", sig);
    let entry = b.entry_block();
    let lp = b.create_block();
    let exit = b.create_block();
    b.switch_to(entry);
    let x = b.param(0);
    let n = b.param(1);
    let zero = b.iconst(Type::I64, 0);
    let seed1 = b.iconst(Type::I64, 0x5851_f42d_4c95_7f2du64 as i64 as i128);
    let seed2 = b.iconst(Type::I64, 0x1405_7b7e_f767_814fu64 as i64 as i128);
    b.jump(lp);
    b.switch_to(lp);
    let i = b.phi(Type::I64, vec![(entry, zero)]);
    let acc = b.phi(Type::I64, vec![(entry, x)]);
    let c1 = b.crc32(seed1, acc);
    let c2 = b.crc32(seed2, acc);
    let thirty_two = b.iconst(Type::I64, 32);
    let hi = b.binary(Opcode::Shl, Type::I64, c2, thirty_two);
    let h = b.binary(Opcode::Or, Type::I64, c1, hi);
    let folded = b.long_mul_fold(h, seed1);
    b.phi_add_incoming(acc, lp, folded);
    let one = b.iconst(Type::I64, 1);
    let i2 = b.add(Type::I64, i, one);
    b.phi_add_incoming(i, lp, i2);
    let c = b.icmp(CmpOp::SLt, Type::I64, i2, n);
    b.branch(c, lp, exit);
    b.switch_to(exit);
    b.ret(Some(folded));
    let mut m = Module::new("m");
    m.push_function(b.finish());
    m
}

fn run_module(make: fn() -> Module, group_name: &str, args: &[u64], c: &mut Criterion) {
    let m = make();
    let mut group = c.benchmark_group(group_name);
    let mut entries: Vec<(&str, Box<dyn Backend>)> = vec![
        ("Interpreter", Box::new(qc_interp::InterpBackend::new())),
        ("DirectEmit", Box::new(qc_direct::DirectBackend::new())),
        (
            "Clift-tx64",
            Box::new(qc_clift::CliftBackend::new(Isa::Tx64)),
        ),
        (
            "Clift-ta64",
            Box::new(qc_clift::CliftBackend::new(Isa::Ta64)),
        ),
    ];
    for (name, backend) in entries.drain(..) {
        let mut exe = backend
            .compile(&m, &TimeTrace::disabled())
            .expect("compile");
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut state = RuntimeState::new();
                exe.call(&mut state, "f", std::hint::black_box(args))
                    .expect("run")
            });
        });
    }
    group.finish();
}

fn bench_alu_dispatch(c: &mut Criterion) {
    run_module(alu_loop_module, "emulate_alu_loop_1k", &[99, 1000], c);
}

fn bench_rt_dispatch(c: &mut Criterion) {
    run_module(rt_call_loop_module, "runtime_dispatch_100", &[100], c);
}

fn bench_hash_sequence(c: &mut Criterion) {
    run_module(hash_loop_module, "hash_sequence_1k", &[42, 1000], c);
}

criterion_group!(
    benches,
    bench_alu_dispatch,
    bench_rt_dispatch,
    bench_hash_sequence
);
criterion_main!(benches);
