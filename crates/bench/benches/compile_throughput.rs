//! Criterion micro-benchmarks: per-back-end compile throughput on one
//! representative query, plus interpreter vs. compiled execution.
//!
//! Uses the session's direct compile path: sequential, uncached, no
//! worker pool — every iteration pays the full compile.

use criterion::{criterion_group, criterion_main, Criterion};
use qc_engine::{backends, Session};
use qc_target::Isa;
use std::sync::Arc;

fn representative_query() -> qc_workloads::BenchQuery {
    qc_workloads::hlike_suite().remove(2) // H03: joins + group + sort
}

fn bench_compile(c: &mut Criterion) {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let q = representative_query();
    let stmt = session.statement(&q.plan).expect("prepare");
    let mut group = c.benchmark_group("compile");
    for backend in backends::all_for(Isa::Tx64) {
        let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
        let run = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend))
            .direct();
        group.bench_function(backend.name(), |b| {
            b.iter(|| run.compile().expect("compile"));
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let db = qc_storage::gen_hlike(0.05);
    let session = Session::new(&db);
    let q = representative_query();
    let stmt = session.statement(&q.plan).expect("prepare");
    let mut group = c.benchmark_group("execute_wallclock");
    for backend in [backends::interpreter(), backends::direct_emit()] {
        let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
        let run = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend))
            .direct();
        let mut compiled = run.compile().expect("compile");
        group.bench_function(backend.name(), |b| {
            b.iter(|| run.execute_compiled(&mut compiled).expect("execute"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_execute);
criterion_main!(benches);
