//! Criterion micro-benchmarks: per-back-end compile throughput on one
//! representative query, plus interpreter vs. compiled execution.

use criterion::{criterion_group, criterion_main, Criterion};
use qc_engine::{backends, Engine};
use qc_target::Isa;
use qc_timing::TimeTrace;

fn representative_query() -> qc_workloads::BenchQuery {
    qc_workloads::hlike_suite().remove(2) // H03: joins + group + sort
}

fn bench_compile(c: &mut Criterion) {
    let db = qc_storage::gen_hlike(0.05);
    let engine = Engine::new(&db);
    let q = representative_query();
    let prepared = engine.prepare(&q.plan, &q.name).expect("prepare");
    let mut group = c.benchmark_group("compile");
    for backend in backends::all_for(Isa::Tx64) {
        group.bench_function(backend.name(), |b| {
            b.iter(|| {
                engine
                    .compile(&prepared, backend.as_ref(), &TimeTrace::disabled())
                    .expect("compile")
            });
        });
    }
    group.finish();
}

fn bench_execute(c: &mut Criterion) {
    let db = qc_storage::gen_hlike(0.05);
    let engine = Engine::new(&db);
    let q = representative_query();
    let prepared = engine.prepare(&q.plan, &q.name).expect("prepare");
    let mut group = c.benchmark_group("execute_wallclock");
    for backend in [backends::interpreter(), backends::direct_emit()] {
        let mut compiled = engine
            .compile(&prepared, backend.as_ref(), &TimeTrace::disabled())
            .expect("compile");
        group.bench_function(backend.name(), |b| {
            b.iter(|| engine.execute(&prepared, &mut compiled).expect("execute"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_execute);
criterion_main!(benches);
