//! The GCC/C back-end (paper Sec. IV).
//!
//! The slowest but structurally distinctive pipeline: the engine
//! **generates C source text**, writes it to a temporary file, and invokes
//! the bundled `minicc` toolchain, which must lex and parse that text back
//! (the paper measures GCC's parsing alone at ~13% of compile time),
//! "gimplify" it into the middle-end IR, run the -O3 scalar optimizations,
//! generate code, emit **textual assembly**, run the assembler (`minias`,
//! which parses the text and encodes machine code), and finally the linker
//! (`minild`, building the loadable image — the `dlopen`/`dlsym` step).
//!
//! Phase scopes (Table I): `cgen` (C generation), `io`, `cc1_parse`,
//! `cc1_gimplify`, `cc1_optimize`, `cc1_codegen`, `as`, `ld`.

mod asmtext;
mod cprint;
mod minicc;

pub use cprint::print_c;

use qc_backend::{
    Backend, BackendError, CodeArtifact, CompileStats, Executable, NativeArtifact, NativeExecutable,
};
use qc_ir::Module;
use qc_runtime::resolve_runtime;
use qc_target::{ImageBuilder, Isa, UnwindEntry};
use qc_timing::TimeTrace;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The GCC/C-analog back-end.
#[derive(Debug)]
pub struct CgenBackend {
    isa: Isa,
    /// Whether to round-trip the generated C through a temporary file
    /// (modeling the external-process invocation; on by default).
    pub use_temp_files: bool,
}

impl CgenBackend {
    /// Creates the back-end.
    pub fn new(isa: Isa) -> Self {
        CgenBackend {
            isa,
            use_temp_files: true,
        }
    }
}

impl Backend for CgenBackend {
    fn name(&self) -> &'static str {
        "GCC/C"
    }

    fn isa(&self) -> Isa {
        self.isa
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        let (image, mut stats) = self
            .build_parts(module, trace)
            .map_err(|e| e.in_backend(self.name()))?;
        // Final step of the `ld` phase: relocation + load.
        let linked = {
            let _t = trace.scope("ld");
            image
                .link(&|name| resolve_runtime(name))
                .map_err(|e| BackendError::new(e.to_string()).in_backend(self.name()))?
        };
        stats.code_bytes = linked.len();
        Ok(Box::new(NativeExecutable::new(linked, stats)))
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        let (image, stats) = self
            .build_parts(module, trace)
            .map_err(|e| e.in_backend(self.name()))?;
        Ok(Some(Box::new(NativeArtifact::new(image, stats))))
    }
}

impl CgenBackend {
    /// The whole toolchain pipeline short of the final relocation/load
    /// step: C generation, temp-file IO, cc1, assembler, and the
    /// object-collection half of `ld`; `compile` links the image
    /// immediately, `compile_artifact` defers linking to instantiation.
    fn build_parts(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<(ImageBuilder, CompileStats), BackendError> {
        let mut stats = CompileStats::default();

        // --- C code generation (the query engine's side). ---
        let c_src = {
            let _t = trace.scope("cgen");
            cprint::print_c(module)
        };
        stats.bump("c_bytes", c_src.len() as u64);

        // --- Temp-file round trip (external compiler invocation). ---
        let c_src = if self.use_temp_files {
            let _t = trace.scope("io");
            let path = std::env::temp_dir().join(format!(
                "qc_cgen_{}_{}.c",
                std::process::id(),
                TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            let write_read = || -> std::io::Result<String> {
                let mut f = std::fs::File::create(&path)?;
                f.write_all(c_src.as_bytes())?;
                drop(f);
                let back = std::fs::read_to_string(&path)?;
                std::fs::remove_file(&path).ok();
                Ok(back)
            };
            write_read().map_err(|e| BackendError::new(format!("temp file: {e}")))?
        } else {
            c_src
        };

        // --- cc1: lex + parse + gimplify. ---
        let gimple = minicc::compile_c(&c_src, trace)?;

        // --- cc1: -O3 scalar optimizations (shared optimizer). ---
        let optimized = {
            let _t = trace.scope("cc1_optimize");
            let mut out = Module::new(&gimple.name);
            for func in gimple.functions() {
                let f = qc_ir::opt::pass_phi_prune(func);
                let f = qc_ir::opt::pass_cse(&f);
                let f = qc_ir::opt::pass_instcombine(&f);
                let f = qc_ir::opt::pass_licm(&f);
                let f = qc_ir::opt::pass_dce(&f);
                // -O3 runs a second combine+cleanup round.
                let f = qc_ir::opt::pass_cse(&f);
                let f = qc_ir::opt::pass_dce(&f);
                out.push_function(f);
            }
            out
        };

        // --- cc1: code generation to textual assembly. ---
        let func_names: Vec<String> = optimized
            .functions()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut asm_text = String::new();
        let mut frames: Vec<(String, u32)> = Vec::new();
        {
            let _t = trace.scope("cc1_codegen");
            for func in optimized.functions() {
                let (bytes, relocs, frame) =
                    qc_clift::compile_function_parts(func, &func_names, self.isa)?;
                frames.push((func.name.clone(), frame));
                asm_text.push_str(&asmtext::disassemble(
                    &func.name, &bytes, &relocs, self.isa,
                )?);
            }
        }
        stats.bump("asm_bytes", asm_text.len() as u64);

        // --- Assembler. ---
        let objects = {
            let _t = trace.scope("as");
            asmtext::assemble(&asm_text, self.isa)?
        };

        // --- Linker (shared-library build; relocation happens in the
        // caller so artifacts can defer it). ---
        let image = {
            let _t = trace.scope("ld");
            let mut image = ImageBuilder::new(self.isa);
            for (name, bytes, relocs) in objects {
                let len = bytes.len();
                let frame = frames
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|&(_, f)| f)
                    .unwrap_or(0);
                let off = image.add_function(&name, bytes, relocs);
                image.add_unwind(
                    off,
                    UnwindEntry {
                        start: 0,
                        end: len,
                        frame_size: frame,
                        synchronous_only: false,
                    },
                );
            }
            image
        };

        stats.functions = module.len();
        Ok((image, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{CmpOp, FunctionBuilder, Opcode, Signature, Type};
    use qc_runtime::RuntimeState;
    use qc_target::Trap;

    fn run_on(
        isa: Isa,
        build: impl FnOnce(&mut FunctionBuilder),
        sig: Signature,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let mut b = FunctionBuilder::new("f", sig);
        build(&mut b);
        let f = b.finish();
        qc_ir::verify_function(&f).unwrap();
        let mut m = Module::new("m");
        m.push_function(f);
        let mut backend = CgenBackend::new(isa);
        backend.use_temp_files = false; // keep unit tests hermetic
        let mut exe = match backend.compile(&m, &TimeTrace::disabled()) {
            Ok(e) => e,
            Err(e) => panic!("{e}"),
        };
        let mut state = RuntimeState::new();
        exe.call(&mut state, "f", args)
    }

    fn run_both(
        build: impl Fn(&mut FunctionBuilder) + Copy,
        sig: Signature,
        args: &[u64],
    ) -> [u64; 2] {
        // The high half is only defined for two-register return types.
        let pair = sig.ret.reg_count() == 2;
        let mut out = None;
        for isa in [Isa::Tx64, Isa::Ta64] {
            let mut r =
                run_on(isa, build, sig.clone(), args).unwrap_or_else(|t| panic!("{isa}: {t}"));
            if !pair {
                r[1] = 0;
            }
            if let Some(prev) = out {
                assert_eq!(prev, r, "ISA mismatch");
            }
            out = Some(r);
        }
        out.unwrap()
    }

    #[test]
    fn arithmetic_roundtrips_through_c() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_both(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let s = b.add(Type::I64, x, y);
                let c = b.iconst(Type::I64, 3);
                let m = b.mul(Type::I64, s, c);
                let q = b.binary(Opcode::SDiv, Type::I64, m, y);
                b.ret(Some(q));
            },
            sig,
            &[10, 4],
        );
        assert_eq!(r[0] as i64, (10 + 4) * 3 / 4);
    }

    #[test]
    fn loops_and_phis_roundtrip() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_both(
            |b| {
                let entry = b.entry_block();
                let header = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                b.switch_to(entry);
                let zero = b.iconst(Type::I64, 0);
                b.jump(header);
                b.switch_to(header);
                let i = b.phi(Type::I64, vec![(entry, zero)]);
                let s = b.phi(Type::I64, vec![(entry, zero)]);
                let n = b.param(0);
                let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
                b.branch(c, body, exit);
                b.switch_to(body);
                let s2 = b.add(Type::I64, s, i);
                let one = b.iconst(Type::I64, 1);
                let i2 = b.add(Type::I64, i, one);
                b.phi_add_incoming(i, body, i2);
                b.phi_add_incoming(s, body, s2);
                b.jump(header);
                b.switch_to(exit);
                b.ret(Some(s));
            },
            sig,
            &[100],
        );
        assert_eq!(r[0], 4950);
    }

    #[test]
    fn i128_and_traps_roundtrip() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I128);
        let r = run_both(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let wx = b.sext(Type::I128, x);
                let wy = b.sext(Type::I128, y);
                let s = b.binary(Opcode::SAddTrap, Type::I128, wx, wy);
                let p = b.binary(Opcode::SMulTrap, Type::I128, s, wy);
                b.ret(Some(p));
            },
            sig,
            &[100, 200],
        );
        assert_eq!(r[0], 60_000);
        let sig2 = Signature::new(vec![Type::I64], Type::I64);
        let t = run_on(
            Isa::Tx64,
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let x = b.param(0);
                let s = b.binary(Opcode::SAddTrap, Type::I64, x, x);
                b.ret(Some(s));
            },
            sig2,
            &[i64::MAX as u64],
        );
        assert_eq!(t.unwrap_err(), Trap::Overflow);
    }

    #[test]
    fn strings_and_runtime_calls_roundtrip() {
        let mut state = RuntimeState::new();
        let s1 = state.intern_string("the cgen path, a long string");
        let s2 = state.intern_string("the cgen path, a long string");
        let sig = Signature::new(vec![Type::String, Type::String], Type::I64);
        let mut bld = FunctionBuilder::new("f", sig);
        let ext = bld.declare_ext_func(qc_ir::ExtFuncDecl {
            name: "rt_str_eq".into(),
            sig: Signature::new(vec![Type::String, Type::String], Type::Bool),
        });
        let e = bld.entry_block();
        bld.switch_to(e);
        let (x, y) = (bld.param(0), bld.param(1));
        let r = bld.call(ext, vec![x, y]).unwrap();
        let z = bld.zext(Type::I64, r);
        bld.ret(Some(z));
        let mut m = Module::new("m");
        m.push_function(bld.finish());
        let mut backend = CgenBackend::new(Isa::Tx64);
        backend.use_temp_files = false;
        let mut exe = backend.compile(&m, &TimeTrace::disabled()).unwrap();
        let r = exe
            .call(&mut state, "f", &[s1.lo, s1.hi, s2.lo, s2.hi])
            .unwrap();
        assert_eq!(r[0], 1);
    }

    #[test]
    fn crc_and_hash_builtins_roundtrip() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_both(
            |b| {
                let e = b.entry_block();
                b.switch_to(e);
                let (x, y) = (b.param(0), b.param(1));
                let c = b.crc32(x, y);
                let f = b.long_mul_fold(c, y);
                let rot = b.iconst(Type::I64, 17);
                let rr = b.binary(Opcode::RotR, Type::I64, f, rot);
                b.ret(Some(rr));
            },
            sig,
            &[5, 999],
        );
        let c = qc_target::crc32c_u64(5, 999);
        let f = qc_runtime::long_mul_fold(c, 999);
        assert_eq!(r[0], f.rotate_right(17));
    }

    #[test]
    fn phase_trace_matches_table1_structure() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("f", sig);
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let y = b.add(Type::I64, x, x);
        b.ret(Some(y));
        let mut m = Module::new("m");
        m.push_function(b.finish());
        let trace = TimeTrace::new();
        let _ = CgenBackend::new(Isa::Tx64).compile(&m, &trace).unwrap();
        let report = trace.report();
        for phase in [
            "cgen",
            "io",
            "cc1_parse",
            "cc1_gimplify",
            "cc1_optimize",
            "cc1_codegen",
            "as",
            "ld",
        ] {
            assert!(report.total(phase).is_some(), "missing phase {phase}");
        }
    }

    #[test]
    fn generated_c_is_printable_and_reparseable() {
        let sig = Signature::new(vec![Type::Ptr, Type::I64, Type::I64], Type::Void);
        let mut b = FunctionBuilder::new("main_fn", sig);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.param(0);
        let v = b.load(Type::I32, p, 4);
        let w = b.sext(Type::I64, v);
        b.store(Type::I64, p, w, 8);
        b.ret(None);
        let mut m = Module::new("m");
        m.push_function(b.finish());
        let text = print_c(&m);
        assert!(text.contains("goto") || text.contains("return"), "{text}");
        let trace = TimeTrace::disabled();
        let reparsed = super::minicc::compile_c(&text, &trace).unwrap();
        qc_ir::verify_module(&reparsed).unwrap();
    }
}
