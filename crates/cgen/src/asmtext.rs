//! Textual assembly: the compiler's output and `minias`'s input.
//!
//! The GCC flow produces textual assembly that a separate assembler must
//! re-parse and encode (paper Sec. IV: "calling GCC results in a separate
//! invocation of the assembler and linker, which also take a measurable
//! amount of time for ... parsing their input files"). The disassembling
//! printer below renders freshly generated machine code as canonical
//! assembly text (with labels and symbolic relocations); `minias` lexes,
//! parses and re-encodes it.

use qc_backend::BackendError;
use qc_target::{
    decode_inst, new_masm, AluOp, Cond, DecodedInst, FReg, FaluOp, Isa, MLabel, Reg, Reloc,
    RelocKind, Width,
};
use std::collections::HashMap;
use std::fmt::Write;

fn wname(w: Width) -> &'static str {
    match w {
        Width::W8 => "w8",
        Width::W16 => "w16",
        Width::W32 => "w32",
        Width::W64 => "w64",
    }
}

fn parse_w(s: &str) -> Option<Width> {
    Some(match s {
        "w8" => Width::W8,
        "w16" => Width::W16,
        "w32" => Width::W32,
        "w64" => Width::W64,
        _ => return None,
    })
}

fn aluname(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sar => "sar",
        AluOp::Rotr => "rotr",
        AluOp::Adc => "adc",
        AluOp::Sbb => "sbb",
    }
}

fn parse_alu(s: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match s {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "sar" => Sar,
        "rotr" => Rotr,
        "adc" => Adc,
        "sbb" => Sbb,
        _ => return None,
    })
}

fn condname(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Le => "le",
        Cond::Gt => "gt",
        Cond::Ge => "ge",
        Cond::B => "b",
        Cond::Be => "be",
        Cond::A => "a",
        Cond::Ae => "ae",
        Cond::O => "o",
        Cond::No => "no",
    }
}

fn parse_cond(s: &str) -> Option<Cond> {
    use Cond::*;
    Some(match s {
        "eq" => Eq,
        "ne" => Ne,
        "lt" => Lt,
        "le" => Le,
        "gt" => Gt,
        "ge" => Ge,
        "b" => B,
        "be" => Be,
        "a" => A,
        "ae" => Ae,
        "o" => O,
        "no" => No,
        _ => return None,
    })
}

fn mem_str(base: Reg, index: Option<(Reg, u8)>, disp: i32) -> String {
    match index {
        Some((i, s)) => format!("[r{} + r{}*{} + {}]", base.num(), i.num(), s, disp),
        None => format!("[r{} + {}]", base.num(), disp),
    }
}

/// Disassembles one function's code to text ("the compiler emits assembly").
///
/// # Errors
/// Returns [`BackendError`] on undecodable bytes (a codegen bug).
pub fn disassemble(
    name: &str,
    code: &[u8],
    relocs: &[Reloc],
    isa: Isa,
) -> Result<String, BackendError> {
    let mut out = String::new();
    writeln!(out, "func {name}:").unwrap();
    // Pass 1: find branch targets for labels, and map reloc offsets.
    let reloc_at: HashMap<usize, &Reloc> = relocs.iter().map(|r| (r.offset, r)).collect();
    let mut targets: Vec<usize> = Vec::new();
    let mut off = 0usize;
    while off < code.len() {
        // Relocation-covered pseudo instructions first.
        if let Some(r) = reloc_covering(&reloc_at, off, isa) {
            off += reloc_len(r.kind, isa);
            continue;
        }
        let (inst, len) =
            decode_inst(isa, code, off).map_err(|e| BackendError::new(e.to_string()))?;
        let end = off + len as usize;
        match inst {
            DecodedInst::Jcc { rel, .. } | DecodedInst::Jmp { rel } => {
                targets.push((end as i64 + rel as i64) as usize);
            }
            _ => {}
        }
        off = end;
    }
    targets.sort_unstable();
    targets.dedup();
    let label_of = |o: usize| targets.binary_search(&o).ok().map(|i| format!("L{i}"));

    // Pass 2: print.
    let mut off = 0usize;
    while off < code.len() {
        if let Some(l) = label_of(off) {
            writeln!(out, "{l}:").unwrap();
        }
        if let Some(r) = reloc_covering(&reloc_at, off, isa) {
            match r.kind {
                RelocKind::Rel32 | RelocKind::Rel24Words => {
                    writeln!(out, "  call @{}", r.sym.name).unwrap();
                }
                RelocKind::Abs64 | RelocKind::MovSeqAbs64 => {
                    // TX64: MOV_RI64 starts one/two bytes earlier.
                    let reg = match isa {
                        Isa::Tx64 => code[r.offset - 1],
                        Isa::Ta64 => {
                            ((u32::from_le_bytes(
                                code[r.offset..r.offset + 4].try_into().expect("word"),
                            ) >> 16)
                                & 31) as u8
                        }
                    };
                    writeln!(out, "  movabs r{}, @{}", reg, r.sym.name).unwrap();
                }
            }
            off += reloc_len(r.kind, isa);
            continue;
        }
        let (inst, len) =
            decode_inst(isa, code, off).map_err(|e| BackendError::new(e.to_string()))?;
        let end = off + len as usize;
        print_inst(&mut out, &inst, end, &label_of)?;
        off = end;
    }
    writeln!(out, "endfunc").unwrap();
    Ok(out)
}

/// Finds a relocation whose encoded field starts inside the instruction at
/// `off` (TX64 call rel32 at `off+1`, movabs imm at `off+2`; TA64 at the
/// word itself).
fn reloc_covering<'r>(
    reloc_at: &HashMap<usize, &'r Reloc>,
    off: usize,
    isa: Isa,
) -> Option<&'r Reloc> {
    match isa {
        Isa::Tx64 => reloc_at
            .get(&(off + 1))
            .filter(|r| r.kind == RelocKind::Rel32)
            .or_else(|| {
                reloc_at
                    .get(&(off + 2))
                    .filter(|r| r.kind == RelocKind::Abs64)
            })
            .copied(),
        Isa::Ta64 => reloc_at.get(&off).copied(),
    }
}

fn reloc_len(kind: RelocKind, isa: Isa) -> usize {
    match (kind, isa) {
        (RelocKind::Rel32, _) => 5,        // CALL rel32
        (RelocKind::Abs64, _) => 10,       // MOV_RI64
        (RelocKind::Rel24Words, _) => 4,   // BL
        (RelocKind::MovSeqAbs64, _) => 16, // movz + 3×movk
    }
}

fn print_inst(
    out: &mut String,
    inst: &DecodedInst,
    end: usize,
    label_of: &dyn Fn(usize) -> Option<String>,
) -> Result<(), BackendError> {
    use DecodedInst as I;
    match *inst {
        I::Nop => writeln!(out, "  nop").unwrap(),
        I::MovRR { dst, src } => writeln!(out, "  mov r{}, r{}", dst.num(), src.num()).unwrap(),
        I::MovRI { dst, imm } => writeln!(out, "  ldi r{}, {}", dst.num(), imm).unwrap(),
        I::MovK { dst, imm16, shift } => {
            writeln!(out, "  movk r{}, {}, {}", dst.num(), imm16, shift).unwrap()
        }
        I::Alu {
            op,
            width,
            set_flags,
            dst,
            src1,
            src2,
        } => {
            writeln!(
                out,
                "  alu {} {} {} r{}, r{}, r{}",
                aluname(op),
                wname(width),
                if set_flags { "sf" } else { "nf" },
                dst.num(),
                src1.num(),
                src2.num()
            )
            .unwrap();
        }
        I::AluImm {
            op,
            width,
            set_flags,
            dst,
            src1,
            imm,
        } => {
            writeln!(
                out,
                "  alui {} {} {} r{}, r{}, {}",
                aluname(op),
                wname(width),
                if set_flags { "sf" } else { "nf" },
                dst.num(),
                src1.num(),
                imm
            )
            .unwrap();
        }
        I::MulFull {
            dst_lo,
            dst_hi,
            a,
            b,
        } => {
            writeln!(
                out,
                "  mulf r{}, r{}, r{}, r{}",
                dst_lo.num(),
                dst_hi.num(),
                a.num(),
                b.num()
            )
            .unwrap();
        }
        I::Crc32 { dst, acc, data } => {
            writeln!(out, "  crc r{}, r{}, r{}", dst.num(), acc.num(), data.num()).unwrap();
        }
        I::Div {
            signed,
            rem,
            width,
            dst,
            a,
            b,
        } => {
            writeln!(
                out,
                "  div {} {} {} r{}, r{}, r{}",
                if signed { "s" } else { "u" },
                if rem { "r" } else { "q" },
                wname(width),
                dst.num(),
                a.num(),
                b.num()
            )
            .unwrap();
        }
        I::Sext { from, dst, src } => {
            writeln!(out, "  sext {} r{}, r{}", wname(from), dst.num(), src.num()).unwrap();
        }
        I::Load { width, dst, mem } => {
            writeln!(
                out,
                "  ld {} r{}, {}",
                wname(width),
                dst.num(),
                mem_str(mem.base, mem.index, mem.disp)
            )
            .unwrap();
        }
        I::Store { width, src, mem } => {
            writeln!(
                out,
                "  st {} r{}, {}",
                wname(width),
                src.num(),
                mem_str(mem.base, mem.index, mem.disp)
            )
            .unwrap();
        }
        I::Lea { dst, mem } => {
            writeln!(
                out,
                "  lea r{}, {}",
                dst.num(),
                mem_str(mem.base, mem.index, mem.disp)
            )
            .unwrap();
        }
        I::Cmp { width, a, b } => {
            writeln!(out, "  cmp {} r{}, r{}", wname(width), a.num(), b.num()).unwrap();
        }
        I::CmpImm { width, a, imm } => {
            writeln!(out, "  cmpi {} r{}, {}", wname(width), a.num(), imm).unwrap();
        }
        I::SetCc { cond, dst } => {
            writeln!(out, "  set {} r{}", condname(cond), dst.num()).unwrap();
        }
        I::Jcc { cond, rel } => {
            let t = (end as i64 + rel as i64) as usize;
            let l = label_of(t)
                .ok_or_else(|| BackendError::new(format!("jcc to unlabeled offset {t}")))?;
            writeln!(out, "  jcc {} {l}", condname(cond)).unwrap();
        }
        I::Jmp { rel } => {
            let t = (end as i64 + rel as i64) as usize;
            let l = label_of(t)
                .ok_or_else(|| BackendError::new(format!("jmp to unlabeled offset {t}")))?;
            writeln!(out, "  jmp {l}").unwrap();
        }
        I::JmpInd { reg } => writeln!(out, "  jmpi r{}", reg.num()).unwrap(),
        I::Call { .. } => {
            return Err(BackendError::new("relative call without relocation"));
        }
        I::CallInd { reg } => writeln!(out, "  calli r{}", reg.num()).unwrap(),
        I::Ret => writeln!(out, "  ret").unwrap(),
        I::Push { src } => writeln!(out, "  push r{}", src.num()).unwrap(),
        I::Pop { dst } => writeln!(out, "  pop r{}", dst.num()).unwrap(),
        I::Falu { op, dst, a, b } => {
            let n = match op {
                FaluOp::Add => "add",
                FaluOp::Sub => "sub",
                FaluOp::Mul => "mul",
                FaluOp::Div => "div",
            };
            writeln!(out, "  falu {n} f{}, f{}, f{}", dst.num(), a.num(), b.num()).unwrap();
        }
        I::FCmp { a, b } => writeln!(out, "  fcmp f{}, f{}", a.num(), b.num()).unwrap(),
        I::FMov { dst, src } => writeln!(out, "  fmov f{}, f{}", dst.num(), src.num()).unwrap(),
        I::FMovFromGpr { dst, src } => {
            writeln!(out, "  fgpr f{}, r{}", dst.num(), src.num()).unwrap()
        }
        I::FMovToGpr { dst, src } => {
            writeln!(out, "  gprf r{}, f{}", dst.num(), src.num()).unwrap()
        }
        I::CvtSiToF { dst, src } => {
            writeln!(out, "  cvtsf f{}, r{}", dst.num(), src.num()).unwrap()
        }
        I::CvtFToSi { dst, src } => {
            writeln!(out, "  cvtfs r{}, f{}", dst.num(), src.num()).unwrap()
        }
        I::FLoad { dst, mem } => writeln!(
            out,
            "  fld f{}, {}",
            dst.num(),
            mem_str(mem.base, mem.index, mem.disp)
        )
        .unwrap(),
        I::FStore { src, mem } => writeln!(
            out,
            "  fst f{}, {}",
            src.num(),
            mem_str(mem.base, mem.index, mem.disp)
        )
        .unwrap(),
        I::Trap { code } => writeln!(out, "  trap {code}").unwrap(),
    }
    Ok(())
}

/// One assembled function: `(name, bytes, relocations)`.
pub type AssembledFn = (String, Vec<u8>, Vec<Reloc>);

/// A parsed memory operand: `(base, optional (index, scale), displacement)`.
type MemOperand = (Reg, Option<(Reg, u8)>, i32);

/// `minias`: parses assembly text and encodes machine code.
///
/// Returns per-function `(name, bytes, relocations)`.
///
/// # Errors
/// Returns [`BackendError`] for syntax errors.
pub fn assemble(text: &str, isa: Isa) -> Result<Vec<AssembledFn>, BackendError> {
    let mut out = Vec::new();
    let mut masm: Option<Box<dyn qc_target::MacroAssembler>> = None;
    let mut name = String::new();
    let mut labels: HashMap<String, MLabel> = HashMap::new();

    let err =
        |line: &str, what: &str| BackendError::new(format!("minias: {what} in line `{line}`"));
    let reg = |t: &str, line: &str| -> Result<Reg, BackendError> {
        t.trim_end_matches(',')
            .strip_prefix('r')
            .and_then(|s| s.parse::<u8>().ok())
            .map(Reg)
            .ok_or_else(|| err(line, "expected register"))
    };
    let freg = |t: &str, line: &str| -> Result<FReg, BackendError> {
        t.trim_end_matches(',')
            .strip_prefix('f')
            .and_then(|s| s.parse::<u8>().ok())
            .map(FReg)
            .ok_or_else(|| err(line, "expected float register"))
    };
    let imm = |t: &str, line: &str| -> Result<i64, BackendError> {
        t.trim_end_matches(',')
            .parse::<i64>()
            .map_err(|_| err(line, "expected immediate"))
    };
    // `[rB + rI*S + D]` or `[rB + D]`
    let parse_mem = |toks: &[&str], line: &str| -> Result<MemOperand, BackendError> {
        let joined = toks.join(" ");
        let inner = joined
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| err(line, "expected memory operand"))?;
        let parts: Vec<&str> = inner.split('+').map(str::trim).collect();
        let base = reg(parts[0], line)?;
        match parts.len() {
            2 => Ok((base, None, imm(parts[1], line)? as i32)),
            3 => {
                let (ri, sc) = parts[1]
                    .split_once('*')
                    .ok_or_else(|| err(line, "expected index*scale"))?;
                Ok((
                    base,
                    Some((reg(ri, line)?, imm(sc, line)? as u8)),
                    imm(parts[2], line)? as i32,
                ))
            }
            _ => Err(err(line, "bad memory operand")),
        }
    };

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("func ") {
            name = rest.trim_end_matches(':').to_string();
            masm = Some(new_masm(isa));
            labels.clear();
            continue;
        }
        if line == "endfunc" {
            let m = masm
                .take()
                .ok_or_else(|| err(line, "endfunc without func"))?;
            let (bytes, relocs) = m.finish();
            out.push((std::mem::take(&mut name), bytes, relocs));
            continue;
        }
        let m = masm
            .as_mut()
            .ok_or_else(|| err(line, "instruction outside func"))?;
        if let Some(label) = line.strip_suffix(':') {
            let l = *labels
                .entry(label.to_string())
                .or_insert_with(|| m.new_label());
            m.bind(l);
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let get_label = |labels: &mut HashMap<String, MLabel>,
                         m: &mut Box<dyn qc_target::MacroAssembler>,
                         name: &str| {
            *labels
                .entry(name.to_string())
                .or_insert_with(|| m.new_label())
        };
        match toks[0] {
            "nop" => {}
            "mov" => {
                let d = reg(toks[1], line)?;
                let s = reg(toks[2], line)?;
                // A self-move still occupies space in the original code.
                if d == s {
                    m.alu_rri(AluOp::Or, Width::W64, false, d, s, 0);
                } else {
                    m.mov_rr(d, s);
                }
            }
            "ldi" => m.mov_ri(reg(toks[1], line)?, imm(toks[2], line)?),
            "movk" => {
                let d = reg(toks[1], line)?;
                m.movk(d, imm(toks[2], line)? as u16, imm(toks[3], line)? as u8);
            }
            "alu" => {
                let op = parse_alu(toks[1]).ok_or_else(|| err(line, "bad alu op"))?;
                let w = parse_w(toks[2]).ok_or_else(|| err(line, "bad width"))?;
                let sf = toks[3] == "sf";
                m.alu_rrr(
                    op,
                    w,
                    sf,
                    reg(toks[4], line)?,
                    reg(toks[5], line)?,
                    reg(toks[6], line)?,
                );
            }
            "alui" => {
                let op = parse_alu(toks[1]).ok_or_else(|| err(line, "bad alu op"))?;
                let w = parse_w(toks[2]).ok_or_else(|| err(line, "bad width"))?;
                let sf = toks[3] == "sf";
                m.alu_rri(
                    op,
                    w,
                    sf,
                    reg(toks[4], line)?,
                    reg(toks[5], line)?,
                    imm(toks[6], line)?,
                );
            }
            "mulf" => m.mulfull(
                reg(toks[1], line)?,
                reg(toks[2], line)?,
                reg(toks[3], line)?,
                reg(toks[4], line)?,
            ),
            "crc" => m.crc32(
                reg(toks[1], line)?,
                reg(toks[2], line)?,
                reg(toks[3], line)?,
            ),
            "div" => {
                let signed = toks[1] == "s";
                let rem = toks[2] == "r";
                let w = parse_w(toks[3]).ok_or_else(|| err(line, "bad width"))?;
                m.div(
                    signed,
                    rem,
                    w,
                    reg(toks[4], line)?,
                    reg(toks[5], line)?,
                    reg(toks[6], line)?,
                );
            }
            "sext" => {
                let w = parse_w(toks[1]).ok_or_else(|| err(line, "bad width"))?;
                m.sext(w, reg(toks[2], line)?, reg(toks[3], line)?);
            }
            "ld" | "st" => {
                let w = parse_w(toks[1]).ok_or_else(|| err(line, "bad width"))?;
                let r0 = reg(toks[2], line)?;
                let (b, i, d) = parse_mem(&toks[3..], line)?;
                if toks[0] == "ld" {
                    m.load(w, r0, b, i, d);
                } else {
                    m.store(w, r0, b, i, d);
                }
            }
            "lea" => {
                let r0 = reg(toks[1], line)?;
                let (b, i, d) = parse_mem(&toks[2..], line)?;
                m.lea(r0, b, i, d);
            }
            "cmp" => {
                let w = parse_w(toks[1]).ok_or_else(|| err(line, "bad width"))?;
                m.cmp(w, reg(toks[2], line)?, reg(toks[3], line)?);
            }
            "cmpi" => {
                let w = parse_w(toks[1]).ok_or_else(|| err(line, "bad width"))?;
                m.cmp_ri(w, reg(toks[2], line)?, imm(toks[3], line)?);
            }
            "set" => {
                let c = parse_cond(toks[1]).ok_or_else(|| err(line, "bad cond"))?;
                m.setcc(c, reg(toks[2], line)?);
            }
            "jcc" => {
                let c = parse_cond(toks[1]).ok_or_else(|| err(line, "bad cond"))?;
                let l = get_label(&mut labels, m, toks[2]);
                m.jcc(c, l);
            }
            "jmp" => {
                let l = get_label(&mut labels, m, toks[1]);
                m.jmp(l);
            }
            "jmpi" => m.call_ind(reg(toks[1], line)?), // tail position: ind call
            "call" => {
                let sym = toks[1]
                    .strip_prefix('@')
                    .ok_or_else(|| err(line, "expected @symbol"))?;
                m.call_sym(qc_target::SymbolRef::named(sym));
            }
            "calli" => m.call_ind(reg(toks[1], line)?),
            "movabs" => {
                let d = reg(toks[1], line)?;
                let sym = toks[2]
                    .strip_prefix('@')
                    .ok_or_else(|| err(line, "expected @symbol"))?;
                m.mov_sym(d, qc_target::SymbolRef::named(sym));
            }
            "ret" => m.ret(),
            "push" | "pop" => {
                // Only DirectEmit uses push/pop; the shared pipeline never
                // emits them, so minias does not need to support them.
                return Err(err(line, "push/pop unsupported"));
            }
            "falu" => {
                let op = match toks[1] {
                    "add" => FaluOp::Add,
                    "sub" => FaluOp::Sub,
                    "mul" => FaluOp::Mul,
                    "div" => FaluOp::Div,
                    _ => return Err(err(line, "bad falu op")),
                };
                m.falu(
                    op,
                    freg(toks[2], line)?,
                    freg(toks[3], line)?,
                    freg(toks[4], line)?,
                );
            }
            "fcmp" => m.fcmp(freg(toks[1], line)?, freg(toks[2], line)?),
            "fmov" => m.fmov(freg(toks[1], line)?, freg(toks[2], line)?),
            "fgpr" => m.fmov_from_gpr(freg(toks[1], line)?, reg(toks[2], line)?),
            "gprf" => m.fmov_to_gpr(reg(toks[1], line)?, freg(toks[2], line)?),
            "cvtsf" => m.cvt_si2f(freg(toks[1], line)?, reg(toks[2], line)?),
            "cvtfs" => m.cvt_f2si(reg(toks[1], line)?, freg(toks[2], line)?),
            "fld" => {
                let f0 = freg(toks[1], line)?;
                let (b, i, d) = parse_mem(&toks[2..], line)?;
                if i.is_some() {
                    return Err(err(line, "indexed float load"));
                }
                m.fload(f0, b, d);
            }
            "fst" => {
                let f0 = freg(toks[1], line)?;
                let (b, i, d) = parse_mem(&toks[2..], line)?;
                if i.is_some() {
                    return Err(err(line, "indexed float store"));
                }
                m.fstore(f0, b, d);
            }
            "trap" => m.trap(imm(toks[1], line)? as u8),
            other => return Err(err(line, &format!("unknown mnemonic `{other}`"))),
        }
    }
    Ok(out)
}
